//===- passes/PassRegistry.h - Pass factory registry ------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Registry mapping pass names to factories. The phase-ordering action
/// space is exactly the registry's default action list (parameterized
/// passes are registered once per parameter value, mirroring how the paper
/// extracts its 124 LLVM actions automatically).
///
/// The deliberately nondeterministic `gvn-sink` pass (reproducing the
/// paper's LLVM -gvn-sink reproducibility bug, §III-B3) is registered but
/// excluded from the default action list, like the paper's environments
/// exclude it after detection.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_PASSES_PASSREGISTRY_H
#define COMPILER_GYM_PASSES_PASSREGISTRY_H

#include "passes/Pass.h"

#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace compiler_gym {
namespace passes {

/// Process-wide pass registry (constructed once, immutable afterwards).
class PassRegistry {
public:
  /// The singleton instance with every built-in pass registered.
  static const PassRegistry &instance();

  /// Creates a pass by name; nullptr if unknown.
  std::unique_ptr<Pass> create(const std::string &Name) const;

  /// True if \p Name is registered.
  bool contains(const std::string &Name) const;

  /// Names forming the default phase-ordering action space (sorted,
  /// deterministic; excludes quarantined nondeterministic passes).
  const std::vector<std::string> &defaultActionNames() const {
    return DefaultActions;
  }

  /// Every registered name, including quarantined passes.
  const std::vector<std::string> &allNames() const { return AllNames; }

private:
  PassRegistry();

  void add(const std::string &Name,
           std::function<std::unique_ptr<Pass>()> Factory,
           bool InDefaultActionSpace = true);

  std::vector<std::pair<std::string, std::function<std::unique_ptr<Pass>()>>>
      Factories;
  std::vector<std::string> DefaultActions;
  std::vector<std::string> AllNames;
};

} // namespace passes
} // namespace compiler_gym

#endif // COMPILER_GYM_PASSES_PASSREGISTRY_H
