//===- passes/AnalysisManager.cpp -----------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/AnalysisManager.h"

#include "telemetry/MetricsRegistry.h"

#include <algorithm>
#include <unordered_set>

using namespace compiler_gym;
using namespace compiler_gym::passes;
using namespace compiler_gym::ir;

namespace {

/// Process-wide mirrors of the per-manager Stats, labeled by analysis
/// kind and lookup outcome.
telemetry::Counter &analysisLookup(const char *Kind, bool Hit) {
  static telemetry::MetricsRegistry &M = telemetry::MetricsRegistry::global();
  static const char *Help = "Analysis cache lookups by kind and outcome";
  static telemetry::Counter &DomHit = M.counter(
      "cg_analysis_lookups_total",
      {{"kind", "domtree"}, {"outcome", "hit"}}, Help);
  static telemetry::Counter &DomCompute = M.counter(
      "cg_analysis_lookups_total",
      {{"kind", "domtree"}, {"outcome", "compute"}}, Help);
  static telemetry::Counter &LoopHit = M.counter(
      "cg_analysis_lookups_total", {{"kind", "loops"}, {"outcome", "hit"}},
      Help);
  static telemetry::Counter &LoopCompute = M.counter(
      "cg_analysis_lookups_total",
      {{"kind", "loops"}, {"outcome", "compute"}}, Help);
  if (Kind[0] == 'd')
    return Hit ? DomHit : DomCompute;
  return Hit ? LoopHit : LoopCompute;
}

telemetry::Counter &analysisInvalidations(const char *Kind) {
  static telemetry::MetricsRegistry &M = telemetry::MetricsRegistry::global();
  static const char *Help = "Cached analyses dropped by invalidation";
  static telemetry::Counter &Dom = M.counter(
      "cg_analysis_invalidations_total", {{"kind", "domtree"}}, Help);
  static telemetry::Counter &Loops = M.counter(
      "cg_analysis_invalidations_total", {{"kind", "loops"}}, Help);
  if (Kind[0] == 'd')
    return Dom;
  return Loops;
}

telemetry::Counter &domTreeUpdates(bool Incremental) {
  static telemetry::MetricsRegistry &M = telemetry::MetricsRegistry::global();
  static const char *Help =
      "Dominator trees built (full) or patched in place (incremental)";
  static telemetry::Counter &Inc = M.counter(
      "cg_domtree_updates_total", {{"kind", "incremental"}}, Help);
  static telemetry::Counter &Full =
      M.counter("cg_domtree_updates_total", {{"kind", "full"}}, Help);
  return Incremental ? Inc : Full;
}

} // namespace

const DominatorTree &AnalysisManager::domTree(const Function &F) {
  Entry &E = Cache[&F];
  if (E.DT) {
    ++S.DomTreeHits;
    analysisLookup("domtree", true).inc();
  } else {
    E.DT = std::make_unique<DominatorTree>(F);
    ++S.DomTreeComputes;
    analysisLookup("domtree", false).inc();
    domTreeUpdates(false).inc();
  }
  return *E.DT;
}

const std::vector<NaturalLoop> &AnalysisManager::loops(const Function &F) {
  const DominatorTree &DT = domTree(F);
  Entry &E = Cache[&F];
  if (E.Loops) {
    ++S.LoopHits;
    analysisLookup("loops", true).inc();
  } else {
    E.Loops =
        std::make_unique<std::vector<NaturalLoop>>(findNaturalLoops(F, DT));
    ++S.LoopComputes;
    analysisLookup("loops", false).inc();
  }
  return *E.Loops;
}

namespace {

/// Maps abandoned AK_Features/AK_Layout bits to the FeatureCache mask.
unsigned featureMaskFor(const PreservedAnalyses &PA) {
  unsigned Mask = 0;
  if (!PA.preserves(AK_Features))
    Mask |= analysis::FS_Counts;
  if (!PA.preserves(AK_Layout))
    Mask |= analysis::FS_Layout;
  return Mask;
}

} // namespace

void AnalysisManager::invalidate(const Function &F,
                                 const PreservedAnalyses &PA) {
  unsigned Dropped = PA.abandoned();
  if (Dropped & (AK_DomTree | AK_Loops)) {
    auto It = Cache.find(&F);
    if (It != Cache.end()) {
      if (!(PA.preserves(AK_DomTree)) && It->second.DT) {
        It->second.DT.reset();
        analysisInvalidations("domtree").inc();
      }
      if (!(PA.preserves(AK_Loops)) && It->second.Loops) {
        It->second.Loops.reset();
        analysisInvalidations("loops").inc();
      }
    }
  }
  if (unsigned Mask = featureMaskFor(PA))
    Features.invalidateFunction(&F, Mask);
}

void AnalysisManager::invalidateAll(const PreservedAnalyses &PA) {
  if (!PA.preserves(AK_DomTree) || !PA.preserves(AK_Loops)) {
    for (auto &[F, E] : Cache) {
      if (!PA.preserves(AK_DomTree) && E.DT) {
        E.DT.reset();
        analysisInvalidations("domtree").inc();
      }
      if (!PA.preserves(AK_Loops) && E.Loops) {
        E.Loops.reset();
        analysisInvalidations("loops").inc();
      }
    }
  }
  if (unsigned Mask = featureMaskFor(PA))
    Features.invalidateAll(Mask);
}

void AnalysisManager::functionErased(const Function *F) {
  Cache.erase(F);
  CowStash.erase(F);
  Features.functionErased(F);
}

void AnalysisManager::cowDetached(const Function *Old, const Function *Copy) {
  auto It = Cache.find(Old);
  if (It != Cache.end()) {
    CowStash[Old] = std::move(It->second);
    Cache.erase(It);
  }
  Features.functionReplaced(Old, Copy);
}

void AnalysisManager::cowReverted(const Function *Copy, const Function *Old) {
  // Analyses computed against the short-lived copy would dangle.
  Cache.erase(Copy);
  Features.functionReplaced(Copy, Old);
  auto It = CowStash.find(Old);
  if (It != CowStash.end()) {
    Cache[Old] = std::move(It->second);
    CowStash.erase(It);
  }
}

void AnalysisManager::cowCommitted(const Function *Old) {
  CowStash.erase(Old);
}

void AnalysisManager::adoptFrom(const AnalysisManager &O) {
  Cache.clear();
  CowStash.clear();
  for (const auto &[F, E] : O.Cache) {
    Entry &N = Cache[F];
    if (E.DT)
      N.DT = std::make_unique<DominatorTree>(*E.DT);
    if (E.Loops)
      N.Loops = std::make_unique<std::vector<NaturalLoop>>(*E.Loops);
  }
  Features = O.Features;
}

void AnalysisManager::blockMerged(const Function &F, BasicBlock *Into,
                                  const BasicBlock *Gone) {
  auto It = Cache.find(&F);
  if (It == Cache.end() || !It->second.DT)
    return;
  It->second.DT->applyBlockMerged(Into, Gone);
  domTreeUpdates(true).inc();
}

bool AnalysisManager::isCached(const Function &F, AnalysisKind Kind) const {
  switch (Kind) {
  case AK_DomTree: {
    auto It = Cache.find(&F);
    return It != Cache.end() && It->second.DT != nullptr;
  }
  case AK_Loops: {
    auto It = Cache.find(&F);
    return It != Cache.end() && It->second.Loops != nullptr;
  }
  case AK_Features:
    return Features.cachedInstCount(&F) != nullptr ||
           Features.cachedAutophase(&F) != nullptr;
  case AK_Layout:
    return Features.cachedInst2vec(&F) != nullptr ||
           Features.cachedGraphFragment(&F) != nullptr;
  }
  return false;
}

namespace {

bool sameLoops(const std::vector<NaturalLoop> &Cached,
               const std::vector<NaturalLoop> &Fresh) {
  if (Cached.size() != Fresh.size())
    return false;
  for (size_t I = 0; I < Cached.size(); ++I) {
    if (Cached[I].Header != Fresh[I].Header ||
        Cached[I].Latches != Fresh[I].Latches ||
        Cached[I].Blocks != Fresh[I].Blocks)
      return false;
  }
  return true;
}

} // namespace

Status AnalysisManager::verifyCachedAnalyses(const Module &M,
                                             const std::string &PassName) {
  // A cached entry whose function is no longer in the module means a pass
  // erased a function without functionErased() — a dangling-pointer lie.
  std::unordered_set<const Function *> Current;
  for (const auto &F : M.functions())
    Current.insert(F.get());
  for (const auto &[F, E] : Cache)
    if ((E.DT || E.Loops) && !Current.count(F))
      return internalError("pass '" + PassName +
                      "' erased a function without notifying the "
                      "AnalysisManager");

  for (const auto &F : M.functions()) {
    auto It = Cache.find(F.get());
    // A fresh dominator tree is needed to check either CFG analysis: a
    // cached loop set without a cached tree (preserve(AK_Loops) alone)
    // must not escape verification.
    if (It != Cache.end() && (It->second.DT || It->second.Loops)) {
      DominatorTree Fresh(*F);
      if (It->second.DT && !It->second.DT->structurallyEquals(*F, Fresh))
        return internalError("pass '" + PassName +
                        "' claimed to preserve the dominator tree of '" +
                        F->name() + "' but changed the CFG");
      if (It->second.Loops &&
          !sameLoops(*It->second.Loops, findNaturalLoops(*F, Fresh)))
        return internalError("pass '" + PassName +
                        "' claimed to preserve loop info of '" + F->name() +
                        "' but changed the loop structure");
    }
    if (const std::vector<int64_t> *IC = Features.cachedInstCount(F.get()))
      if (*IC != analysis::instCountFunction(*F))
        return internalError("pass '" + PassName +
                        "' claimed to preserve features of '" + F->name() +
                        "' but the InstCount vector changed");
    if (const std::vector<int64_t> *AP = Features.cachedAutophase(F.get()))
      if (*AP != analysis::autophaseFunction(*F))
        return internalError("pass '" + PassName +
                        "' claimed to preserve features of '" + F->name() +
                        "' but the Autophase vector changed");
    if (const std::vector<float> *E = Features.cachedInst2vec(F.get()))
      if (*E != analysis::inst2vecFunction(*F))
        return internalError("pass '" + PassName +
                        "' claimed to preserve layout of '" + F->name() +
                        "' but the Inst2vec embedding changed");
    if (const analysis::GraphFragment *G =
            Features.cachedGraphFragment(F.get())) {
      analysis::GraphFragment Fresh = analysis::buildGraphFragment(*F);
      if (G->Bytes != Fresh.Bytes || G->Callees != Fresh.Callees ||
          G->Globals != Fresh.Globals || G->Constants != Fresh.Constants)
        return internalError("pass '" + PassName +
                        "' claimed to preserve layout of '" + F->name() +
                        "' but the ProGraML fragment changed");
    }
  }
  return Status::ok();
}
