//===- passes/Mem2Reg.cpp - Promote stack slots to SSA ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Classic SSA construction: promotes allocas whose only uses are loads and
/// stores into SSA registers, inserting phi nodes at iterated dominance
/// frontiers and renaming along the dominator tree. The programs emitted by
/// the benchmark generators are in "clang -O0" style (everything through
/// the stack), so this pass is the keystone first action, exactly as
/// -mem2reg is for LLVM.
///
//===----------------------------------------------------------------------===//

#include "passes/Transforms.h"
#include "passes/Utils.h"

#include "ir/Dominators.h"

#include <unordered_map>
#include <unordered_set>

using namespace compiler_gym;
using namespace compiler_gym::passes;
using namespace compiler_gym::ir;

namespace {

class Mem2RegPass : public FunctionPass {
public:
  std::string name() const override { return "mem2reg"; }

  unsigned requiredAnalyses() const override { return AK_DomTree; }

  PassResult runOnFunction(Function &F, AnalysisManager &AM) override {
    // Unreachable code would leave phis without matching incoming edges.
    bool CfgChanged = removeUnreachableBlocks(F);
    if (CfgChanged)
      AM.invalidate(F, PreservedAnalyses::none());

    const DominatorTree &DT = AM.domTree(F);
    std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
        DomChildren;
    for (const auto &BB : F.blocks())
      if (BasicBlock *Parent = DT.idom(BB.get()))
        DomChildren[Parent].push_back(BB.get());

    // Dominance frontiers (Cytron et al.).
    std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> DF;
    for (const auto &BBPtr : F.blocks()) {
      BasicBlock *BB = BBPtr.get();
      std::vector<BasicBlock *> Preds = BB->predecessors();
      if (Preds.size() < 2)
        continue;
      BasicBlock *IDom = DT.idom(BB);
      for (BasicBlock *Pred : Preds) {
        BasicBlock *Runner = Pred;
        while (Runner && Runner != IDom) {
          DF[Runner].push_back(BB);
          Runner = DT.idom(Runner);
        }
      }
    }

    // Classify every alloca in one whole-function scan (per-alloca scans
    // would make the pass quadratic on big modules).
    struct SlotInfo {
      bool Promotable = true;
      Type ValueTy = Type::Void;
      std::vector<Instruction *> Loads;
      std::vector<Instruction *> Stores;
      std::unordered_set<BasicBlock *> DefBlocks;
    };
    std::unordered_map<Instruction *, SlotInfo> Slots;
    F.forEachInstruction([&](BasicBlock &, Instruction &I) {
      if (I.opcode() == Opcode::Alloca)
        Slots[&I].Promotable = I.allocaWords() == 1;
    });
    F.forEachInstruction([&](BasicBlock &BB, Instruction &I) {
      for (size_t Op = 0; Op < I.numOperands(); ++Op) {
        auto *Def = dyn_cast<Instruction>(I.operand(Op));
        if (!Def)
          continue;
        auto It = Slots.find(Def);
        if (It == Slots.end())
          continue;
        SlotInfo &Slot = It->second;
        if (I.opcode() == Opcode::Load && Op == 0) {
          if (Slot.ValueTy == Type::Void)
            Slot.ValueTy = I.type();
          else if (Slot.ValueTy != I.type())
            Slot.Promotable = false;
          Slot.Loads.push_back(&I);
        } else if (I.opcode() == Opcode::Store && Op == 1) {
          if (Slot.ValueTy == Type::Void)
            Slot.ValueTy = I.operand(0)->type();
          else if (Slot.ValueTy != I.operand(0)->type())
            Slot.Promotable = false;
          Slot.Stores.push_back(&I);
          Slot.DefBlocks.insert(&BB);
        } else {
          Slot.Promotable = false; // Address escapes.
        }
      }
    });

    // Deterministic promotion order: program order of the allocas.
    std::vector<Instruction *> Order;
    F.forEachInstruction([&](BasicBlock &, Instruction &I) {
      auto It = Slots.find(&I);
      if (It != Slots.end() && It->second.Promotable)
        Order.push_back(&I);
    });
    bool Promoted = false;
    for (Instruction *Alloca : Order) {
      SlotInfo &Slot = Slots.at(Alloca);
      Promoted |= promote(F, *Alloca, Slot.ValueTy, Slot.Loads, Slot.Stores,
                          Slot.DefBlocks, DT, DomChildren, DF);
    }
    // Promotion inserts phis and deletes memory ops without CFG edits; the
    // up-front unreachable-block cleanup was the only CFG-changing part
    // and already invalidated, after which the tree was recomputed fresh —
    // so only features need the end-of-run invalidation either way.
    return PassResult::make(CfgChanged || Promoted, PreservedAnalyses::cfg());
  }

private:

  bool promote(
      Function &F, Instruction &Alloca, Type ValueTy,
      const std::vector<Instruction *> &Loads,
      const std::vector<Instruction *> &Stores,
      const std::unordered_set<BasicBlock *> &DefBlocks,
      const DominatorTree &DT,
      std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
          &DomChildren,
      std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> &DF) {
    Module &M = *F.parent();

    if (Loads.empty()) {
      // Store-only slot: drop the stores and the alloca.
      for (Instruction *St : Stores)
        St->parent()->erase(St->parent()->indexOf(St));
      Alloca.parent()->erase(Alloca.parent()->indexOf(&Alloca));
      return true;
    }
    assert(ValueTy != Type::Void && "promotable slot with no value type");

    // Iterated dominance frontier -> phi placement.
    std::unordered_set<BasicBlock *> PhiBlocks;
    std::vector<BasicBlock *> Work(DefBlocks.begin(), DefBlocks.end());
    while (!Work.empty()) {
      BasicBlock *BB = Work.back();
      Work.pop_back();
      auto It = DF.find(BB);
      if (It == DF.end())
        continue;
      for (BasicBlock *Frontier : It->second) {
        if (!PhiBlocks.insert(Frontier).second)
          continue;
        Work.push_back(Frontier);
      }
    }

    std::unordered_map<BasicBlock *, Instruction *> InsertedPhis;
    for (BasicBlock *BB : PhiBlocks) {
      auto Phi = std::make_unique<Instruction>(Opcode::Phi, ValueTy);
      InsertedPhis[BB] = BB->insert(0, std::move(Phi));
    }

    // Rename along the dominator tree. "Undef" reads-before-writes become
    // zero constants (defined behaviour, like our interpreter's zeroed
    // registers).
    Value *Zero = ValueTy == Type::F64
                      ? static_cast<Value *>(M.getConstFloat(0.0))
                      : static_cast<Value *>(M.getConstInt(ValueTy, 0));
    std::unordered_set<const Instruction *> LoadSet(Loads.begin(),
                                                    Loads.end());
    std::unordered_set<const Instruction *> StoreSet(Stores.begin(),
                                                     Stores.end());

    struct StackFrame {
      BasicBlock *BB;
      Value *Incoming;
      size_t ChildCursor = 0;
      Value *OutValue = nullptr;
    };

    // Iterative DFS to avoid deep recursion on long CFG chains.
    std::vector<StackFrame> Stack;
    Stack.push_back({F.entry(), Zero, 0, nullptr});
    // Pre-pass per block happens when the frame is first visited
    // (ChildCursor == 0 sentinel via OutValue == nullptr).
    while (!Stack.empty()) {
      StackFrame &Frame = Stack.back();
      BasicBlock *BB = Frame.BB;
      if (!Frame.OutValue) {
        Value *Current = Frame.Incoming;
        auto PhiIt = InsertedPhis.find(BB);
        if (PhiIt != InsertedPhis.end())
          Current = PhiIt->second;
        for (size_t I = 0; I < BB->size(); ++I) {
          Instruction *Inst = BB->instructions()[I].get();
          if (LoadSet.count(Inst)) {
            F.replaceAllUsesWith(Inst, Current);
            BB->erase(I);
            --I;
          } else if (StoreSet.count(Inst)) {
            Current = Inst->operand(0);
            BB->erase(I);
            --I;
          }
        }
        // Feed successors' inserted phis (dedupe: a condbr may name the
        // same target twice but contributes a single CFG edge).
        std::unordered_set<BasicBlock *> SeenSuccs;
        for (BasicBlock *Succ : BB->successors()) {
          if (!SeenSuccs.insert(Succ).second)
            continue;
          auto SuccPhi = InsertedPhis.find(Succ);
          if (SuccPhi != InsertedPhis.end())
            SuccPhi->second->addIncoming(Current, BB);
        }
        Frame.OutValue = Current;
      }
      auto ChildIt = DomChildren.find(BB);
      if (ChildIt != DomChildren.end() &&
          Frame.ChildCursor < ChildIt->second.size()) {
        BasicBlock *Child = ChildIt->second[Frame.ChildCursor++];
        Stack.push_back({Child, Frame.OutValue, 0, nullptr});
        continue;
      }
      Stack.pop_back();
    }

    // Phi blocks that were never reached by any incoming edge (e.g. phis
    // in blocks whose preds were all visited before placement) are fully
    // populated by the successor hook above. Some inserted phis may be
    // trivially redundant; leave them to phi-simplify/instcombine.
    Alloca.parent()->erase(Alloca.parent()->indexOf(&Alloca));
    return true;
  }
};

} // namespace

std::unique_ptr<Pass> passes::createMem2RegPass() {
  return std::make_unique<Mem2RegPass>();
}
