//===- passes/AnalysisManager.h - Cached analyses + invalidation -*- C++-*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// LLVM-style analysis caching for the pass pipeline. Passes consume
/// function-scoped analyses (dominator tree, natural-loop info, observation
/// feature vectors) through an AnalysisManager instead of recomputing them,
/// and report a PreservedAnalyses set describing what their transform kept
/// intact. The manager invalidates exactly what a pass abandoned, so a
/// step() that runs one pass on one function no longer pays for whole-module
/// analysis rebuilds — the dominant per-op cost in the paper's Table II.
///
/// Invalidation contract:
///  * PreservedAnalyses::all()          — the transform changed nothing any
///    analysis observes (e.g. value renaming).
///  * PreservedAnalyses::allButLayout() — only ordering changed (block
///    placement, operand swaps): counts and CFG analyses survive, the
///    order-sensitive Inst2vec/ProGraML artifacts are recomputed.
///  * PreservedAnalyses::cfg()          — instructions changed but the
///    block/edge structure did not: dominators and loops stay valid, all
///    feature artifacts do not.
///  * PreservedAnalyses::none()         — CFG changed; everything is
///    recomputed.
///
/// In debug builds (or with PassManager::setVerifyPreservation(true)) every
/// claim is checked after the pass runs: preserved cached analyses are
/// recomputed from scratch and compared, so a pass that lies about
/// preservation is caught at the point of the lie.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_PASSES_ANALYSISMANAGER_H
#define COMPILER_GYM_PASSES_ANALYSISMANAGER_H

#include "analysis/FeatureCache.h"
#include "ir/Dominators.h"
#include "ir/Module.h"
#include "util/CancelToken.h"
#include "util/Status.h"

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace compiler_gym {
namespace passes {

/// Analysis kinds tracked by the manager, usable as a bitmask.
enum AnalysisKind : unsigned {
  AK_DomTree = 1u << 0,  ///< ir::DominatorTree per function.
  AK_Loops = 1u << 1,    ///< Natural loops per function.
  /// Order-insensitive per-function observation vectors (InstCount,
  /// Autophase): histograms that survive block reordering and operand
  /// swaps.
  AK_Features = 1u << 2,
  /// Order-sensitive per-function observation artifacts (Inst2vec
  /// embedding segments, ProGraML graph fragments): anything that moves a
  /// block, reorders instructions, or swaps operands changes them even
  /// when every count survives. Layout-only passes (block placement,
  /// commutative canonicalization) abandon this bit and nothing else.
  AK_Layout = 1u << 3,
};
constexpr unsigned AK_All = AK_DomTree | AK_Loops | AK_Features | AK_Layout;
constexpr unsigned AK_CFG = AK_DomTree | AK_Loops;

/// The set of analyses a transform left valid.
class PreservedAnalyses {
public:
  /// Nothing the analyses observe changed.
  static PreservedAnalyses all() { return PreservedAnalyses(AK_All); }
  /// The CFG changed (or might have); recompute everything.
  static PreservedAnalyses none() { return PreservedAnalyses(0); }
  /// Instructions changed but block/edge structure did not: dominators and
  /// loops survive; feature vectors and layout artifacts must be
  /// recomputed.
  static PreservedAnalyses cfg() { return PreservedAnalyses(AK_CFG); }
  /// Only layout changed (block order, operand order): counts and CFG
  /// analyses survive, the order-sensitive Inst2vec/ProGraML artifacts do
  /// not.
  static PreservedAnalyses allButLayout() {
    return PreservedAnalyses(AK_All & ~AK_Layout);
  }

  /// Adds \p Mask (AnalysisKind bits) to the preserved set.
  PreservedAnalyses &preserve(unsigned Mask) {
    Bits |= Mask;
    return *this;
  }
  /// Removes \p Mask from the preserved set (marks it invalidated).
  PreservedAnalyses &abandon(unsigned Mask) {
    Bits &= ~Mask;
    return *this;
  }
  /// True if every kind in \p Mask is preserved.
  bool preserves(unsigned Mask) const { return (Bits & Mask) == Mask; }
  /// Kinds NOT preserved (the invalidation set).
  unsigned abandoned() const { return AK_All & ~Bits; }

  /// Weakens this set to the intersection with \p O (used to summarize a
  /// pipeline: only what every pass preserved survives).
  PreservedAnalyses &intersect(const PreservedAnalyses &O) {
    Bits &= O.Bits;
    return *this;
  }

private:
  explicit PreservedAnalyses(unsigned Bits) : Bits(Bits) {}
  unsigned Bits;
};

/// What one pass execution did: whether the module changed, and which
/// analyses survived if it did. An unchanged run implicitly preserves all.
struct PassResult {
  bool Changed = false;
  PreservedAnalyses Preserved = PreservedAnalyses::all();
  /// True when the pass (or FunctionPass::run on its behalf) already
  /// reported invalidation to the AnalysisManager at fine granularity.
  /// When false, the PassManager applies \c Preserved module-wide — so a
  /// module pass written without explicit invalidation calls is
  /// conservatively correct rather than silently stale.
  bool InvalidationApplied = false;
  /// True when the pass stopped early because the session's cancel token
  /// fired (FunctionPass::run polls between functions). Work already done
  /// is correctly committed/invalidated; the PassManager converts the flag
  /// into DeadlineExceeded so the session can roll back to its last
  /// committed state.
  bool Cancelled = false;

  /// Convenience: \p IfChanged applies only when \p DidChange is true.
  static PassResult make(bool DidChange, PreservedAnalyses IfChanged) {
    return {DidChange, DidChange ? IfChanged : PreservedAnalyses::all(),
            false};
  }
};

/// Caches function-scoped analyses across pass executions and routes
/// invalidation reports to every cached artifact, including the
/// observation feature vectors. Bound to one module; not thread-safe
/// (one manager per session, like one module per session).
class AnalysisManager {
public:
  /// The dominator tree for \p F, computed on first use per invalidation
  /// epoch.
  const ir::DominatorTree &domTree(const ir::Function &F);

  /// Natural loops of \p F (outermost-first), cached like domTree.
  const std::vector<ir::NaturalLoop> &loops(const ir::Function &F);

  /// Incrementally maintained InstCount/Autophase vectors.
  analysis::FeatureCache &features() { return Features; }

  /// Reports that a transform ran on \p F and preserved \p PA. Drops the
  /// abandoned cached analyses for \p F only.
  void invalidate(const ir::Function &F, const PreservedAnalyses &PA);

  /// Reports a module-level transform (e.g. inlining, global DCE): every
  /// function's abandoned analyses are dropped.
  void invalidateAll(const PreservedAnalyses &PA);

  /// Must be called before a function is erased from the module so no
  /// cached artifact dangles.
  void functionErased(const ir::Function *F);

  // -- Copy-on-write hooks ---------------------------------------------------
  /// A shared function payload \p Old was replaced by the COW copy \p Copy
  /// (Module::unshareFunction). Value-based feature artifacts are rekeyed
  /// to the structurally identical copy; the CFG analyses (whose
  /// BasicBlock pointers live in the old payload) are stashed aside so
  /// cowReverted() can reinstate them if the planned mutation turns out to
  /// be a no-op, and discarded by cowCommitted() otherwise.
  void cowDetached(const ir::Function *Old, const ir::Function *Copy);

  /// The COW copy \p Copy was never mutated and the original payload
  /// \p Old is back in its slot: feature artifacts are rekeyed back and
  /// the stashed CFG analyses reinstated.
  void cowReverted(const ir::Function *Copy, const ir::Function *Old);

  /// The COW copy was mutated and kept; the stash for \p Old is dropped.
  void cowCommitted(const ir::Function *Old);

  /// Warms this manager from \p O after an environment fork: cached CFG
  /// analyses are deep-copied (their BasicBlock pointers refer into
  /// payloads the forked module shares, so they stay valid) and the
  /// feature cache is copied wholesale. Telemetry counters start fresh.
  void adoptFrom(const AnalysisManager &O);

  /// Exact incremental dominator-tree maintenance: the linear-chain merge
  /// of \p Gone into \p Into ran on \p F (see
  /// ir::DominatorTree::applyBlockMerged). Patches a cached tree in place
  /// instead of dropping it.
  void blockMerged(const ir::Function &F, ir::BasicBlock *Into,
                   const ir::BasicBlock *Gone);

  /// True if \p F currently has a cached result of \p Kind (test hook and
  /// preservation-verifier input).
  bool isCached(const ir::Function &F, AnalysisKind Kind) const;

  /// Recomputes every *cached* dominator tree, loop set, and feature vector
  /// from scratch and compares with the cache. Returns Internal status
  /// naming \p PassName on the first mismatch — the "pass lied about
  /// preservation" detector.
  Status verifyCachedAnalyses(const ir::Module &M,
                              const std::string &PassName);

  // -- Cooperative cancellation --------------------------------------------
  /// The in-flight request's cancel token (or null), installed by the
  /// PassManager for the duration of one pipeline run. FunctionPass::run
  /// polls it between functions so a multi-function pass aborts within one
  /// function's worth of work.
  void setCancelToken(const util::CancelToken *Tok) { Cancel = Tok; }
  const util::CancelToken *cancelToken() const { return Cancel; }
  /// Null-safe liveness-proving poll: true when the running pipeline
  /// should stop.
  bool cancellationRequested() const { return Cancel && Cancel->poll(); }

  // -- Telemetry -----------------------------------------------------------
  struct Stats {
    uint64_t DomTreeHits = 0;
    uint64_t DomTreeComputes = 0;
    uint64_t LoopHits = 0;
    uint64_t LoopComputes = 0;
  };
  const Stats &stats() const { return S; }

private:
  struct Entry {
    std::unique_ptr<ir::DominatorTree> DT;
    std::unique_ptr<std::vector<ir::NaturalLoop>> Loops;
  };

  std::unordered_map<const ir::Function *, Entry> Cache;
  /// CFG analyses parked by cowDetached(), keyed by the original (shared)
  /// payload, awaiting cowReverted()/cowCommitted().
  std::unordered_map<const ir::Function *, Entry> CowStash;
  analysis::FeatureCache Features;
  const util::CancelToken *Cancel = nullptr;
  Stats S;
};

} // namespace passes
} // namespace compiler_gym

#endif // COMPILER_GYM_PASSES_ANALYSISMANAGER_H
