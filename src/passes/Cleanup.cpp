//===- passes/Cleanup.cpp - DCE-family and structural passes ---*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Transforms.h"
#include "passes/Utils.h"

#include <unordered_set>

using namespace compiler_gym;
using namespace compiler_gym::passes;
using namespace compiler_gym::ir;

namespace {

/// Removes pure instructions with no uses, iterating to a fixpoint.
class DcePass : public FunctionPass {
public:
  std::string name() const override { return "dce"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    // Worklist formulation: one use-count scan, then transitive removal by
    // decrementing operand counts as instructions die. O(n) total.
    auto Uses = F.computeUseCounts();
    std::vector<Instruction *> Dead;
    F.forEachInstruction([&](BasicBlock &, Instruction &I) {
      if (!I.hasSideEffects() && !I.isTerminator() && !Uses.count(&I))
        Dead.push_back(&I);
    });
    std::unordered_set<Instruction *> Doomed(Dead.begin(), Dead.end());
    while (!Dead.empty()) {
      Instruction *I = Dead.back();
      Dead.pop_back();
      for (Value *Op : I->operands()) {
        auto It = Uses.find(Op);
        if (It == Uses.end() || --It->second > 0)
          continue;
        auto *Def = dyn_cast<Instruction>(Op);
        if (Def && !Def->hasSideEffects() && !Def->isTerminator() &&
            Doomed.insert(Def).second)
          Dead.push_back(Def);
      }
    }
    for (const auto &BB : F.blocks())
      for (size_t I = BB->size(); I-- > 0;)
        if (Doomed.count(BB->instructions()[I].get()))
          BB->erase(I);
    // Only erases non-terminator instructions: CFG analyses survive.
    return PassResult::make(!Doomed.empty(), PreservedAnalyses::cfg());
  }
};

/// Mark-and-sweep DCE: roots are side-effecting instructions and
/// terminators; everything not transitively reachable through operands is
/// swept. Unlike DcePass this removes cyclic dead phi webs in one shot.
class AdcePass : public FunctionPass {
public:
  std::string name() const override { return "adce"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    std::unordered_set<const Instruction *> Live;
    std::vector<const Instruction *> Work;
    F.forEachInstruction([&](BasicBlock &, Instruction &I) {
      if (I.hasSideEffects() || I.isTerminator())
        if (Live.insert(&I).second)
          Work.push_back(&I);
    });
    while (!Work.empty()) {
      const Instruction *I = Work.back();
      Work.pop_back();
      for (const Value *Op : I->operands())
        if (const auto *Def = dyn_cast<Instruction>(Op))
          if (Live.insert(Def).second)
            Work.push_back(Def);
    }
    bool Changed = false;
    for (const auto &BB : F.blocks()) {
      for (size_t I = BB->size(); I-- > 0;) {
        Instruction *Inst = BB->instructions()[I].get();
        if (!Live.count(Inst)) {
          BB->erase(I);
          Changed = true;
        }
      }
    }
    return PassResult::make(Changed, PreservedAnalyses::cfg());
  }
};

/// Removes functions and globals with no references (except entry points).
class GlobalDcePass : public Pass {
public:
  std::string name() const override { return "global-dce"; }

  PassResult run(Module &M, AnalysisManager &AM) override {
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      std::unordered_set<std::string> CalledFns;
      std::unordered_set<const GlobalVariable *> UsedGlobals;
      for (const auto &F : M.functions()) {
        F->forEachInstruction([&](BasicBlock &, Instruction &I) {
          for (const Value *Op : I.operands()) {
            if (const auto *FR = dyn_cast<FunctionRef>(Op))
              CalledFns.insert(FR->calleeName());
            else if (const auto *G = dyn_cast<GlobalVariable>(Op))
              UsedGlobals.insert(G);
          }
        });
      }
      std::vector<Function *> DeadFns;
      for (const auto &F : M.functions())
        if (F->name() != "main" && !F->isNoInline() && !CalledFns.count(F->name()))
          DeadFns.push_back(F.get());
      for (Function *F : DeadFns) {
        AM.functionErased(F);
        M.eraseFunction(F);
        Changed = LocalChange = true;
      }
      // Globals: erasing shifts interpreter addresses of later globals but
      // only when the global is never referenced, so behaviour of reads and
      // writes is unaffected; the output hash covers referenced memory via
      // the same layout for original and optimized modules only when
      // layouts match — so we keep dead globals (size win would be in
      // .data, which the paper's code-size rewards do not count).
      (void)UsedGlobals;
    }
    // Surviving functions are untouched; erased ones were reported above,
    // which also marks the module-level feature aggregates stale.
    PassResult R = PassResult::make(Changed, PreservedAnalyses::all());
    R.InvalidationApplied = true; // functionErased() calls above.
    return R;
  }
};

/// Strips local value names. No semantic change; mirrors LLVM's
/// -strip-names utility pass (an action with ~zero reward, which teaches
/// agents that some actions are useless).
class StripNamesPass : public FunctionPass {
public:
  std::string name() const override { return "strip-names"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    bool Changed = false;
    F.forEachInstruction([&](BasicBlock &, Instruction &I) {
      if (!I.name().empty()) {
        I.setName("");
        Changed = true;
      }
    });
    // Renaming is invisible to every analysis (the printed form and hash
    // still change; those are tracked by the changed bit, not by PA).
    return PassResult::make(Changed, PreservedAnalyses::all());
  }
};

/// Unifies multiple return sites into one exit block (LLVM's
/// -mergereturn / UnifyFunctionExitNodes).
class MergeReturnPass : public FunctionPass {
public:
  std::string name() const override { return "mergereturn"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    std::vector<BasicBlock *> RetBlocks;
    for (const auto &BB : F.blocks()) {
      Instruction *Term = BB->terminator();
      if (Term && Term->opcode() == Opcode::Ret)
        RetBlocks.push_back(BB.get());
    }
    if (RetBlocks.size() < 2)
      return PassResult::make(false, PreservedAnalyses::all());

    BasicBlock *Exit = F.createBlock("unified_exit");
    Instruction *RetPhi = nullptr;
    if (F.returnType() != Type::Void) {
      auto Phi = std::make_unique<Instruction>(Opcode::Phi, F.returnType());
      RetPhi = Exit->append(std::move(Phi));
    }
    auto Ret = std::make_unique<Instruction>(Opcode::Ret, Type::Void);
    if (RetPhi)
      Ret->operands().push_back(RetPhi);
    Exit->append(std::move(Ret));

    for (BasicBlock *BB : RetBlocks) {
      Instruction *OldRet = BB->terminator();
      if (RetPhi)
        RetPhi->addIncoming(OldRet->operand(0), BB);
      BB->erase(BB->size() - 1);
      auto Br = std::make_unique<Instruction>(
          Opcode::Br, Type::Void, std::vector<Value *>{Exit});
      BB->append(std::move(Br));
    }
    return PassResult::make(true, PreservedAnalyses::none());
  }
};

/// Deletes blocks unreachable from the entry.
class UnreachableBlockElimPass : public FunctionPass {
public:
  std::string name() const override { return "unreachable-elim"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    // Unreachable blocks are invisible to both CFG analyses: the CHK
    // walk never reaches them (no Rpo/Idom entries) and natural loops
    // only arise from reachable back edges. Erasing them preserves the
    // relative order of the surviving blocks, so cached dominator trees
    // and loop sets verify bit-for-bit against a recomputation.
    return PassResult::make(
        removeUnreachableBlocks(F),
        PreservedAnalyses::none().preserve(AK_DomTree | AK_Loops));
  }
};

/// Demotes phi nodes to stack slots (the inverse of mem2reg; LLVM's
/// -reg2mem). Grows the program — a deliberately "negative" action.
class Reg2MemPass : public FunctionPass {
public:
  std::string name() const override { return "reg2mem"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    // Collect phis first; we mutate blocks while demoting.
    std::vector<Instruction *> Phis;
    F.forEachInstruction([&](BasicBlock &, Instruction &I) {
      if (I.opcode() == Opcode::Phi)
        Phis.push_back(&I);
    });
    if (Phis.empty())
      return PassResult::make(false, PreservedAnalyses::all());

    BasicBlock *Entry = F.entry();
    for (Instruction *Phi : Phis) {
      BasicBlock *BB = Phi->parent();
      // Slot in the entry block.
      auto AllocaI =
          std::make_unique<Instruction>(Opcode::Alloca, Type::Ptr);
      AllocaI->setAllocaWords(1);
      Instruction *Slot = Entry->insert(Entry->firstNonPhi(),
                                        std::move(AllocaI));

      // Store each incoming value at the end of its predecessor.
      for (unsigned K = 0; K < Phi->numIncoming(); ++K) {
        BasicBlock *Pred = Phi->incomingBlock(K);
        auto St = std::make_unique<Instruction>(
            Opcode::Store, Type::Void,
            std::vector<Value *>{Phi->incomingValue(K), Slot});
        Pred->insert(Pred->size() - 1, std::move(St));
      }

      // Load at the start of the phi's block (after remaining phis).
      auto Ld = std::make_unique<Instruction>(
          Opcode::Load, Phi->type(), std::vector<Value *>{Slot});
      Instruction *Loaded = BB->insert(BB->firstNonPhi(), std::move(Ld));
      F.replaceAllUsesWith(Phi, Loaded);
      BB->erase(BB->indexOf(Phi));
    }
    // Inserts allocas/stores/loads and drops phis without touching the
    // block graph.
    return PassResult::make(true, PreservedAnalyses::cfg());
  }
};

} // namespace

std::unique_ptr<Pass> passes::createDcePass() {
  return std::make_unique<DcePass>();
}
std::unique_ptr<Pass> passes::createAdcePass() {
  return std::make_unique<AdcePass>();
}
std::unique_ptr<Pass> passes::createGlobalDcePass() {
  return std::make_unique<GlobalDcePass>();
}
std::unique_ptr<Pass> passes::createStripNamesPass() {
  return std::make_unique<StripNamesPass>();
}
std::unique_ptr<Pass> passes::createMergeReturnPass() {
  return std::make_unique<MergeReturnPass>();
}
std::unique_ptr<Pass> passes::createUnreachableBlockElimPass() {
  return std::make_unique<UnreachableBlockElimPass>();
}
std::unique_ptr<Pass> passes::createReg2MemPass() {
  return std::make_unique<Reg2MemPass>();
}
