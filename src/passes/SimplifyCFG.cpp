//===- passes/SimplifyCFG.cpp - CFG simplification --------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Transforms.h"
#include "passes/Utils.h"

#include "ir/Dominators.h"

#include <algorithm>
#include <functional>
#include <unordered_map>
#include <unordered_set>

using namespace compiler_gym;
using namespace compiler_gym::passes;
using namespace compiler_gym::ir;

namespace {

/// Folds condbr with constant or duplicate-target conditions into br.
bool foldBranches(Function &F, Module &M) {
  bool Changed = false;
  for (const auto &BB : F.blocks()) {
    Instruction *Term = BB->terminator();
    if (!Term || Term->opcode() != Opcode::CondBr)
      continue;
    auto *C = dyn_cast<Constant>(Term->operand(0));
    auto *TrueBB = cast<BasicBlock>(Term->operand(1));
    auto *FalseBB = cast<BasicBlock>(Term->operand(2));
    if (!C && TrueBB != FalseBB)
      continue;
    BasicBlock *Live = !C ? TrueBB : (C->intValue() ? TrueBB : FalseBB);
    BasicBlock *Dead = (Live == TrueBB) ? FalseBB : TrueBB;
    if (Dead != Live)
      removePhiIncomingFor(*Dead, BB.get());
    BB->erase(BB->size() - 1);
    auto Br = std::make_unique<Instruction>(Opcode::Br, Type::Void,
                                            std::vector<Value *>{Live});
    BB->append(std::move(Br));
    Changed = true;
  }
  (void)M;
  return Changed;
}

/// Merges a block into its unique successor when that successor has a
/// unique predecessor (LLVM's "merge block into predecessor").
/// \p OnMerge, when set, is told about every (surviving, erased) pair
/// before the erased block is destroyed — the hook behind incremental
/// dominator-tree maintenance.
using MergeCallback =
    std::function<void(BasicBlock *Into, const BasicBlock *Gone)>;

bool mergeLinearChains(Function &F, const MergeCallback &OnMerge = nullptr) {
  bool Changed = false;
  bool LocalChange = true;
  while (LocalChange) {
    LocalChange = false;
    for (const auto &BBPtr : F.blocks()) {
      BasicBlock *BB = BBPtr.get();
      Instruction *Term = BB->terminator();
      if (!Term || Term->opcode() != Opcode::Br)
        continue;
      auto *Succ = cast<BasicBlock>(Term->operand(0));
      if (Succ == BB || Succ == F.entry())
        continue;
      std::vector<BasicBlock *> Preds = Succ->predecessors();
      if (Preds.size() != 1 || Preds[0] != BB)
        continue;
      // Collapse Succ's phis (single incoming) to their value.
      while (Succ->firstNonPhi() > 0) {
        Instruction *Phi = Succ->instructions()[0].get();
        Value *Incoming = Phi->numIncoming() >= 1 ? Phi->incomingValue(0)
                                                  : nullptr;
        if (!Incoming)
          break;
        F.replaceAllUsesWith(Phi, Incoming);
        Succ->erase(0);
      }
      // Drop BB's terminator, splice Succ's instructions into BB.
      BB->erase(BB->size() - 1);
      while (!Succ->empty()) {
        std::unique_ptr<Instruction> Moved = Succ->detach(0);
        Moved->setParent(BB);
        BB->append(std::move(Moved));
      }
      // Phis downstream now see BB as the predecessor.
      for (BasicBlock *After : BB->successors())
        replacePhiIncomingBlock(*After, Succ, BB);
      if (OnMerge)
        OnMerge(BB, Succ);
      F.eraseBlock(Succ);
      LocalChange = Changed = true;
      break; // Block list mutated; restart scan.
    }
  }
  return Changed;
}

/// Bypasses trampoline blocks that contain only an unconditional branch.
bool removeTrampolines(Function &F) {
  bool Changed = false;
  bool LocalChange = true;
  while (LocalChange) {
    LocalChange = false;
    for (const auto &BBPtr : F.blocks()) {
      BasicBlock *BB = BBPtr.get();
      if (BB == F.entry() || BB->size() != 1)
        continue;
      Instruction *Term = BB->terminator();
      if (!Term || Term->opcode() != Opcode::Br)
        continue;
      auto *Target = cast<BasicBlock>(Term->operand(0));
      if (Target == BB)
        continue;
      std::vector<BasicBlock *> Preds = BB->predecessors();
      if (Preds.empty())
        continue; // Unreachable; let unreachable-elim handle it.
      // Redirecting a pred that already branches to Target would create a
      // duplicate edge; with phis in Target the incoming values could
      // conflict, so bail for that pred configuration.
      std::vector<BasicBlock *> TargetPreds = Target->predecessors();
      bool Conflict = false;
      for (BasicBlock *P : Preds)
        if (std::find(TargetPreds.begin(), TargetPreds.end(), P) !=
            TargetPreds.end())
          Conflict = true;
      if (Conflict && Target->firstNonPhi() > 0)
        continue;
      if (Conflict)
        continue; // Keep CFG edges unique for simplicity.

      // Rewrite Target's phis: the incoming for BB becomes one incoming per
      // pred with the same value.
      for (size_t PhiIdx = 0; PhiIdx < Target->firstNonPhi(); ++PhiIdx) {
        Instruction *Phi = Target->instructions()[PhiIdx].get();
        Value *ViaValue = nullptr;
        for (unsigned K = 0; K < Phi->numIncoming(); ++K)
          if (Phi->incomingBlock(K) == BB)
            ViaValue = Phi->incomingValue(K);
        if (!ViaValue)
          continue;
        for (unsigned K = 0; K < Phi->numIncoming(); ++K)
          if (Phi->incomingBlock(K) == BB) {
            Phi->removeIncoming(K);
            break;
          }
        for (BasicBlock *P : Preds)
          Phi->addIncoming(ViaValue, P);
      }
      for (BasicBlock *P : Preds)
        P->terminator()->replaceSuccessor(BB, Target);
      F.eraseBlock(BB);
      LocalChange = Changed = true;
      break;
    }
  }
  return Changed;
}

/// The composite -simplifycfg action.
class SimplifyCfgPass : public FunctionPass {
public:
  std::string name() const override { return "simplifycfg"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    Module &M = *F.parent();
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      LocalChange |= foldBranches(F, M);
      LocalChange |= removeUnreachableBlocks(F);
      LocalChange |= removeTrampolines(F);
      LocalChange |= mergeLinearChains(F);
      Changed |= LocalChange;
    }
    return PassResult::make(Changed, PreservedAnalyses::none());
  }
};

/// Just the linear-chain merging piece, exposed as its own action.
class BlockMergePass : public FunctionPass {
public:
  std::string name() const override { return "block-merge"; }

  PassResult runOnFunction(Function &F, AnalysisManager &AM) override {
    // Each merge is applied to a cached dominator tree in place (an exact
    // patch — see DominatorTree::applyBlockMerged), so the tree survives
    // the pass. Loop info does not: a merged latch changes Latches sets.
    bool Changed = mergeLinearChains(
        F, [&](BasicBlock *Into, const BasicBlock *Gone) {
          AM.blockMerged(F, Into, Gone);
        });
    return PassResult::make(
        Changed, PreservedAnalyses::none().preserve(AK_DomTree));
  }
};

/// Threads branches through blocks of the form
///   %c = phi i1 [ true, %p1 ], [ %x, %p2 ] ; condbr %c, T, F
/// by retargeting constant-incoming predecessors directly to T or F.
class JumpThreadingPass : public FunctionPass {
public:
  std::string name() const override { return "jump-threading"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    bool Changed = false;
    for (const auto &BBPtr : F.blocks()) {
      BasicBlock *BB = BBPtr.get();
      if (BB == F.entry() || BB->size() != 2)
        continue;
      Instruction *Phi = BB->instructions()[0].get();
      Instruction *Term = BB->terminator();
      if (!Term || Phi->opcode() != Opcode::Phi ||
          Term->opcode() != Opcode::CondBr || Term->operand(0) != Phi)
        continue;
      auto *TrueBB = cast<BasicBlock>(Term->operand(1));
      auto *FalseBB = cast<BasicBlock>(Term->operand(2));
      if (TrueBB == BB || FalseBB == BB || TrueBB == FalseBB)
        continue;

      for (unsigned K = 0; K < Phi->numIncoming(); ++K) {
        auto *C = dyn_cast<Constant>(Phi->incomingValue(K));
        if (!C)
          continue;
        BasicBlock *Pred = Phi->incomingBlock(K);
        BasicBlock *Dest = C->intValue() ? TrueBB : FalseBB;
        // The destination must not already have Pred as a predecessor
        // (duplicate edges would corrupt its phis), and must not have phis
        // that require values defined in BB.
        std::vector<BasicBlock *> DestPreds = Dest->predecessors();
        if (std::find(DestPreds.begin(), DestPreds.end(), Pred) !=
            DestPreds.end())
          continue;
        bool DefinedInBB = false;
        for (size_t PhiIdx = 0; PhiIdx < Dest->firstNonPhi(); ++PhiIdx) {
          Instruction *DPhi = Dest->instructions()[PhiIdx].get();
          for (unsigned J = 0; J < DPhi->numIncoming(); ++J) {
            if (DPhi->incomingBlock(J) != BB)
              continue;
            if (const auto *DefI =
                    dyn_cast<Instruction>(DPhi->incomingValue(J)))
              if (DefI->parent() == BB)
                DefinedInBB = true;
          }
        }
        if (DefinedInBB)
          continue;

        // Thread: Pred jumps straight to Dest.
        for (size_t PhiIdx = 0; PhiIdx < Dest->firstNonPhi(); ++PhiIdx) {
          Instruction *DPhi = Dest->instructions()[PhiIdx].get();
          for (unsigned J = 0; J < DPhi->numIncoming(); ++J)
            if (DPhi->incomingBlock(J) == BB)
              DPhi->addIncoming(DPhi->incomingValue(J), Pred);
        }
        Pred->terminator()->replaceSuccessor(BB, Dest);
        Phi->removeIncoming(K);
        Changed = true;
        // BB lost predecessor Pred. If BB became unreachable the cleanup
        // below removes it. Restart the incoming scan.
        K = static_cast<unsigned>(-1);
      }
    }
    if (Changed)
      removeUnreachableBlocks(F);
    return PassResult::make(Changed, PreservedAnalyses::none());
  }
};

/// Reorders blocks into reverse postorder. Semantics-neutral; changes
/// layout, the printed form, and therefore the state hash (a cheap,
/// near-zero-reward action like LLVM's block-placement).
class CanonicalizeBlockOrderPass : public FunctionPass {
public:
  std::string name() const override { return "canonicalize-block-order"; }

  unsigned requiredAnalyses() const override { return AK_DomTree; }

  PassResult runOnFunction(Function &F, AnalysisManager &AM) override {
    const DominatorTree &DT = AM.domTree(F);
    const std::vector<BasicBlock *> &Rpo = DT.reversePostorder();
    bool Changed = false;
    for (size_t I = 0; I < Rpo.size(); ++I) {
      if (F.blocks()[I].get() != Rpo[I]) {
        F.moveBlock(Rpo[I], I);
        Changed = true;
      }
    }
    // Block-list order is not part of the CFG: dominators, loops and all
    // structural feature counts are untouched — but the order-sensitive
    // artifacts (Inst2vec rows, ProGraML fragments) follow block order.
    return PassResult::make(Changed, PreservedAnalyses::allButLayout());
  }
};

} // namespace

std::unique_ptr<Pass> passes::createSimplifyCfgPass() {
  return std::make_unique<SimplifyCfgPass>();
}
std::unique_ptr<Pass> passes::createBlockMergePass() {
  return std::make_unique<BlockMergePass>();
}
std::unique_ptr<Pass> passes::createJumpThreadingPass() {
  return std::make_unique<JumpThreadingPass>();
}
std::unique_ptr<Pass> passes::createCanonicalizeBlockOrderPass() {
  return std::make_unique<CanonicalizeBlockOrderPass>();
}
