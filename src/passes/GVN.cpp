//===- passes/GVN.cpp - Value numbering passes -----------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Dominator-scoped redundancy elimination (gvn, early-cse), plus the
/// deliberately nondeterministic gvn-sink pass reproducing the LLVM
/// reproducibility bug described in the paper (§III-B3): it sorts a vector
/// of basic block pointers by address, so its output depends on heap
/// layout. CompilerGym's replay validation detects exactly this.
///
//===----------------------------------------------------------------------===//

#include "passes/Transforms.h"
#include "passes/Utils.h"

#include "ir/Dominators.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

using namespace compiler_gym;
using namespace compiler_gym::passes;
using namespace compiler_gym::ir;

namespace {

using ExprKey = std::vector<uint64_t>;

ExprKey makeKey(const Instruction &I, const StableValueIds &Ids) {
  ExprKey Key;
  Key.push_back(static_cast<uint64_t>(I.opcode()));
  Key.push_back(static_cast<uint64_t>(I.type()));
  Key.push_back(static_cast<uint64_t>(I.pred()));
  std::vector<uint64_t> Ops;
  for (const Value *Op : I.operands())
    Ops.push_back(Ids.idOf(Op));
  if (I.isCommutative() && Ops.size() == 2 && Ops[0] > Ops[1])
    std::swap(Ops[0], Ops[1]);
  Key.insert(Key.end(), Ops.begin(), Ops.end());
  return Key;
}

/// Dominator-tree DFS with a scoped expression table. If \p CseLoads is
/// set, block-local load reuse is performed as well (early-cse behaviour).
class DomScopedVnPass : public FunctionPass {
public:
  DomScopedVnPass(std::string PassName, bool CseLoads)
      : PassName(std::move(PassName)), CseLoads(CseLoads) {}

  std::string name() const override { return PassName; }

  unsigned requiredAnalyses() const override { return AK_DomTree; }

  PassResult runOnFunction(Function &F, AnalysisManager &AM) override {
    const DominatorTree &DT = AM.domTree(F);
    StableValueIds Ids(F);

    // Dom-tree children lists (deterministic order: function block order).
    std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>> Children;
    for (const auto &BB : F.blocks()) {
      if (!DT.isReachable(BB.get()))
        continue;
      if (BasicBlock *Parent = DT.idom(BB.get()))
        Children[Parent].push_back(BB.get());
    }

    bool Changed = false;
    std::map<ExprKey, Value *> Table;
    // Scope stack entries record the keys we shadowed/added per block.
    dfs(F, F.entry(), Children, Ids, Table, Changed);
    return PassResult::make(Changed, PreservedAnalyses::cfg());
  }

private:
  void dfs(Function &F, BasicBlock *BB,
           std::unordered_map<const BasicBlock *, std::vector<BasicBlock *>>
               &Children,
           const StableValueIds &Ids, std::map<ExprKey, Value *> &Table,
           bool &Changed) {
    std::vector<std::pair<ExprKey, Value *>> Shadowed;
    std::vector<ExprKey> Added;

    // Block-local load table: pointer id -> load instruction.
    std::unordered_map<uint64_t, Instruction *> LocalLoads;

    for (size_t I = 0; I < BB->size(); ++I) {
      Instruction *Inst = BB->instructions()[I].get();
      if (CseLoads) {
        if (Inst->opcode() == Opcode::Store || Inst->opcode() == Opcode::Call)
          LocalLoads.clear();
        else if (Inst->opcode() == Opcode::Load) {
          uint64_t PtrId = Ids.idOf(Inst->operand(0));
          auto It = LocalLoads.find(PtrId);
          if (It != LocalLoads.end() && It->second->type() == Inst->type()) {
            F.replaceAllUsesWith(Inst, It->second);
            BB->erase(I);
            --I;
            Changed = true;
            continue;
          }
          LocalLoads.emplace(PtrId, Inst);
        }
      }
      if (!Inst->isPure())
        continue;
      ExprKey Key = makeKey(*Inst, Ids);
      auto It = Table.find(Key);
      if (It != Table.end()) {
        F.replaceAllUsesWith(Inst, It->second);
        BB->erase(I);
        --I;
        Changed = true;
        continue;
      }
      Table.emplace(std::move(Key), Inst);
      Added.push_back(makeKey(*Inst, Ids));
    }

    auto ChildIt = Children.find(BB);
    if (ChildIt != Children.end())
      for (BasicBlock *Child : ChildIt->second)
        dfs(F, Child, Children, Ids, Table, Changed);

    for (const ExprKey &Key : Added)
      Table.erase(Key);
    for (auto &[Key, V] : Shadowed)
      Table[Key] = V;
  }

  std::string PassName;
  bool CseLoads;
};

/// The paper's reproducibility-bug reproduction: "LLVM's -gvn-sink pass
/// contains an operation that sorts a vector of basic block pointers by
/// address, causing inconsistent output". This pass performs a
/// semantics-preserving but layout-visible transformation (reordering the
/// non-entry blocks) keyed on raw pointer order, so repeated runs from
/// identical inputs produce differently-printed modules.
class GvnSinkPass : public FunctionPass {
public:
  std::string name() const override { return "gvn-sink"; }
  bool isDeterministic() const override { return false; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    if (F.numBlocks() < 3)
      return PassResult::make(false, PreservedAnalyses::all());
    std::vector<BasicBlock *> Rest;
    for (size_t I = 1; I < F.numBlocks(); ++I)
      Rest.push_back(F.blocks()[I].get());
    std::vector<BasicBlock *> Sorted = Rest;
    std::sort(Sorted.begin(), Sorted.end()); // Pointer order: the bug.
    if (Sorted == Rest)
      return PassResult::make(false, PreservedAnalyses::all());
    for (size_t I = 0; I < Sorted.size(); ++I)
      F.moveBlock(Sorted[I], I + 1);
    // Like canonicalize-block-order: layout-only; counts and CFG analyses
    // survive, the order-sensitive Inst2vec/ProGraML artifacts do not.
    return PassResult::make(true, PreservedAnalyses::allButLayout());
  }
};

} // namespace

std::unique_ptr<Pass> passes::createGvnPass() {
  return std::make_unique<DomScopedVnPass>("gvn", /*CseLoads=*/false);
}
std::unique_ptr<Pass> passes::createEarlyCsePass() {
  return std::make_unique<DomScopedVnPass>("early-cse", /*CseLoads=*/true);
}
std::unique_ptr<Pass> passes::createGvnSinkPass() {
  return std::make_unique<GvnSinkPass>();
}
