//===- passes/Inliner.cpp - Function inlining ------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Threshold-based function inlining. The threshold is the callee's
/// instruction count; multiple thresholds are registered as separate
/// actions (inline<25>, inline<100>, ...), mirroring how inlining
/// aggressiveness is a tunable knob in the paper's GCC/LLVM spaces.
///
//===----------------------------------------------------------------------===//

#include "passes/Transforms.h"
#include "passes/Utils.h"

#include <unordered_map>
#include <unordered_set>

using namespace compiler_gym;
using namespace compiler_gym::passes;
using namespace compiler_gym::ir;

namespace {

class InlinerPass : public Pass {
public:
  explicit InlinerPass(unsigned SizeThreshold) : Threshold(SizeThreshold) {}

  std::string name() const override {
    return "inline<" + std::to_string(Threshold) + ">";
  }

  PassResult run(Module &M, AnalysisManager &AM) override {
    // Per-caller: collect this caller's call sites up front (inlining
    // appends blocks but call sites found later inside inlined bodies are
    // not revisited this run — one level per action keeps growth under the
    // agent's control), then mutate. Callees are only read, so a shared
    // caller payload is COW-detached before its first inline and the
    // sites rescanned in the copy.
    bool Changed = false;
    for (size_t Idx = 0; Idx < M.functions().size(); ++Idx) {
      Function *Caller = M.functions()[Idx].get();
      std::vector<Instruction *> Sites = inlinableSites(M, *Caller);
      if (Sites.empty())
        continue;
      if (M.isFunctionShared(Idx)) {
        std::shared_ptr<Function> Old = M.unshareFunction(Idx);
        AM.functionErased(Old.get());
        Caller = M.functions()[Idx].get();
        Sites = inlinableSites(M, *Caller);
      }
      for (Instruction *Call : Sites) {
        // The call's parent may have been split by an earlier inline in
        // the same block; always use the current parent.
        inlineSite(M, *Caller, Call->parent(), Call);
      }
      // Only callers mutate; callees and bystanders keep their analyses.
      AM.invalidate(*Caller, PreservedAnalyses::none());
      Changed = true;
    }
    PassResult R = PassResult::make(Changed, PreservedAnalyses::none());
    R.InvalidationApplied = true; // Per-caller invalidation above.
    return R;
  }

private:
  std::vector<Instruction *> inlinableSites(const Module &M,
                                            Function &Caller) const {
    std::vector<Instruction *> Sites;
    Caller.forEachInstruction([&](BasicBlock &, Instruction &I) {
      if (I.opcode() != Opcode::Call)
        return;
      const Function *Callee = I.calledFunction(M);
      if (Callee && shouldInline(Caller, *Callee))
        Sites.push_back(&I);
    });
    return Sites;
  }

  bool shouldInline(const Function &Caller, const Function &Callee) const {
    if (Caller.name() == Callee.name() || Callee.empty() ||
        Callee.isNoInline())
      return false;
    if (Callee.instructionCount() > Threshold)
      return false;
    // Directly recursive callees never finish inlining; skip them.
    bool Recursive = false;
    Callee.forEachInstruction([&](BasicBlock &, Instruction &I) {
      if (I.opcode() == Opcode::Call && I.calleeName() == Callee.name())
        Recursive = true;
    });
    return !Recursive;
  }

  void inlineSite(Module &M, Function &Caller, BasicBlock *BB,
                  Instruction *Call) {
    Function *Callee = M.findFunction(Call->calleeName());
    size_t CallIdx = BB->indexOf(Call);

    // 1. Split: move everything after the call into a continuation block.
    BasicBlock *Cont = Caller.createBlock(BB->name() + ".inlcont");
    while (BB->size() > CallIdx + 1) {
      std::unique_ptr<Instruction> Moved = BB->detach(CallIdx + 1);
      Moved->setParent(Cont);
      Cont->append(std::move(Moved));
    }
    for (BasicBlock *Succ : Cont->successors())
      replacePhiIncomingBlock(*Succ, BB, Cont);

    // 2. Clone the callee body with argument/value remapping.
    std::unordered_map<const Value *, Value *> Map;
    for (size_t A = 0; A < Callee->numArgs(); ++A)
      Map[Callee->arg(A)] = Call->callArg(static_cast<unsigned>(A));
    std::vector<BasicBlock *> NewBlocks;
    for (const auto &CB : Callee->blocks()) {
      BasicBlock *NB =
          Caller.createBlock(Callee->name() + "." + CB->name() + ".inl");
      Map[CB.get()] = NB;
      NewBlocks.push_back(NB);
    }
    size_t BlockIdx = 0;
    for (const auto &CB : Callee->blocks()) {
      BasicBlock *NB = NewBlocks[BlockIdx++];
      for (const auto &I : CB->instructions()) {
        auto Clone = std::make_unique<Instruction>(I->opcode(), I->type());
        Clone->setPred(I->pred());
        Clone->setAllocaWords(I->allocaWords());
        Clone->setName(I->name());
        Map[I.get()] = NB->append(std::move(Clone));
      }
    }
    BlockIdx = 0;
    for (const auto &CB : Callee->blocks()) {
      BasicBlock *NB = NewBlocks[BlockIdx++];
      for (size_t I = 0; I < CB->size(); ++I) {
        Instruction *NewI = NB->instructions()[I].get();
        for (Value *Op : CB->instructions()[I]->operands()) {
          auto It = Map.find(Op);
          NewI->operands().push_back(It == Map.end() ? Op : It->second);
        }
      }
    }

    // 3. Rewrite cloned returns into branches to the continuation.
    std::vector<std::pair<Value *, BasicBlock *>> Returns;
    for (BasicBlock *NB : NewBlocks) {
      Instruction *Term = NB->terminator();
      if (!Term || Term->opcode() != Opcode::Ret)
        continue;
      Value *RetVal = Term->numOperands() ? Term->operand(0) : nullptr;
      NB->erase(NB->size() - 1);
      auto Br = std::make_unique<Instruction>(Opcode::Br, Type::Void,
                                              std::vector<Value *>{Cont});
      NB->append(std::move(Br));
      Returns.emplace_back(RetVal, NB);
    }

    // 4. Replace the call's value with a phi over the return values. If
    // the callee never returns, the continuation is unreachable and any
    // use of the call value is dead; substitute zero.
    if (Call->type() != Type::Void) {
      if (!Returns.empty()) {
        auto Phi = std::make_unique<Instruction>(Opcode::Phi, Call->type());
        Instruction *PhiI = Cont->insert(0, std::move(Phi));
        for (auto &[V, NB] : Returns)
          PhiI->addIncoming(V, NB);
        Caller.replaceAllUsesWith(Call, PhiI);
      } else if (Caller.hasUses(Call)) {
        Value *Zero = Call->type() == Type::F64
                          ? static_cast<Value *>(M.getConstFloat(0.0))
                          : static_cast<Value *>(
                                M.getConstInt(Call->type() == Type::Ptr
                                                  ? Type::I64
                                                  : Call->type(),
                                              0));
        // Ptr-typed zero needs an inttoptr; simplest safe stand-in is an
        // unreachable-guarded null via constant 0 through the int type.
        if (Call->type() == Type::Ptr) {
          auto Cast = std::make_unique<Instruction>(
              Opcode::IntToPtr, Type::Ptr, std::vector<Value *>{Zero});
          Zero = Cont->insert(0, std::move(Cast));
        }
        Caller.replaceAllUsesWith(Call, Zero);
      }
    }

    // 5. Replace the call instruction with a branch to the cloned entry.
    BasicBlock *ClonedEntry = NewBlocks.front();
    BB->erase(CallIdx);
    auto Br = std::make_unique<Instruction>(
        Opcode::Br, Type::Void, std::vector<Value *>{ClonedEntry});
    BB->append(std::move(Br));
    // A callee with no reachable return (infinite loop / unreachable) may
    // leave the continuation block orphaned; give it a terminator if the
    // original block's terminator moved there, which it always did, so
    // nothing to do. If Cont ended up empty (call was the terminator
    // predecessor-wise), that cannot happen: calls are never terminators.
  }

  unsigned Threshold;
};

} // namespace

std::unique_ptr<Pass> passes::createInlinerPass(unsigned SizeThreshold) {
  return std::make_unique<InlinerPass>(SizeThreshold);
}
