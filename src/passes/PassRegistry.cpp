//===- passes/PassRegistry.cpp --------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/PassRegistry.h"

#include "passes/Transforms.h"

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::passes;

const PassRegistry &PassRegistry::instance() {
  static PassRegistry Registry;
  return Registry;
}

void PassRegistry::add(const std::string &Name,
                       std::function<std::unique_ptr<Pass>()> Factory,
                       bool InDefaultActionSpace) {
  Factories.emplace_back(Name, std::move(Factory));
  AllNames.push_back(Name);
  if (InDefaultActionSpace)
    DefaultActions.push_back(Name);
}

PassRegistry::PassRegistry() {
  // Cleanup family.
  add("dce", createDcePass);
  add("adce", createAdcePass);
  add("global-dce", createGlobalDcePass);
  add("strip-names", createStripNamesPass);
  add("mergereturn", createMergeReturnPass);
  add("unreachable-elim", createUnreachableBlockElimPass);
  add("reg2mem", createReg2MemPass);

  // Scalar family.
  add("constfold", createConstFoldPass);
  add("instsimplify", createInstSimplifyPass);
  add("instcombine", createInstCombinePass);
  add("reassociate", createReassociatePass);
  add("cmp-canonicalize", createCmpCanonicalizePass);
  add("shift-combine", createShiftCombinePass);
  add("strength-reduce", createStrengthReducePass);
  add("sccp", createSccpPass);
  add("sink", createSinkPass);
  add("cse-local", createLocalCsePass);
  add("dse-local", createLocalDsePass);
  add("store-forward", createStoreForwardPass);
  add("redundant-load-elim", createRedundantLoadElimPass);
  add("lower-select", createLowerSelectPass);
  add("phi-simplify", createPhiSimplifyPass);

  // CFG family.
  add("simplifycfg", createSimplifyCfgPass);
  add("block-merge", createBlockMergePass);
  add("jump-threading", createJumpThreadingPass);
  add("canonicalize-block-order", createCanonicalizeBlockOrderPass);

  // Redundancy elimination.
  add("gvn", createGvnPass);
  add("early-cse", createEarlyCsePass);
  // Quarantined: nondeterministic output (see GVN.cpp); reproduces the
  // paper's -gvn-sink reproducibility bug and is excluded from the default
  // action space exactly as the paper excluded the LLVM pass.
  add("gvn-sink", createGvnSinkPass, /*InDefaultActionSpace=*/false);

  // Memory promotion.
  add("mem2reg", createMem2RegPass);

  // Loops.
  add("loop-simplify", createLoopSimplifyPass);
  add("licm", [] { return createLicmPass(false); });
  add("licm-promote", [] { return createLicmPass(true); });
  add("loop-delete", createLoopDeletePass);
  for (unsigned Trip : {2u, 3u, 4u, 6u, 8u, 12u, 16u, 24u, 32u, 48u, 64u,
                        96u, 128u})
    add("loop-unroll<" + std::to_string(Trip) + ">",
        [Trip] { return createLoopUnrollPass(Trip); });

  // Inlining.
  for (unsigned Threshold : {10u, 20u, 35u, 50u, 75u, 100u, 150u, 225u, 300u,
                             450u})
    add("inline<" + std::to_string(Threshold) + ">",
        [Threshold] { return createInlinerPass(Threshold); });

  std::sort(DefaultActions.begin(), DefaultActions.end());
  std::sort(AllNames.begin(), AllNames.end());
}

std::unique_ptr<Pass> PassRegistry::create(const std::string &Name) const {
  for (const auto &[RegName, Factory] : Factories)
    if (RegName == Name)
      return Factory();
  return nullptr;
}

bool PassRegistry::contains(const std::string &Name) const {
  return std::binary_search(AllNames.begin(), AllNames.end(), Name);
}
