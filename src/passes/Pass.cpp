//===- passes/Pass.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Pass.h"

using namespace compiler_gym;
using namespace compiler_gym::passes;

Pass::~Pass() = default;

bool Pass::runOnModule(ir::Module &M) {
  AnalysisManager AM;
  return run(M, AM).Changed;
}

PassResult FunctionPass::run(ir::Module &M, AnalysisManager &AM) {
  PassResult Agg;
  for (const auto &F : M.functions()) {
    if (F->empty())
      continue;
    PassResult R = runOnFunction(*F, AM);
    if (R.Changed) {
      // Fixpoint passes that invalidated mid-run (and then refetched fresh
      // analyses) set InvalidationApplied; re-invalidating here would throw
      // those just-recomputed trees away for the next pass.
      if (!R.InvalidationApplied)
        AM.invalidate(*F, R.Preserved);
      Agg.Changed = true;
      Agg.Preserved.intersect(R.Preserved);
    }
  }
  Agg.InvalidationApplied = true; // Done per function above.
  return Agg;
}
