//===- passes/Pass.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Pass.h"

using namespace compiler_gym;
using namespace compiler_gym::passes;

Pass::~Pass() = default;

bool Pass::runOnModule(ir::Module &M) {
  AnalysisManager AM;
  return run(M, AM).Changed;
}

PassResult FunctionPass::run(ir::Module &M, AnalysisManager &AM) {
  // This loop is the copy-on-write choke point: every function-scoped
  // mutation in the pass pipeline flows through here, so a payload shared
  // with a forked session or a snapshot is detached exactly once, before
  // the transform sees it. use_count() can only over-report sharing under
  // races, so the worst case is a redundant copy, never a shared mutation.
  PassResult Agg;
  for (size_t Idx = 0; Idx < M.functions().size(); ++Idx) {
    // Cooperative cancellation between functions: work already done below
    // is committed and invalidated per function, so stopping here leaves
    // the module and analysis caches consistent — the session decides
    // whether to keep or roll back the partial transform.
    if (AM.cancellationRequested()) {
      Agg.Cancelled = true;
      break;
    }
    ir::Function *F = M.functions()[Idx].get();
    if (F->empty())
      continue;
    std::shared_ptr<ir::Function> Old;
    if (M.isFunctionShared(Idx)) {
      Old = M.unshareFunction(Idx);
      F = M.functions()[Idx].get();
      AM.cowDetached(Old.get(), F);
    } else if (F->parent() != &M) {
      // Sole owner of a payload created under a since-released module
      // (e.g. the fork's parent was closed): adopt it.
      F->setParent(&M);
    }
    PassResult R = runOnFunction(*F, AM);
    if (R.Changed) {
      if (Old)
        AM.cowCommitted(Old.get());
      // Fixpoint passes that invalidated mid-run (and then refetched fresh
      // analyses) set InvalidationApplied; re-invalidating here would throw
      // those just-recomputed trees away for the next pass.
      if (!R.InvalidationApplied)
        AM.invalidate(*F, R.Preserved);
      Agg.Changed = true;
      Agg.Preserved.intersect(R.Preserved);
    } else if (Old) {
      // The transform was a no-op on the copy: reinstate the shared
      // payload so the fork family keeps one physical function (and its
      // still-valid cached analyses).
      AM.cowReverted(F, Old.get());
      M.restoreFunction(Idx, std::move(Old));
    }
  }
  Agg.InvalidationApplied = true; // Done per function above.
  return Agg;
}
