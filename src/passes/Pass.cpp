//===- passes/Pass.cpp ----------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Pass.h"

using namespace compiler_gym;
using namespace compiler_gym::passes;

Pass::~Pass() = default;

bool FunctionPass::runOnModule(ir::Module &M) {
  bool Changed = false;
  for (const auto &F : M.functions())
    if (!F->empty())
      Changed |= runOnFunction(*F);
  return Changed;
}
