//===- passes/Utils.h - Shared transform utilities --------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by multiple transforms: constant folding, instruction
/// simplification, CFG edge maintenance, reachability cleanup, and stable
/// value numbering for deterministic commutative canonicalization.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_PASSES_UTILS_H
#define COMPILER_GYM_PASSES_UTILS_H

#include "ir/Module.h"

#include <unordered_map>

namespace compiler_gym {
namespace passes {

/// Attempts to fold \p I to a constant (all operands constant). Returns the
/// folded constant or nullptr. Never folds side-effecting instructions.
/// Division by zero and other trapping cases return nullptr (the trap must
/// be preserved).
ir::Constant *foldConstant(const ir::Instruction &I, ir::Module &M);

/// Attempts to simplify \p I to an existing value via algebraic identities
/// (x+0, x*1, x&x, select c a a, ...). Returns the replacement or nullptr.
ir::Value *simplifyInstruction(const ir::Instruction &I, ir::Module &M);

/// Removes the phi entries for predecessor \p Pred from every phi in
/// \p BB. Used when deleting a CFG edge.
void removePhiIncomingFor(ir::BasicBlock &BB, ir::BasicBlock *Pred);

/// Rewrites phi incoming-block operands in \p BB from \p From to \p To.
void replacePhiIncomingBlock(ir::BasicBlock &BB, ir::BasicBlock *From,
                             ir::BasicBlock *To);

/// Deletes blocks unreachable from the entry, maintaining the phis of the
/// surviving blocks. Returns true on change.
bool removeUnreachableBlocks(ir::Function &F);

/// Deterministic per-function value numbering: instructions by program
/// order, arguments by index, constants/globals by content. Used to order
/// commutative operands without depending on pointer values.
class StableValueIds {
public:
  explicit StableValueIds(const ir::Function &F);

  /// Total order over values appearing in \p F.
  uint64_t idOf(const ir::Value *V) const;

private:
  std::unordered_map<const ir::Value *, uint64_t> Ids;
};

/// True if the constant is an integer power of two (>= 1).
bool isPowerOfTwo(const ir::Constant &C, int &Log2Out);

} // namespace passes
} // namespace compiler_gym

#endif // COMPILER_GYM_PASSES_UTILS_H
