//===- passes/Scalar.cpp - Scalar transforms -------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Transforms.h"
#include "passes/Utils.h"

#include "util/Hash.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

using namespace compiler_gym;
using namespace compiler_gym::passes;
using namespace compiler_gym::ir;

namespace {

/// Replaces \p I (at index \p Idx in \p BB) with \p Replacement and erases
/// it. Helper shared by the folding passes.
void replaceAndErase(Function &F, BasicBlock &BB, size_t Idx, Instruction *I,
                     Value *Replacement) {
  F.replaceAllUsesWith(I, Replacement);
  BB.erase(Idx);
}

/// Folds instructions whose operands are all constants.
class ConstFoldPass : public FunctionPass {
public:
  std::string name() const override { return "constfold"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    Module &M = *F.parent();
    bool Changed = false;
    bool LocalChange = true;
    int Rounds = 0;
    while (LocalChange && Rounds++ < 16) {
      LocalChange = false;
      // Collect replacements for the whole round, substituting through the
      // map while folding so same-round chains collapse; then apply all
      // rewrites in a single O(n) scan instead of per-fold RAUW.
      std::unordered_map<Value *, Constant *> Rep;
      auto resolved = [&](Value *V) -> Value * {
        auto It = Rep.find(V);
        return It == Rep.end() ? V : It->second;
      };
      for (const auto &BB : F.blocks()) {
        for (const auto &InstPtr : BB->instructions()) {
          Instruction *Inst = InstPtr.get();
          Instruction Probe(Inst->opcode(), Inst->type());
          Probe.setPred(Inst->pred());
          Probe.setAllocaWords(Inst->allocaWords());
          for (Value *Op : Inst->operands())
            Probe.operands().push_back(resolved(Op));
          if (Constant *C = foldConstant(Probe, M))
            Rep.emplace(Inst, C);
        }
      }
      if (Rep.empty())
        break;
      F.forEachInstruction([&](BasicBlock &, Instruction &I) {
        for (size_t Op = 0; Op < I.numOperands(); ++Op)
          if (Value *New = resolved(I.operand(Op)); New != I.operand(Op))
            I.setOperand(Op, New);
      });
      for (const auto &BB : F.blocks())
        for (size_t I = BB->size(); I-- > 0;)
          if (Rep.count(BB->instructions()[I].get()))
            BB->erase(I);
      LocalChange = Changed = true;
    }
    return PassResult::make(Changed, PreservedAnalyses::cfg());
  }
};

/// Applies algebraic identities (x+0, x*1, select c a a, ...).
class InstSimplifyPass : public FunctionPass {
public:
  std::string name() const override { return "instsimplify"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    Module &M = *F.parent();
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      for (const auto &BB : F.blocks()) {
        for (size_t I = 0; I < BB->size(); ++I) {
          Instruction *Inst = BB->instructions()[I].get();
          if (Inst->opcode() == Opcode::Phi)
            continue; // PhiSimplifyPass owns phi rewrites.
          if (Value *V = simplifyInstruction(*Inst, M)) {
            replaceAndErase(F, *BB, I, Inst, V);
            --I;
            LocalChange = Changed = true;
          }
        }
      }
    }
    return PassResult::make(Changed, PreservedAnalyses::cfg());
  }
};

/// Pattern-rewrites that create new, cheaper instructions:
///   (x op c1) op c2 -> x op (c1 op c2)  for associative op
///   mul x, 2^k      -> shl x, k
///   sub 0, x        -> handled as canonical neg (xor for ints)
///   zext(zext x)    -> single widening cast
/// Plus everything instsimplify/constfold do, applied opportunistically.
class InstCombinePass : public FunctionPass {
public:
  std::string name() const override { return "instcombine"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    Module &M = *F.parent();
    bool Changed = false;
    bool LocalChange = true;
    int Rounds = 0;
    while (LocalChange && Rounds++ < 8) {
      LocalChange = false;
      for (const auto &BB : F.blocks()) {
        for (size_t I = 0; I < BB->size(); ++I) {
          Instruction *Inst = BB->instructions()[I].get();
          if (Constant *C = foldConstant(*Inst, M)) {
            replaceAndErase(F, *BB, I, Inst, C);
            --I;
            LocalChange = Changed = true;
            continue;
          }
          if (Inst->opcode() != Opcode::Phi) {
            if (Value *V = simplifyInstruction(*Inst, M)) {
              replaceAndErase(F, *BB, I, Inst, V);
              --I;
              LocalChange = Changed = true;
              continue;
            }
          }
          if (combine(*Inst, M)) {
            LocalChange = Changed = true;
          }
        }
      }
    }
    return PassResult::make(Changed, PreservedAnalyses::cfg());
  }

private:
  /// In-place rewrites (operand changes only, no new instructions needed).
  bool combine(Instruction &I, Module &M) {
    // Associative constant regrouping: (x op c1) op c2 => x op fold(c1,c2).
    if ((I.opcode() == Opcode::Add || I.opcode() == Opcode::Mul ||
         I.opcode() == Opcode::And || I.opcode() == Opcode::Or ||
         I.opcode() == Opcode::Xor)) {
      auto *C2 = dyn_cast<Constant>(I.operand(1));
      auto *Inner = dyn_cast<Instruction>(I.operand(0));
      if (C2 && Inner && Inner->opcode() == I.opcode() &&
          Inner->type() == I.type()) {
        if (auto *C1 = dyn_cast<Constant>(Inner->operand(1))) {
          int64_t A = C1->intValue(), B = C2->intValue();
          int64_t Folded;
          switch (I.opcode()) {
          case Opcode::Add:
            Folded = static_cast<int64_t>(static_cast<uint64_t>(A) +
                                          static_cast<uint64_t>(B));
            break;
          case Opcode::Mul:
            Folded = static_cast<int64_t>(static_cast<uint64_t>(A) *
                                          static_cast<uint64_t>(B));
            break;
          case Opcode::And:
            Folded = A & B;
            break;
          case Opcode::Or:
            Folded = A | B;
            break;
          default:
            Folded = A ^ B;
            break;
          }
          I.setOperand(0, Inner->operand(0));
          I.setOperand(1, M.getConstInt(I.type(), Folded));
          return true;
        }
      }
    }
    // Canonicalize constants to the RHS of commutative ops.
    if (I.isCommutative() && isa<Constant>(I.operand(0)) &&
        !isa<Constant>(I.operand(1))) {
      Value *Tmp = I.operand(0);
      I.setOperand(0, I.operand(1));
      I.setOperand(1, Tmp);
      return true;
    }
    return false;
  }
};

/// Canonicalizes commutative expressions: constants to the RHS and
/// operands in stable-id order, exposing CSE/GVN opportunities.
class ReassociatePass : public FunctionPass {
public:
  std::string name() const override { return "reassociate"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    StableValueIds Ids(F);
    bool Changed = false;
    F.forEachInstruction([&](BasicBlock &, Instruction &I) {
      if (!I.isCommutative() || I.numOperands() != 2)
        return;
      Value *L = I.operand(0), *R = I.operand(1);
      bool Swap = false;
      if (isa<Constant>(L) && !isa<Constant>(R))
        Swap = true;
      else if (!isa<Constant>(L) && !isa<Constant>(R) &&
               Ids.idOf(L) > Ids.idOf(R))
        Swap = true;
      if (Swap) {
        I.setOperand(0, R);
        I.setOperand(1, L);
        Changed = true;
      }
    });
    // Commutative operand swaps leave use counts, opcode histograms and
    // the CFG alone, but operand order feeds the Inst2vec statement and
    // ProGraML edge positions.
    return PassResult::make(Changed, PreservedAnalyses::allButLayout());
  }
};

/// Puts constants on the RHS of comparisons, flipping the predicate.
class CmpCanonicalizePass : public FunctionPass {
public:
  std::string name() const override { return "cmp-canonicalize"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    bool Changed = false;
    F.forEachInstruction([&](BasicBlock &, Instruction &I) {
      if (I.opcode() != Opcode::ICmp && I.opcode() != Opcode::FCmp)
        return;
      if (!isa<Constant>(I.operand(0)) || isa<Constant>(I.operand(1)))
        return;
      Value *L = I.operand(0);
      I.setOperand(0, I.operand(1));
      I.setOperand(1, L);
      switch (I.pred()) {
      case Pred::LT:
        I.setPred(Pred::GT);
        break;
      case Pred::LE:
        I.setPred(Pred::GE);
        break;
      case Pred::GT:
        I.setPred(Pred::LT);
        break;
      case Pred::GE:
        I.setPred(Pred::LE);
        break;
      case Pred::EQ:
      case Pred::NE:
        break;
      }
      Changed = true;
    });
    // Operand swap + predicate flip: no feature *count* observes
    // predicates, but the Inst2vec statement embeds both the predicate
    // and operand order, and ProGraML edge positions shift.
    return PassResult::make(Changed, PreservedAnalyses::allButLayout());
  }
};

/// Collapses shift-by-constant chains: (x shl c1) shl c2 -> x shl (c1+c2).
class ShiftCombinePass : public FunctionPass {
public:
  std::string name() const override { return "shift-combine"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    Module &M = *F.parent();
    bool Changed = false;
    F.forEachInstruction([&](BasicBlock &, Instruction &I) {
      if (I.opcode() != Opcode::Shl && I.opcode() != Opcode::LShr &&
          I.opcode() != Opcode::AShr)
        return;
      auto *C2 = dyn_cast<Constant>(I.operand(1));
      auto *Inner = dyn_cast<Instruction>(I.operand(0));
      if (!C2 || !Inner || Inner->opcode() != I.opcode() ||
          Inner->type() != I.type())
        return;
      auto *C1 = dyn_cast<Constant>(Inner->operand(1));
      if (!C1)
        return;
      int64_t Total = C1->intValue() + C2->intValue();
      int Width = integerBitWidth(I.type());
      if (C1->intValue() < 0 || C2->intValue() < 0 || Total >= Width)
        return; // Out-of-range shifts keep their defined modulo semantics.
      I.setOperand(0, Inner->operand(0));
      I.setOperand(1, M.getConstInt(I.type(), Total));
      Changed = true;
    });
    // Rewiring operands changes use counts (OneUseInstCount): features go.
    return PassResult::make(Changed, PreservedAnalyses::cfg());
  }
};

/// Strength reduction: mul by power of two becomes a shift; mul by 2
/// becomes add x, x.
class StrengthReducePass : public FunctionPass {
public:
  std::string name() const override { return "strength-reduce"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    Module &M = *F.parent();
    // Collect first: rewriting replaces instructions, which would
    // invalidate an in-flight block iteration.
    std::vector<std::pair<Instruction *, int>> Rewrites;
    F.forEachInstruction([&](BasicBlock &, Instruction &I) {
      if (I.opcode() != Opcode::Mul)
        return;
      auto *C = dyn_cast<Constant>(I.operand(1));
      if (!C)
        return;
      int Log2 = 0;
      if (!isPowerOfTwo(*C, Log2) || Log2 == 0)
        return;
      Rewrites.emplace_back(&I, Log2);
    });
    for (auto &[I, Log2] : Rewrites)
      rewriteToShl(*I, M, Log2);
    return PassResult::make(!Rewrites.empty(), PreservedAnalyses::cfg());
  }

private:
  static void rewriteToShl(Instruction &I, Module &M, int Log2) {
    // Mutate opcode via placement of a fresh instruction is not possible
    // without replacing; instead emulate by operand rewrite on a Shl
    // created in place. Opcode is immutable, so replace the instruction.
    BasicBlock *BB = I.parent();
    size_t Idx = BB->indexOf(&I);
    auto Shl = std::make_unique<Instruction>(
        Opcode::Shl, I.type(),
        std::vector<Value *>{I.operand(0), M.getConstInt(I.type(), Log2)});
    Shl->setName(I.name());
    Instruction *NewI = BB->insert(Idx, std::move(Shl));
    BB->parent()->replaceAllUsesWith(&I, NewI);
    BB->erase(Idx + 1);
  }
};

/// Sparse conditional constant propagation (simplified): constant-folds
/// through the CFG, rewrites constant conditional branches, and prunes
/// unreachable blocks.
class SccpPass : public FunctionPass {
public:
  std::string name() const override { return "sccp"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    Module &M = *F.parent();
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      // Fold everything foldable.
      for (const auto &BB : F.blocks()) {
        for (size_t I = 0; I < BB->size(); ++I) {
          Instruction *Inst = BB->instructions()[I].get();
          if (Constant *C = foldConstant(*Inst, M)) {
            replaceAndErase(F, *BB, I, Inst, C);
            --I;
            LocalChange = Changed = true;
          } else if (Inst->opcode() == Opcode::Phi) {
            if (Value *V = simplifyInstruction(*Inst, M)) {
              replaceAndErase(F, *BB, I, Inst, V);
              --I;
              LocalChange = Changed = true;
            }
          }
        }
      }
      // Rewrite condbr on constants.
      for (const auto &BB : F.blocks()) {
        Instruction *Term = BB->terminator();
        if (!Term || Term->opcode() != Opcode::CondBr)
          continue;
        auto *C = dyn_cast<Constant>(Term->operand(0));
        auto *TrueBB = cast<BasicBlock>(Term->operand(1));
        auto *FalseBB = cast<BasicBlock>(Term->operand(2));
        if (!C && TrueBB != FalseBB)
          continue;
        BasicBlock *Live = !C ? TrueBB : (C->intValue() ? TrueBB : FalseBB);
        BasicBlock *Dead = (Live == TrueBB) ? FalseBB : TrueBB;
        if (Dead != Live)
          removePhiIncomingFor(*Dead, BB.get());
        size_t TermIdx = BB->size() - 1;
        BB->erase(TermIdx);
        auto Br = std::make_unique<Instruction>(
            Opcode::Br, Type::Void, std::vector<Value *>{Live});
        BB->append(std::move(Br));
        LocalChange = Changed = true;
      }
      if (removeUnreachableBlocks(F))
        LocalChange = Changed = true;
    }
    return PassResult::make(Changed, PreservedAnalyses::none());
  }
};

/// Sinks pure single-use instructions into the successor that uses them.
class SinkPass : public FunctionPass {
public:
  std::string name() const override { return "sink"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    bool Changed = false;
    // Map each instruction to its unique using block (if any).
    for (const auto &BB : F.blocks()) {
      if (BB->successors().size() < 2)
        continue; // Sinking only pays off past a branch.
      for (size_t I = BB->size(); I-- > 0;) {
        Instruction *Inst = BB->instructions()[I].get();
        if (!Inst->isPure())
          continue;
        BasicBlock *UserBlock = nullptr;
        bool Sinkable = true;
        F.forEachInstruction([&](BasicBlock &UB, Instruction &User) {
          if (!Sinkable)
            return;
          for (size_t Op = 0; Op < User.numOperands(); ++Op) {
            if (User.operand(Op) != Inst)
              continue;
            if (User.opcode() == Opcode::Phi) {
              Sinkable = false; // Phi uses live on edges; do not sink.
              return;
            }
            if (!UserBlock)
              UserBlock = &UB;
            else if (UserBlock != &UB) {
              Sinkable = false;
              return;
            }
          }
        });
        if (!Sinkable || !UserBlock || UserBlock == BB.get())
          continue;
        // Destination must be an immediate successor with a single pred so
        // dominance is trivially preserved.
        std::vector<BasicBlock *> Succs = BB->successors();
        if (std::find(Succs.begin(), Succs.end(), UserBlock) == Succs.end())
          continue;
        if (UserBlock->predecessors().size() != 1)
          continue;
        std::unique_ptr<Instruction> Owned = BB->detach(I);
        Owned->setParent(UserBlock);
        UserBlock->insert(UserBlock->firstNonPhi(), std::move(Owned));
        Changed = true;
      }
    }
    // Moving instructions across blocks keeps the CFG but shifts the
    // per-block feature counts.
    return PassResult::make(Changed, PreservedAnalyses::cfg());
  }
};

/// Local common subexpression elimination (within each block).
class LocalCsePass : public FunctionPass {
public:
  std::string name() const override { return "cse-local"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    bool Changed = false;
    StableValueIds Ids(F);
    for (const auto &BB : F.blocks()) {
      std::map<std::vector<uint64_t>, Instruction *> Seen;
      for (size_t I = 0; I < BB->size(); ++I) {
        Instruction *Inst = BB->instructions()[I].get();
        if (!Inst->isPure())
          continue;
        std::vector<uint64_t> Key = expressionKey(*Inst, Ids);
        auto [It, Inserted] = Seen.emplace(std::move(Key), Inst);
        if (!Inserted) {
          replaceAndErase(F, *BB, I, Inst, It->second);
          --I;
          Changed = true;
        }
      }
    }
    return PassResult::make(Changed, PreservedAnalyses::cfg());
  }

  static std::vector<uint64_t> expressionKey(const Instruction &I,
                                             const StableValueIds &Ids) {
    std::vector<uint64_t> Key;
    Key.push_back(static_cast<uint64_t>(I.opcode()));
    Key.push_back(static_cast<uint64_t>(I.type()));
    Key.push_back(static_cast<uint64_t>(I.pred()));
    std::vector<uint64_t> Ops;
    for (const Value *Op : I.operands())
      Ops.push_back(Ids.idOf(Op));
    if (I.isCommutative() && Ops.size() == 2 && Ops[0] > Ops[1])
      std::swap(Ops[0], Ops[1]);
    Key.insert(Key.end(), Ops.begin(), Ops.end());
    return Key;
  }
};

/// Local dead store elimination: a store is dead if the same pointer value
/// is overwritten later in the block with no intervening load or call.
class LocalDsePass : public FunctionPass {
public:
  std::string name() const override { return "dse-local"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    bool Changed = false;
    for (const auto &BB : F.blocks()) {
      // Track last pending store per exact pointer value.
      std::unordered_map<const Value *, size_t> Pending;
      std::vector<size_t> Dead;
      for (size_t I = 0; I < BB->size(); ++I) {
        const Instruction *Inst = BB->instructions()[I].get();
        if (Inst->opcode() == Opcode::Store) {
          const Value *Ptr = Inst->operand(1);
          auto It = Pending.find(Ptr);
          if (It != Pending.end())
            Dead.push_back(It->second);
          Pending[Ptr] = I;
          continue;
        }
        if (Inst->opcode() == Opcode::Load ||
            Inst->opcode() == Opcode::Call) {
          Pending.clear(); // Conservative: any load/call may observe.
        }
      }
      std::sort(Dead.begin(), Dead.end());
      for (size_t K = Dead.size(); K-- > 0;) {
        BB->erase(Dead[K]);
        Changed = true;
      }
    }
    return PassResult::make(Changed, PreservedAnalyses::cfg());
  }
};

/// Forwards stored values to subsequent loads of the same pointer within a
/// block (no intervening stores or calls).
class StoreForwardPass : public FunctionPass {
public:
  std::string name() const override { return "store-forward"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    bool Changed = false;
    for (const auto &BB : F.blocks()) {
      std::unordered_map<const Value *, Value *> Known;
      for (size_t I = 0; I < BB->size(); ++I) {
        Instruction *Inst = BB->instructions()[I].get();
        if (Inst->opcode() == Opcode::Store) {
          // Another store to a different pointer may alias: drop all except
          // the freshly stored one.
          Value *Stored = Inst->operand(0);
          const Value *Ptr = Inst->operand(1);
          Known.clear();
          Known[Ptr] = Stored;
          continue;
        }
        if (Inst->opcode() == Opcode::Call) {
          Known.clear();
          continue;
        }
        if (Inst->opcode() == Opcode::Load) {
          auto It = Known.find(Inst->operand(0));
          if (It != Known.end() && It->second->type() == Inst->type()) {
            replaceAndErase(F, *BB, I, Inst, It->second);
            --I;
            Changed = true;
          }
        }
      }
    }
    return PassResult::make(Changed, PreservedAnalyses::cfg());
  }
};

/// Reuses the result of an earlier identical load when no store/call
/// intervenes in the block.
class RedundantLoadElimPass : public FunctionPass {
public:
  std::string name() const override { return "redundant-load-elim"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    bool Changed = false;
    for (const auto &BB : F.blocks()) {
      std::unordered_map<const Value *, Instruction *> Loads;
      for (size_t I = 0; I < BB->size(); ++I) {
        Instruction *Inst = BB->instructions()[I].get();
        if (Inst->opcode() == Opcode::Store ||
            Inst->opcode() == Opcode::Call) {
          Loads.clear();
          continue;
        }
        if (Inst->opcode() != Opcode::Load)
          continue;
        auto It = Loads.find(Inst->operand(0));
        if (It != Loads.end() && It->second->type() == Inst->type()) {
          replaceAndErase(F, *BB, I, Inst, It->second);
          --I;
          Changed = true;
        } else {
          Loads[Inst->operand(0)] = Inst;
        }
      }
    }
    return PassResult::make(Changed, PreservedAnalyses::cfg());
  }
};

/// Lowers select into a CFG diamond (branch + phi). Deliberately grows
/// code; real compilers do this when selects are unprofitable.
class LowerSelectPass : public FunctionPass {
public:
  std::string name() const override { return "lower-select"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    // One select per invocation per function keeps growth bounded.
    for (const auto &BBPtr : F.blocks()) {
      BasicBlock *BB = BBPtr.get();
      for (size_t I = 0; I < BB->size(); ++I) {
        Instruction *Sel = BB->instructions()[I].get();
        if (Sel->opcode() != Opcode::Select)
          continue;
        lower(F, BB, I);
        return PassResult::make(true, PreservedAnalyses::none());
      }
    }
    return PassResult::make(false, PreservedAnalyses::all());
  }

private:
  static void lower(Function &F, BasicBlock *BB, size_t SelIdx) {
    Instruction *Sel = BB->instructions()[SelIdx].get();
    Value *Cond = Sel->operand(0);
    Value *TVal = Sel->operand(1);
    Value *FVal = Sel->operand(2);

    BasicBlock *TailBB = F.createBlock(BB->name() + ".selcont");
    BasicBlock *TrueBB = F.createBlock(BB->name() + ".seltrue");
    BasicBlock *FalseBB = F.createBlock(BB->name() + ".selfalse");

    // Move everything after the select into the tail block.
    while (BB->size() > SelIdx + 1) {
      std::unique_ptr<Instruction> Moved = BB->detach(SelIdx + 1);
      Moved->setParent(TailBB);
      TailBB->append(std::move(Moved));
    }
    // Successor phis now see TailBB as the predecessor.
    for (BasicBlock *Succ : TailBB->successors())
      replacePhiIncomingBlock(*Succ, BB, TailBB);

    // Build the diamond.
    auto mkBr = [&](BasicBlock *From, BasicBlock *To) {
      auto Br = std::make_unique<Instruction>(
          Opcode::Br, Type::Void, std::vector<Value *>{To});
      From->append(std::move(Br));
    };
    mkBr(TrueBB, TailBB);
    mkBr(FalseBB, TailBB);

    auto Phi = std::make_unique<Instruction>(Opcode::Phi, Sel->type());
    Instruction *PhiI = TailBB->insert(0, std::move(Phi));
    PhiI->addIncoming(TVal, TrueBB);
    PhiI->addIncoming(FVal, FalseBB);
    F.replaceAllUsesWith(Sel, PhiI);

    // Replace the select with the conditional branch.
    BB->erase(SelIdx);
    auto CondBr = std::make_unique<Instruction>(
        Opcode::CondBr, Type::Void,
        std::vector<Value *>{Cond, TrueBB, FalseBB});
    BB->append(std::move(CondBr));
  }
};

/// Simplifies phi nodes: single-incoming and all-same-value phis collapse
/// to the underlying value.
class PhiSimplifyPass : public FunctionPass {
public:
  std::string name() const override { return "phi-simplify"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    Module &M = *F.parent();
    bool Changed = false;
    bool LocalChange = true;
    while (LocalChange) {
      LocalChange = false;
      for (const auto &BB : F.blocks()) {
        for (size_t I = 0; I < BB->firstNonPhi(); ++I) {
          Instruction *Phi = BB->instructions()[I].get();
          if (Value *V = simplifyInstruction(*Phi, M)) {
            replaceAndErase(F, *BB, I, Phi, V);
            --I;
            LocalChange = Changed = true;
          }
        }
      }
    }
    return PassResult::make(Changed, PreservedAnalyses::cfg());
  }
};

} // namespace

std::unique_ptr<Pass> passes::createConstFoldPass() {
  return std::make_unique<ConstFoldPass>();
}
std::unique_ptr<Pass> passes::createInstSimplifyPass() {
  return std::make_unique<InstSimplifyPass>();
}
std::unique_ptr<Pass> passes::createInstCombinePass() {
  return std::make_unique<InstCombinePass>();
}
std::unique_ptr<Pass> passes::createReassociatePass() {
  return std::make_unique<ReassociatePass>();
}
std::unique_ptr<Pass> passes::createCmpCanonicalizePass() {
  return std::make_unique<CmpCanonicalizePass>();
}
std::unique_ptr<Pass> passes::createShiftCombinePass() {
  return std::make_unique<ShiftCombinePass>();
}
std::unique_ptr<Pass> passes::createStrengthReducePass() {
  return std::make_unique<StrengthReducePass>();
}
std::unique_ptr<Pass> passes::createSccpPass() {
  return std::make_unique<SccpPass>();
}
std::unique_ptr<Pass> passes::createSinkPass() {
  return std::make_unique<SinkPass>();
}
std::unique_ptr<Pass> passes::createLocalCsePass() {
  return std::make_unique<LocalCsePass>();
}
std::unique_ptr<Pass> passes::createLocalDsePass() {
  return std::make_unique<LocalDsePass>();
}
std::unique_ptr<Pass> passes::createStoreForwardPass() {
  return std::make_unique<StoreForwardPass>();
}
std::unique_ptr<Pass> passes::createRedundantLoadElimPass() {
  return std::make_unique<RedundantLoadElimPass>();
}
std::unique_ptr<Pass> passes::createLowerSelectPass() {
  return std::make_unique<LowerSelectPass>();
}
std::unique_ptr<Pass> passes::createPhiSimplifyPass() {
  return std::make_unique<PhiSimplifyPass>();
}
