//===- passes/Pipelines.h - Preset optimization levels ----------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler's default pipelines (-O0/-O1/-O2/-O3/-Os/-Oz). The LLVM
/// environment scales its rewards against -Oz (size) and -O3 (runtime),
/// exactly as the paper does; the GCC environment's -O<n> options map to
/// these too.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_PASSES_PIPELINES_H
#define COMPILER_GYM_PASSES_PIPELINES_H

#include "util/Status.h"

#include <string>
#include <vector>

namespace compiler_gym {
namespace ir {
class Module;
}
namespace passes {

/// Names of the supported optimization levels.
std::vector<std::string> optimizationLevels();

/// The pass list for \p Level ("-O0" .. "-O3", "-Os", "-Oz").
StatusOr<std::vector<std::string>> pipelineForLevel(const std::string &Level);

/// Applies \p Level to \p M (iterated to an approximate fixpoint, as the
/// real pass managers do).
Status runOptimizationLevel(ir::Module &M, const std::string &Level);

} // namespace passes
} // namespace compiler_gym

#endif // COMPILER_GYM_PASSES_PIPELINES_H
