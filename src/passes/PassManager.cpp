//===- passes/PassManager.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/PassManager.h"

using namespace compiler_gym;
using namespace compiler_gym::passes;

StatusOr<bool> passes::runPass(ir::Module &M, const std::string &Name) {
  std::unique_ptr<Pass> P = PassRegistry::instance().create(Name);
  if (!P)
    return notFound("unknown pass '" + Name + "'");
  return P->runOnModule(M);
}

StatusOr<bool> passes::runPipeline(ir::Module &M,
                                   const std::vector<std::string> &Names) {
  bool Changed = false;
  for (const std::string &Name : Names) {
    CG_ASSIGN_OR_RETURN(bool PassChanged, runPass(M, Name));
    Changed |= PassChanged;
  }
  return Changed;
}

StatusOr<bool>
passes::runPipelineToFixpoint(ir::Module &M,
                              const std::vector<std::string> &Names,
                              int MaxRounds) {
  bool Changed = false;
  for (int Round = 0; Round < MaxRounds; ++Round) {
    CG_ASSIGN_OR_RETURN(bool RoundChanged, runPipeline(M, Names));
    if (!RoundChanged)
      break;
    Changed = true;
  }
  return Changed;
}
