//===- passes/PassManager.cpp ---------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/PassManager.h"

#include "fault/FaultRegistry.h"
#include "telemetry/MetricsRegistry.h"
#include "telemetry/Trace.h"

using namespace compiler_gym;
using namespace compiler_gym::passes;

namespace {

telemetry::Counter &passesRunTotal() {
  static telemetry::Counter &C = telemetry::MetricsRegistry::global().counter(
      "cg_passes_run_total", {}, "Transformation pass executions");
  return C;
}

} // namespace

PassManager::PassManager(ir::Module &M)
    : M(M),
#ifdef NDEBUG
      VerifyPreservation(false)
#else
      VerifyPreservation(true)
#endif
{
}

Pass *PassManager::getPass(const std::string &Name) {
  auto It = Instances.find(Name);
  if (It != Instances.end())
    return It->second.get();
  std::unique_ptr<Pass> P = PassRegistry::instance().create(Name);
  if (!P)
    return nullptr;
  ++St.PassInstancesCreated;
  return Instances.emplace(Name, std::move(P)).first->second.get();
}

StatusOr<bool> PassManager::run(Pass &P) {
  // Poll before starting a pass: a pipeline whose budget ran out stops on
  // a pass boundary with the module untouched since the last completed
  // pass. (The poll itself proves liveness to the hung-shard watchdog.)
  if (Cancel && Cancel->poll())
    return deadlineExceeded("pipeline cancelled before pass '" + P.name() +
                            "'");
  // Chaos hook: delay rules here simulate slow or spinning passes (the
  // CancelAware=false variant is the watchdog acceptance test's wedge);
  // error rules simulate a pass failing outright.
  if (fault::FaultAction F = CG_FAULT_POINT("passes.run", Cancel)) {
    if (F.isError())
      return F.Error;
  }
  telemetry::SpanScope Span(telemetry::Tracer::global().enabled()
                                ? "pass:" + P.name()
                                : std::string(),
                            "passes");
  PassResult R = P.run(M, AM);
  ++St.PassesRun;
  passesRunTotal().inc();
  // Module-scoped passes that did not report fine-grained invalidation
  // themselves get their PreservedAnalyses applied module-wide, so a pass
  // following only the PassResult contract is conservatively correct.
  if (R.Changed && !R.InvalidationApplied)
    AM.invalidateAll(R.Preserved);
  if (VerifyPreservation)
    CG_RETURN_IF_ERROR(AM.verifyCachedAnalyses(M, P.name()));
  // Cancelled mid-pass (between functions): bookkeeping above is still
  // applied for the functions that did run, then the abort surfaces so the
  // session can revert to its last committed state.
  if (R.Cancelled)
    return deadlineExceeded("pass '" + P.name() + "' cancelled mid-run");
  return R.Changed;
}

StatusOr<bool> PassManager::run(const std::string &Name) {
  Pass *P = getPass(Name);
  if (!P)
    return notFound("unknown pass '" + Name + "'");
  return run(*P);
}

StatusOr<bool> PassManager::runPipeline(const std::vector<std::string> &Names) {
  bool Changed = false;
  for (const std::string &Name : Names) {
    CG_ASSIGN_OR_RETURN(bool PassChanged, run(Name));
    Changed |= PassChanged;
  }
  return Changed;
}

StatusOr<bool>
PassManager::runToFixpoint(const std::vector<std::string> &Names,
                           int MaxRounds) {
  bool Changed = false;
  for (int Round = 0; Round < MaxRounds; ++Round) {
    CG_ASSIGN_OR_RETURN(bool RoundChanged, runPipeline(Names));
    if (!RoundChanged)
      break;
    Changed = true;
  }
  return Changed;
}

StatusOr<bool> passes::runPass(ir::Module &M, const std::string &Name) {
  PassManager PM(M);
  return PM.run(Name);
}

StatusOr<bool> passes::runPipeline(ir::Module &M,
                                   const std::vector<std::string> &Names) {
  PassManager PM(M);
  return PM.runPipeline(Names);
}

StatusOr<bool>
passes::runPipelineToFixpoint(ir::Module &M,
                              const std::vector<std::string> &Names,
                              int MaxRounds) {
  // One transient manager for the whole fixpoint iteration: pass objects
  // are constructed once and analyses persist across rounds (the old
  // implementation re-created every pass through the registry each round).
  PassManager PM(M);
  return PM.runToFixpoint(Names, MaxRounds);
}
