//===- passes/Utils.cpp ---------------------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "passes/Utils.h"

#include "util/Hash.h"

#include <bit>
#include <cmath>
#include <unordered_set>

using namespace compiler_gym;
using namespace compiler_gym::passes;
using namespace compiler_gym::ir;

Constant *passes::foldConstant(const Instruction &I, Module &M) {
  if (I.hasSideEffects() || I.opcode() == Opcode::Phi ||
      I.opcode() == Opcode::Alloca || I.opcode() == Opcode::Load)
    return nullptr;
  for (const Value *Op : I.operands())
    if (!isa<Constant>(Op))
      return nullptr;

  auto intOp = [&](size_t Idx) {
    return cast<Constant>(I.operand(Idx))->intValue();
  };
  auto fltOp = [&](size_t Idx) {
    return cast<Constant>(I.operand(Idx))->floatValue();
  };
  auto wrap = [&](int64_t V) { return M.getConstInt(I.type(), V); };

  switch (I.opcode()) {
  case Opcode::Add:
    return wrap(static_cast<int64_t>(static_cast<uint64_t>(intOp(0)) +
                                     static_cast<uint64_t>(intOp(1))));
  case Opcode::Sub:
    return wrap(static_cast<int64_t>(static_cast<uint64_t>(intOp(0)) -
                                     static_cast<uint64_t>(intOp(1))));
  case Opcode::Mul:
    return wrap(static_cast<int64_t>(static_cast<uint64_t>(intOp(0)) *
                                     static_cast<uint64_t>(intOp(1))));
  case Opcode::SDiv: {
    int64_t L = intOp(0), R = intOp(1);
    if (R == 0 || (L == INT64_MIN && R == -1))
      return nullptr; // Preserve the trap.
    return wrap(L / R);
  }
  case Opcode::SRem: {
    int64_t L = intOp(0), R = intOp(1);
    if (R == 0 || (L == INT64_MIN && R == -1))
      return nullptr;
    return wrap(L % R);
  }
  case Opcode::And:
    return wrap(intOp(0) & intOp(1));
  case Opcode::Or:
    return wrap(intOp(0) | intOp(1));
  case Opcode::Xor:
    return wrap(intOp(0) ^ intOp(1));
  case Opcode::Shl:
    return wrap(static_cast<int64_t>(static_cast<uint64_t>(intOp(0))
                                     << (static_cast<uint64_t>(intOp(1)) &
                                         63)));
  case Opcode::LShr: {
    uint64_t L = static_cast<uint64_t>(intOp(0));
    if (I.type() == Type::I32)
      L &= 0xFFFFFFFFull;
    return wrap(
        static_cast<int64_t>(L >> (static_cast<uint64_t>(intOp(1)) & 63)));
  }
  case Opcode::AShr:
    return wrap(intOp(0) >> (static_cast<uint64_t>(intOp(1)) & 63));
  case Opcode::FAdd:
    return M.getConstFloat(fltOp(0) + fltOp(1));
  case Opcode::FSub:
    return M.getConstFloat(fltOp(0) - fltOp(1));
  case Opcode::FMul:
    return M.getConstFloat(fltOp(0) * fltOp(1));
  case Opcode::FDiv:
    return M.getConstFloat(fltOp(1) == 0.0 ? 0.0 : fltOp(0) / fltOp(1));
  case Opcode::ICmp: {
    int64_t L = intOp(0), R = intOp(1);
    bool Out = false;
    switch (I.pred()) {
    case Pred::EQ:
      Out = L == R;
      break;
    case Pred::NE:
      Out = L != R;
      break;
    case Pred::LT:
      Out = L < R;
      break;
    case Pred::LE:
      Out = L <= R;
      break;
    case Pred::GT:
      Out = L > R;
      break;
    case Pred::GE:
      Out = L >= R;
      break;
    }
    return M.getConstInt(Type::I1, Out);
  }
  case Opcode::FCmp: {
    double L = fltOp(0), R = fltOp(1);
    bool Out = false;
    switch (I.pred()) {
    case Pred::EQ:
      Out = L == R;
      break;
    case Pred::NE:
      Out = L != R;
      break;
    case Pred::LT:
      Out = L < R;
      break;
    case Pred::LE:
      Out = L <= R;
      break;
    case Pred::GT:
      Out = L > R;
      break;
    case Pred::GE:
      Out = L >= R;
      break;
    }
    return M.getConstInt(Type::I1, Out);
  }
  case Opcode::Select:
    return cast<Constant>(I.operand(intOp(0) ? 1 : 2));
  case Opcode::Trunc:
    return wrap(static_cast<int32_t>(intOp(0)));
  case Opcode::ZExt: {
    uint64_t U = static_cast<uint64_t>(intOp(0));
    Type Src = I.operand(0)->type();
    if (Src == Type::I1)
      U &= 1;
    else if (Src == Type::I32)
      U &= 0xFFFFFFFFull;
    return wrap(static_cast<int64_t>(U));
  }
  case Opcode::SExt:
    return wrap(intOp(0)); // Stored canonically sign-extended already.
  case Opcode::SIToFP:
    return M.getConstFloat(static_cast<double>(intOp(0)));
  case Opcode::FPToSI: {
    double V = fltOp(0);
    if (!std::isfinite(V) || V > 9.2e18 || V < -9.2e18)
      V = 0.0;
    return M.getConstInt(Type::I64, static_cast<int64_t>(V));
  }
  default:
    return nullptr;
  }
}

Value *passes::simplifyInstruction(const Instruction &I, Module &M) {
  auto constOp = [&](size_t Idx) { return dyn_cast<Constant>(I.operand(Idx)); };

  switch (I.opcode()) {
  case Opcode::Add:
    if (const Constant *R = constOp(1); R && R->isZero())
      return I.operand(0);
    if (const Constant *L = constOp(0); L && L->isZero())
      return I.operand(1);
    return nullptr;
  case Opcode::Sub:
    if (const Constant *R = constOp(1); R && R->isZero())
      return I.operand(0);
    if (I.operand(0) == I.operand(1))
      return M.getConstInt(I.type(), 0);
    return nullptr;
  case Opcode::Mul: {
    const Constant *R = constOp(1);
    if (R && R->isOne())
      return I.operand(0);
    if (R && R->isZero())
      return M.getConstInt(I.type(), 0);
    const Constant *L = constOp(0);
    if (L && L->isOne())
      return I.operand(1);
    if (L && L->isZero())
      return M.getConstInt(I.type(), 0);
    return nullptr;
  }
  case Opcode::SDiv:
    if (const Constant *R = constOp(1); R && R->isOne())
      return I.operand(0);
    return nullptr;
  case Opcode::And:
    if (I.operand(0) == I.operand(1))
      return I.operand(0);
    if (const Constant *R = constOp(1); R && R->isZero())
      return M.getConstInt(I.type(), 0);
    if (const Constant *L = constOp(0); L && L->isZero())
      return M.getConstInt(I.type(), 0);
    return nullptr;
  case Opcode::Or:
    if (I.operand(0) == I.operand(1))
      return I.operand(0);
    if (const Constant *R = constOp(1); R && R->isZero())
      return I.operand(0);
    if (const Constant *L = constOp(0); L && L->isZero())
      return I.operand(1);
    return nullptr;
  case Opcode::Xor:
    if (I.operand(0) == I.operand(1))
      return M.getConstInt(I.type(), 0);
    if (const Constant *R = constOp(1); R && R->isZero())
      return I.operand(0);
    if (const Constant *L = constOp(0); L && L->isZero())
      return I.operand(1);
    return nullptr;
  case Opcode::Shl:
  case Opcode::LShr:
  case Opcode::AShr:
    if (const Constant *R = constOp(1); R && R->isZero())
      return I.operand(0);
    if (const Constant *L = constOp(0); L && L->isZero())
      return M.getConstInt(I.type(), 0);
    return nullptr;
  case Opcode::FAdd:
    // f + 0.0 == f only when -0.0 is not observable; our interpreter never
    // distinguishes signed zeros in output hashing, so allow it.
    if (const Constant *R = constOp(1);
        R && R->type() == Type::F64 && R->floatValue() == 0.0)
      return I.operand(0);
    return nullptr;
  case Opcode::FMul:
    if (const Constant *R = constOp(1);
        R && R->type() == Type::F64 && R->floatValue() == 1.0)
      return I.operand(0);
    return nullptr;
  case Opcode::ICmp:
    if (I.operand(0) == I.operand(1)) {
      bool Out = I.pred() == Pred::EQ || I.pred() == Pred::LE ||
                 I.pred() == Pred::GE;
      return M.getConstInt(Type::I1, Out);
    }
    return nullptr;
  case Opcode::Select:
    if (I.operand(1) == I.operand(2))
      return I.operand(1);
    if (const Constant *C = constOp(0))
      return I.operand(C->intValue() ? 1 : 2);
    return nullptr;
  case Opcode::Gep:
    if (const Constant *R = constOp(1); R && R->isZero())
      return I.operand(0);
    return nullptr;
  case Opcode::Phi: {
    // Single-entry phi or all-identical inputs.
    if (I.numIncoming() == 0)
      return nullptr;
    Value *First = I.incomingValue(0);
    for (unsigned K = 1; K < I.numIncoming(); ++K)
      if (I.incomingValue(K) != First &&
          I.incomingValue(K) != static_cast<const Value *>(&I))
        return nullptr;
    if (First == static_cast<const Value *>(&I))
      return nullptr; // Degenerate self-only phi.
    return First;
  }
  default:
    return nullptr;
  }
}

void passes::removePhiIncomingFor(BasicBlock &BB, BasicBlock *Pred) {
  for (const auto &I : BB.instructions()) {
    if (I->opcode() != Opcode::Phi)
      break;
    for (unsigned K = 0; K < I->numIncoming();) {
      if (I->incomingBlock(K) == Pred)
        I->removeIncoming(K);
      else
        ++K;
    }
  }
}

void passes::replacePhiIncomingBlock(BasicBlock &BB, BasicBlock *From,
                                     BasicBlock *To) {
  for (const auto &I : BB.instructions()) {
    if (I->opcode() != Opcode::Phi)
      break;
    for (unsigned K = 0; K < I->numIncoming(); ++K)
      if (I->incomingBlock(K) == From)
        I->setOperand(2 * K + 1, To);
  }
}

bool passes::removeUnreachableBlocks(Function &F) {
  if (F.empty())
    return false;
  std::unordered_set<BasicBlock *> Reachable;
  std::vector<BasicBlock *> Work{F.entry()};
  Reachable.insert(F.entry());
  while (!Work.empty()) {
    BasicBlock *BB = Work.back();
    Work.pop_back();
    for (BasicBlock *Succ : BB->successors())
      if (Reachable.insert(Succ).second)
        Work.push_back(Succ);
  }
  if (Reachable.size() == F.numBlocks())
    return false;

  // Collect doomed blocks, clean phi edges into survivors, then erase.
  std::vector<BasicBlock *> Doomed;
  for (const auto &BB : F.blocks())
    if (!Reachable.count(BB.get()))
      Doomed.push_back(BB.get());
  for (BasicBlock *Dead : Doomed)
    for (BasicBlock *Succ : Dead->successors())
      if (Reachable.count(Succ))
        removePhiIncomingFor(*Succ, Dead);
  for (BasicBlock *Dead : Doomed)
    F.eraseBlock(Dead);
  return true;
}

StableValueIds::StableValueIds(const Function &F) {
  uint64_t Next = 1;
  for (size_t A = 0; A < F.numArgs(); ++A)
    Ids[F.arg(A)] = Next++;
  for (const auto &BB : F.blocks()) {
    Ids[BB.get()] = Next++;
    for (const auto &I : BB->instructions())
      Ids[I.get()] = Next++;
  }
}

uint64_t StableValueIds::idOf(const Value *V) const {
  auto It = Ids.find(V);
  if (It != Ids.end())
    return It->second;
  // Constants / globals / function refs: hash by content, offset away from
  // the local-id range.
  if (const auto *C = dyn_cast<Constant>(V)) {
    uint64_t Bits = C->type() == Type::F64
                        ? std::bit_cast<uint64_t>(C->floatValue())
                        : static_cast<uint64_t>(C->intValue());
    return hashCombine(0xC0157A57ull + static_cast<int>(C->type()), Bits) |
           (1ull << 63);
  }
  if (const auto *G = dyn_cast<GlobalVariable>(V))
    return fnv1a(G->name()) | (1ull << 62);
  if (const auto *FR = dyn_cast<FunctionRef>(V))
    return fnv1a(FR->calleeName()) | (1ull << 61);
  return 0;
}

bool passes::isPowerOfTwo(const Constant &C, int &Log2Out) {
  if (!isIntegerType(C.type()))
    return false;
  int64_t V = C.intValue();
  if (V <= 0 || (V & (V - 1)) != 0)
    return false;
  Log2Out = std::countr_zero(static_cast<uint64_t>(V));
  return true;
}
