//===- examples/remote_client.cpp - Episode over a socket -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The quickstart episode, but against a remote endpoint: dial a gateway
/// (or a bare NetServer-fronted service) over a Unix-domain or TCP
/// socket and run a random phase-ordering episode. The environment API is
/// identical to the in-process one — only the construction differs:
/// CompilerEnv::connect() with a SocketTransport instead of core::make().
///
/// Start the server half first: example_serve_gateway
///
/// Usage: remote_client [address] [tenant-token] [benchmark-uri] [steps]
///
//===----------------------------------------------------------------------===//

#include "core/CompilerEnv.h"
#include "core/Registry.h"
#include "net/SocketTransport.h"
#include "util/Rng.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace compiler_gym;

int main(int argc, char **argv) {
  const char *Spec = argc > 1 ? argv[1] : "unix:/tmp/cg_gateway.sock";
  const std::string Token = argc > 2 ? argv[2] : "alice";
  const std::string Benchmark =
      argc > 3 ? argv[3] : "benchmark://cbench-v1/qsort";
  const int Steps = argc > 4 ? std::atoi(argv[4]) : 20;

  auto Addr = net::NetAddress::parse(Spec);
  if (!Addr.isOk()) {
    std::fprintf(stderr, "bad address '%s': %s\n", Spec,
                 Addr.status().toString().c_str());
    return 1;
  }

  // Resolve the same environment/benchmark options core::make() would
  // use, then attach them to a socket channel instead of an in-process
  // service. The benchmark's IR travels to the server in StartSession.
  core::MakeOptions MO;
  MO.Benchmark = Benchmark;
  MO.ObservationSpace = "Autophase";
  MO.RewardSpace = "IrInstructionCount";
  auto Opts = core::resolveMakeOptions("llvm-v0", MO);
  if (!Opts.isOk()) {
    std::fprintf(stderr, "resolve failed: %s\n",
                 Opts.status().toString().c_str());
    return 1;
  }
  Opts->Client.AuthToken = Token;
  auto Env = core::CompilerEnv::connect(
      *Opts, std::make_shared<net::SocketTransport>(*Addr));
  if (!Env.isOk()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 Env.status().toString().c_str());
    return 1;
  }

  auto Observation = (*Env)->reset();
  if (!Observation.isOk()) {
    std::fprintf(stderr, "reset failed: %s\n",
                 Observation.status().toString().c_str());
    return 1;
  }
  std::printf("connected:    %s (tenant '%s')\n", Spec, Token.c_str());
  std::printf("benchmark:    %s\n", Benchmark.c_str());
  std::printf("action space: %zu passes\n", (*Env)->actionSpace().size());

  Rng Gen(0xBEEF);
  double Cumulative = 0.0;
  for (int I = 0; I < Steps; ++I) {
    int Action = static_cast<int>(Gen.bounded((*Env)->actionSpace().size()));
    auto Result = (*Env)->step(Action);
    if (!Result.isOk()) {
      std::fprintf(stderr, "step failed: %s\n",
                   Result.status().toString().c_str());
      return 1;
    }
    Cumulative += Result->Reward;
    std::printf("step %3d  %-24s reward %+8.4f  total %+8.4f\n", I + 1,
                (*Env)->actionSpace().ActionNames[Action].c_str(),
                Result->Reward, Cumulative);
  }
  std::printf("episode reward: %+.4f (%llu RPC retries, %llu recoveries)\n",
              (*Env)->episodeReward(),
              static_cast<unsigned long long>((*Env)->client().retryCount()),
              static_cast<unsigned long long>((*Env)->serviceRecoveries()));
  return 0;
}
