//===- examples/trace_dump.cpp - Telemetry introspection demo ---*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Runs a short traced episode and dumps both telemetry exports: the span
/// buffer as Chrome trace-event JSON (load the file in Perfetto or
/// chrome://tracing to see the client -> service -> pass -> analysis span
/// tree of each step RPC) and the metrics registry as a Prometheus text
/// snapshot on stdout.
///
/// Usage: trace_dump [output.json] [steps]
///
//===----------------------------------------------------------------------===//

#include "core/Registry.h"
#include "telemetry/MetricsRegistry.h"
#include "telemetry/Trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

using namespace compiler_gym;

int main(int argc, char **argv) {
  const std::string OutPath = argc > 1 ? argv[1] : "trace.json";
  const int Steps = argc > 2 ? std::atoi(argv[2]) : 8;

  telemetry::Tracer &Tracer = telemetry::Tracer::global();
  Tracer.setEnabled(true);
  // Record every trace; under sustained load setSampleEveryN(N) keeps the
  // buffer bounded by recording every Nth step instead.
  Tracer.setSampleEveryN(1);

  core::MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = "Autophase";
  Opts.RewardSpace = "IrInstructionCount";
  auto Env = core::make("llvm-v0", Opts);
  if (!Env.isOk()) {
    std::fprintf(stderr, "make failed: %s\n",
                 Env.status().toString().c_str());
    return 1;
  }
  if (!(*Env)->reset().isOk()) {
    std::fprintf(stderr, "reset failed\n");
    return 1;
  }
  for (int S = 0; S < Steps; ++S) {
    auto Result = (*Env)->step({S % 8}, {"Autophase", "InstCount"});
    if (!Result.isOk()) {
      std::fprintf(stderr, "step failed: %s\n",
                   Result.status().toString().c_str());
      return 1;
    }
  }
  Tracer.setEnabled(false);

  std::ofstream Out(OutPath);
  if (!Out) {
    std::fprintf(stderr, "cannot write %s\n", OutPath.c_str());
    return 1;
  }
  Out << Tracer.exportChromeTrace();
  Out.close();
  std::printf("wrote %zu spans to %s (open in Perfetto or "
              "chrome://tracing)\n\n",
              Tracer.spanCount(), OutPath.c_str());

  std::printf("-- Prometheus snapshot --\n%s",
              telemetry::MetricsRegistry::global().renderPrometheus().c_str());
  return 0;
}
