//===- examples/rl_qlearning.cpp - Q-learning code sample -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper ships Q-learning and Actor-Critic code samples alongside its
/// documentation (§VI); this is the Q-learning one: a tabular agent
/// learning phase orderings for a single benchmark, demonstrating the
/// wrapper composition of §III-C (TimeLimit + ActionSubset +
/// ObservationHistogram) on the way.
///
/// Usage: rl_qlearning [benchmark-uri] [episodes]
///
//===----------------------------------------------------------------------===//

#include "bench/RlBenchUtils.h"
#include "core/Registry.h"
#include "rl/QLearning.h"

#include <cstdio>
#include <cstdlib>

using namespace compiler_gym;
using namespace compiler_gym::bench;

int main(int argc, char **argv) {
  const std::string Benchmark =
      argc > 1 ? argv[1] : "benchmark://cbench-v1/bitcount";
  const int Episodes = argc > 2 ? std::atoi(argv[2]) : 400;

  RlSetup Setup;
  Setup.EpisodeSteps = 20;
  Setup.ActionSubsetSize = 16; // Small space keeps the table tractable.
  size_t ObsDim = 0, NumActions = 0;
  auto Env = makeRlEnv(Setup, {Benchmark}, ObsDim, NumActions);
  if (!Env.isOk()) {
    std::fprintf(stderr, "error: %s\n", Env.status().toString().c_str());
    return 1;
  }

  rl::QLearningConfig Config;
  Config.NumActions = NumActions;
  Config.MaxEpisodeSteps = Setup.EpisodeSteps;
  rl::QLearningAgent Agent(Config);

  std::printf("Q-learning on %s: %zu actions, %d episodes\n",
              Benchmark.c_str(), NumActions, Episodes);
  double Window = 0.0;
  int WindowCount = 0;
  Status S = Agent.train(**Env, Episodes, [&](int Episode, double Reward) {
    Window += Reward;
    if (++WindowCount == 50) {
      std::printf("episodes %4d..%4d  mean reward %+.3f  (table: %zu "
                  "states)\n",
                  Episode - 49, Episode, Window / 50, Agent.tableSize());
      Window = 0;
      WindowCount = 0;
    }
  });
  if (!S.isOk()) {
    std::fprintf(stderr, "training failed: %s\n", S.toString().c_str());
    return 1;
  }

  auto Final = rl::evaluateEpisode(**Env, Agent, Setup.EpisodeSteps);
  if (!Final.isOk())
    return 1;
  std::printf("\ngreedy policy cumulative reward: %+.3f "
              "(IrInstructionCountOz scale: 1.0 = parity with -Oz)\n",
              *Final);
  return 0;
}
