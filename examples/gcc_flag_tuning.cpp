//===- examples/gcc_flag_tuning.cpp - GCC space exploration -----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Explores the GCC flag-tuning environment (§V-B): prints the structure
/// of the 502-option space the way the paper's tooling extracts it from
/// `gcc --help`, then runs a small search comparing -Os against tuned
/// configurations on a CHStone benchmark.
///
/// Usage: gcc_flag_tuning [benchmark-uri] [compilations]
///
//===----------------------------------------------------------------------===//

#include "autotune/Search.h"
#include "core/Registry.h"
#include "envs/gcc/GccSession.h"

#include <cstdio>
#include <cstdlib>

using namespace compiler_gym;
using namespace compiler_gym::envs;

int main(int argc, char **argv) {
  const std::string Benchmark =
      argc > 1 ? argv[1] : "benchmark://chstone-v0/aes";
  const size_t Compilations = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                       : 200;

  // -- The option space, as discovered from the compiler. -----------------
  const GccOptionSpace &Space = GccSession::optionSpace();
  size_t Flags = 0, Params = 0;
  for (const GccOption &O : Space.options()) {
    Flags += O.OptKind == GccOption::Kind::Flag;
    Params += O.OptKind == GccOption::Kind::Param;
  }
  std::printf("GCC option space (version 11 style):\n");
  std::printf("  %zu options total: 1 -O selector, %zu flags, %zu params\n",
              Space.options().size(), Flags, Params);
  std::printf("  ~10^%.0f distinct configurations\n", Space.log10SpaceSize());
  std::printf("  %zu categorical actions\n\n", Space.actions().size());
  std::printf("sample options:\n");
  for (size_t I = 0; I < Space.options().size(); I += 97)
    std::printf("  %-44s cardinality %lld\n", Space.options()[I].Name.c_str(),
                static_cast<long long>(Space.options()[I].Cardinality));

  // -- Baseline sizes under the -O levels. -----------------------------------
  core::MakeOptions Opts;
  Opts.Benchmark = Benchmark;
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "ObjSizeBytes";
  Opts.ActionSpaceName = "gcc-direct-v0";
  auto Env = core::make("gcc-v0", Opts);
  if (!Env.isOk()) {
    std::fprintf(stderr, "error: %s\n", Env.status().toString().c_str());
    return 1;
  }
  if (!(*Env)->reset().isOk())
    return 1;

  std::printf("\nobject size of %s under the -O levels:\n",
              Benchmark.c_str());
  std::vector<int64_t> Choices = Space.defaultChoices();
  for (int64_t Level = 0; Level < 7; ++Level) {
    Choices[0] = Level;
    // The observation rides the step RPC (multi-space step).
    auto R = (*Env)->stepDirect(Choices, {"ObjSizeBytes"});
    if (!R.isOk())
      return 1;
    auto Size = R->Observations.front().second.asInt64();
    if (!Size.isOk())
      return 1;
    static const char *Names[] = {"(default)", "-O0", "-O1", "-O2",
                                  "-O3", "-Os", "-Oz"};
    std::printf("  %-10s %6lld bytes\n", Names[Level],
                static_cast<long long>(*Size));
  }

  // -- Tuned configuration via the genetic algorithm. --------------------------
  std::printf("\nsearching %zu compilations with the genetic algorithm...\n",
              Compilations);
  std::unique_ptr<autotune::Search> Ga =
      autotune::createGccGeneticAlgorithm(42, 30);
  autotune::SearchBudget Budget;
  Budget.MaxCompilations = Compilations;
  auto Result = Ga->run(**Env, Budget);
  if (!Result.isOk()) {
    std::fprintf(stderr, "search failed: %s\n",
                 Result.status().toString().c_str());
    return 1;
  }
  if (!(*Env)->reset().isOk())
    return 1;
  std::vector<int64_t> Best(Result->BestActions.begin(),
                            Result->BestActions.end());
  if (!Best.empty() && !(*Env)->stepDirect(Best).isOk())
    return 1;
  auto Tuned = (*Env)->observation()["ObjSizeBytes"];
  auto Baseline = (*Env)->observation()["ObjSizeOs"];
  if (Tuned.isOk() && Baseline.isOk())
    std::printf("tuned: %lld bytes vs -Os %lld bytes -> %.3fx reduction "
                "(paper's GA: 1.27x with 1000 compilations)\n",
                static_cast<long long>(Tuned->raw().IntValue),
                static_cast<long long>(Baseline->raw().IntValue),
                static_cast<double>(Baseline->raw().IntValue) /
                    static_cast<double>(Tuned->raw().IntValue));
  return 0;
}
