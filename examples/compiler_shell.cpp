//===- examples/compiler_shell.cpp - Interactive CLI shell ------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's interactive command-line shell (§III-D): explore compiler
/// optimization environments without writing any code. Reads commands from
/// stdin (pipe-friendly for scripting):
///
///   help                      this text
///   envs                      list environment ids
///   datasets                  list benchmark datasets
///   make <env-id>             create an environment
///   benchmark <uri>           select a benchmark (takes effect on reset)
///   reset                     start an episode
///   actions [filter]          list actions (optionally filtered)
///   step <action-name-or-#>   apply an action
///   observe <space>           compute an observation
///   spaces                    list observation + reward spaces (typed)
///   state                     show the serialized episode state
///   fork                      save a fork to return to later
///   restore                   switch to the most recent fork
///   quit
///
//===----------------------------------------------------------------------===//

#include "core/Registry.h"
#include "datasets/DatasetRegistry.h"
#include "util/StringUtils.h"

#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

using namespace compiler_gym;
using namespace compiler_gym::core;

namespace {

void printHelp() {
  std::printf(
      "commands: envs | datasets | make <env-id> | benchmark <uri> | reset\n"
      "          actions [filter] | step <name-or-#> | observe <space>\n"
      "          spaces | state | fork | restore | help | quit\n");
}

void printObservation(const service::Observation &Obs) {
  switch (Obs.Type) {
  case service::ObservationType::Int64List: {
    std::printf("[");
    for (size_t I = 0; I < Obs.Ints.size(); ++I)
      std::printf("%s%lld", I ? ", " : "",
                  static_cast<long long>(Obs.Ints[I]));
    std::printf("]\n");
    break;
  }
  case service::ObservationType::DoubleList:
    std::printf("<%zu doubles>\n", Obs.Doubles.size());
    break;
  case service::ObservationType::String:
    std::printf("%s\n", Obs.Str.c_str());
    break;
  case service::ObservationType::Binary:
    std::printf("<%zu bytes>\n", Obs.Str.size());
    break;
  case service::ObservationType::Int64Value:
    std::printf("%lld\n", static_cast<long long>(Obs.IntValue));
    break;
  case service::ObservationType::DoubleValue:
    std::printf("%g\n", Obs.DoubleValue);
    break;
  }
}

} // namespace

int main() {
  std::printf("CompilerGym-C++ shell. Type 'help' for commands.\n");
  std::unique_ptr<CompilerEnv> Env;
  std::unique_ptr<CompilerEnv> Fork;

  std::string Line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, Line)) {
    std::istringstream Words(Line);
    std::string Cmd, Arg;
    Words >> Cmd;
    std::getline(Words, Arg);
    Arg = std::string(trimString(Arg));

    if (Cmd.empty())
      continue;
    if (Cmd == "quit" || Cmd == "exit")
      break;
    if (Cmd == "help") {
      printHelp();
      continue;
    }
    if (Cmd == "envs") {
      for (const std::string &Id : registeredEnvironments())
        std::printf("  %s\n", Id.c_str());
      continue;
    }
    if (Cmd == "datasets") {
      for (const auto &D : datasets::DatasetRegistry::instance().datasets())
        std::printf("  %-32s %10llu benchmarks  %s\n", D->name().c_str(),
                    static_cast<unsigned long long>(D->size()),
                    D->description().c_str());
      continue;
    }
    if (Cmd == "make") {
      auto Made = make(Arg.empty() ? "llvm-v0" : Arg);
      if (!Made.isOk()) {
        std::printf("error: %s\n", Made.status().toString().c_str());
        continue;
      }
      Env = Made.takeValue();
      std::printf("created %s (benchmark %s); 'reset' to begin\n",
                  Arg.empty() ? "llvm-v0" : Arg.c_str(),
                  Env->benchmark().c_str());
      continue;
    }
    if (!Env) {
      std::printf("no environment; use: make llvm-v0\n");
      continue;
    }
    if (Cmd == "benchmark") {
      Env->setBenchmark(Arg);
      std::printf("benchmark set to %s (takes effect on reset)\n",
                  Arg.c_str());
      continue;
    }
    if (Cmd == "reset") {
      auto Obs = Env->reset();
      if (!Obs.isOk()) {
        std::printf("error: %s\n", Obs.status().toString().c_str());
        continue;
      }
      std::printf("episode started; %zu actions available\n",
                  Env->actionSpace().size());
      continue;
    }
    if (Cmd == "actions") {
      const auto &Names = Env->actionSpace().ActionNames;
      for (size_t I = 0; I < Names.size(); ++I)
        if (Arg.empty() || Names[I].find(Arg) != std::string::npos)
          std::printf("  [%3zu] %s\n", I, Names[I].c_str());
      continue;
    }
    if (Cmd == "step") {
      const auto &Names = Env->actionSpace().ActionNames;
      int Action = -1;
      if (!Arg.empty() && isdigit(static_cast<unsigned char>(Arg[0]))) {
        Action = std::atoi(Arg.c_str());
      } else {
        for (size_t I = 0; I < Names.size(); ++I)
          if (Names[I] == Arg)
            Action = static_cast<int>(I);
      }
      if (Action < 0 || static_cast<size_t>(Action) >= Names.size()) {
        std::printf("unknown action '%s'\n", Arg.c_str());
        continue;
      }
      auto R = Env->step(Action);
      if (!R.isOk()) {
        std::printf("error: %s\n", R.status().toString().c_str());
        continue;
      }
      std::printf("%s: reward %+g, cumulative %+g%s\n",
                  Names[Action].c_str(), R->Reward, Env->episodeReward(),
                  R->Done ? " [episode done]" : "");
      continue;
    }
    if (Cmd == "observe") {
      auto Obs = Env->observation()[Arg];
      if (!Obs.isOk()) {
        std::printf("error: %s\n", Obs.status().toString().c_str());
        continue;
      }
      printObservation(Obs->raw());
      continue;
    }
    if (Cmd == "spaces") {
      for (const SpaceInfo &Info : Env->observation().spaces()) {
        std::string Shape;
        for (int64_t D : Info.Shape)
          Shape += (Shape.empty() ? "[" : "x") + std::to_string(D);
        if (!Shape.empty())
          Shape += "]";
        std::printf("  obs    %-24s %s%s%s%s\n", Info.Name.c_str(),
                    Shape.c_str(), Info.Deterministic ? "" : " nondet",
                    Info.PlatformDependent ? " platform" : "",
                    Info.Derived ? " derived" : "");
      }
      for (const RewardSpec &Spec : Env->reward().spaces())
        std::printf("  reward %-24s metric=%s%s%s\n", Spec.Name.c_str(),
                    Spec.MetricObservation.c_str(),
                    Spec.BaselineObservation.empty()
                        ? ""
                        : (" baseline=" + Spec.BaselineObservation).c_str(),
                    Spec.Delta ? "" : " absolute");
      continue;
    }
    if (Cmd == "state") {
      std::printf("%s\n", Env->state().serialize().c_str());
      continue;
    }
    if (Cmd == "fork") {
      auto Forked = Env->fork();
      if (!Forked.isOk()) {
        std::printf("error: %s\n", Forked.status().toString().c_str());
        continue;
      }
      Fork = Forked.takeValue();
      std::printf("forked at %zu actions; 'restore' to return here\n",
                  Fork->episodeLength());
      continue;
    }
    if (Cmd == "restore") {
      if (!Fork) {
        std::printf("nothing forked\n");
        continue;
      }
      Env = std::move(Fork);
      std::printf("restored fork at %zu actions\n", Env->episodeLength());
      continue;
    }
    std::printf("unknown command '%s'; try 'help'\n", Cmd.c_str());
  }
  return 0;
}
