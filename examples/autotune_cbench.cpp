//===- examples/autotune_cbench.cpp - Parallel autotuning -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A realistic autotuning workflow over the cBench suite, in the style of
/// the paper's command line tools: a pool of worker threads runs a search
/// technique per benchmark (each worker owns its own environment/service,
/// exactly the paper's parallelization story), validates the winning
/// episodes by replay + differential testing, and submits them to a
/// leaderboard file.
///
/// Usage: autotune_cbench [technique] [step-budget] [threads]
///   technique: random | greedy | lamcts | nevergrad | opentuner
///
//===----------------------------------------------------------------------===//

#include "autotune/Search.h"
#include "core/Leaderboard.h"
#include "core/Registry.h"
#include "util/Hash.h"
#include "core/Validation.h"
#include "datasets/DatasetRegistry.h"
#include "util/ThreadPool.h"

#include <cstdio>
#include <cstdlib>
#include <mutex>

using namespace compiler_gym;

namespace {

std::unique_ptr<autotune::Search> makeTechnique(const std::string &Name,
                                                uint64_t Seed) {
  if (Name == "greedy")
    return autotune::createGreedySearch();
  if (Name == "lamcts")
    return autotune::createLaMctsSearch(Seed);
  if (Name == "nevergrad")
    return autotune::createNevergradSearch(Seed, 24);
  if (Name == "opentuner")
    return autotune::createOpenTunerSearch(Seed, 24);
  return autotune::createRandomSearch(Seed, 24);
}

} // namespace

int main(int argc, char **argv) {
  const std::string Technique = argc > 1 ? argv[1] : "random";
  const size_t StepBudget = argc > 2 ? std::strtoull(argv[2], nullptr, 10)
                                     : 400;
  const size_t NumThreads = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                     : 4;

  const auto *Cbench =
      datasets::DatasetRegistry::instance().dataset("benchmark://cbench-v1");
  if (!Cbench) {
    std::fprintf(stderr, "cbench dataset missing\n");
    return 1;
  }
  std::vector<std::string> Programs = Cbench->benchmarkNames(8);
  core::Leaderboard Board("/tmp/cg_autotune_leaderboard.csv");

  std::printf("autotuning %zu cBench programs with %s "
              "(budget %zu steps, %zu worker threads)\n\n",
              Programs.size(), Technique.c_str(), StepBudget, NumThreads);

  std::mutex OutputMutex;
  ThreadPool Pool(NumThreads);
  for (const std::string &Program : Programs) {
    Pool.submit([&, Program] {
      core::MakeOptions Opts;
      Opts.Benchmark = "benchmark://cbench-v1/" + Program;
      Opts.ObservationSpace = "none";
      Opts.RewardSpace = "IrInstructionCountOz";
      auto Env = core::make("llvm-v0", Opts);
      if (!Env.isOk())
        return;
      std::unique_ptr<autotune::Search> Search =
          makeTechnique(Technique, fnv1a(Program));
      autotune::SearchBudget Budget;
      Budget.MaxSteps = StepBudget;
      auto Result = Search->run(**Env, Budget);
      if (!Result.isOk())
        return;

      // Reproduce the best episode so the env state matches the claim,
      // then validate and submit it.
      if (!(*Env)->reset().isOk())
        return;
      if (!Result->BestActions.empty() &&
          !(*Env)->step(Result->BestActions).isOk())
        return;
      core::EnvState State = (*Env)->state();
      auto Validation = core::validateState(State);
      core::LeaderboardEntry Entry;
      Entry.Technique = Technique;
      Entry.State = State;
      Entry.WalltimeSeconds = Result->WallSeconds;
      Entry.Validated = Validation.isOk() && Validation->ok();
      (void)Board.submit(Entry);

      std::lock_guard<std::mutex> Lock(OutputMutex);
      std::printf("%-14s cumulative reward %+7.3f in %5.2fs "
                  "(%4zu compilations)  [%s]\n",
                  Program.c_str(), Result->BestReward, Result->WallSeconds,
                  Result->CompilationsUsed,
                  Entry.Validated ? "validated" : "VALIDATION FAILED");
    });
  }
  Pool.wait();

  // Show the per-benchmark leaderboard standing for one program.
  auto Ranked = Board.ranking("benchmark://cbench-v1/" + Programs.front());
  if (Ranked.isOk() && !Ranked->empty()) {
    std::printf("\nleaderboard for %s (best first):\n",
                Programs.front().c_str());
    for (const auto &Entry : *Ranked)
      std::printf("  %-12s reward %+7.3f  %s\n", Entry.Technique.c_str(),
                  Entry.State.CumulativeReward,
                  Entry.Validated ? "[validated]" : "[unvalidated]");
  }
  std::printf("\nleaderboard file: /tmp/cg_autotune_leaderboard.csv\n");
  return 0;
}
