//===- examples/serve_gateway.cpp - Run a multi-tenant endpoint -*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Serves a shared compiler-optimization endpoint: a gateway::Gateway
/// multiplexing authenticated tenants onto a shard fleet. Pair it with
/// example_remote_client in another terminal (or another machine, over
/// tcp:) to run episodes against it.
///
/// Usage: serve_gateway [listen-address] [num-shards]
///
///   listen-address  "unix:/tmp/cg_gateway.sock" (default) or
///                   "tcp:127.0.0.1:7777" ("...:0" picks a free port)
///   num-shards      backend compiler services to run (default 2)
///
/// Two demo tenants are configured: token "alice" (weight 3) and token
/// "bob" (weight 1, rate-limited to 50 steps/s). An empty token is
/// rejected — edit the table below for a single-user setup.
///
//===----------------------------------------------------------------------===//

#include "envs/llvm/LlvmSession.h"
#include "gateway/Gateway.h"

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <unistd.h>

using namespace compiler_gym;

namespace {
volatile std::sig_atomic_t Interrupted = 0;
void onInterrupt(int) { Interrupted = 1; }
} // namespace

int main(int argc, char **argv) {
  const char *Spec = argc > 1 ? argv[1] : "unix:/tmp/cg_gateway.sock";
  const size_t NumShards = argc > 2 ? std::atoi(argv[2]) : 2;

  envs::registerLlvmEnvironment();

  auto Listen = net::NetAddress::parse(Spec);
  if (!Listen.isOk()) {
    std::fprintf(stderr, "bad listen address '%s': %s\n", Spec,
                 Listen.status().toString().c_str());
    return 1;
  }

  gateway::GatewayOptions Opts;
  Opts.Listen = *Listen;
  Opts.NumShards = NumShards;
  {
    gateway::TenantConfig Alice;
    Alice.Name = "alice";
    Alice.Token = "alice";
    Alice.Weight = 3;
    gateway::TenantConfig Bob;
    Bob.Name = "bob";
    Bob.Token = "bob";
    Bob.StepsPerSec = 50.0;
    Opts.Tenants = {Alice, Bob};
  }

  auto Gw = gateway::Gateway::serve(std::move(Opts));
  if (!Gw.isOk()) {
    std::fprintf(stderr, "serve failed: %s\n",
                 Gw.status().toString().c_str());
    return 1;
  }
  std::printf("gateway listening on %s (%zu shards)\n",
              (*Gw)->boundAddress().str().c_str(), (*Gw)->numShards());
  std::printf("tenant tokens: alice (weight 3), bob (50 steps/s)\n");
  std::printf("try: example_remote_client %s alice\n",
              (*Gw)->boundAddress().str().c_str());

  std::signal(SIGINT, onInterrupt);
  std::signal(SIGTERM, onInterrupt);
  while (!Interrupted)
    ::pause(); // Signal handlers break the sleep.

  std::printf("\nshutting down: %zu live session(s) drained\n",
              (*Gw)->sessionCount());
  return 0;
}
