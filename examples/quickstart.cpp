//===- examples/quickstart.cpp - The Listing 1 interaction loop -*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Listing 1, in C++: create an LLVM phase-ordering
/// environment on cbench/qsort with Autophase observations and
/// instruction-count rewards, take random actions, print progress, and
/// save the optimized program to disk.
///
/// Usage: quickstart [benchmark-uri] [num-steps]
///
//===----------------------------------------------------------------------===//

#include "core/Registry.h"
#include "util/Rng.h"

#include <cstdio>
#include <cstdlib>

using namespace compiler_gym;

int main(int argc, char **argv) {
  const std::string Benchmark =
      argc > 1 ? argv[1] : "benchmark://cbench-v1/qsort";
  const int Steps = argc > 2 ? std::atoi(argv[2]) : 100;

  // Create a new environment, selecting the compiler to use, the program
  // to compile, the observation space, and the optimization target.
  core::MakeOptions Opts;
  Opts.Benchmark = Benchmark;
  Opts.ObservationSpace = "Autophase";
  Opts.RewardSpace = "IrInstructionCount";
  auto Env = core::make("llvm-v0", Opts);
  if (!Env.isOk()) {
    std::fprintf(stderr, "error: %s\n", Env.status().toString().c_str());
    return 1;
  }

  // Start a new compilation session.
  auto Observation = (*Env)->reset();
  if (!Observation.isOk()) {
    std::fprintf(stderr, "reset failed: %s\n",
                 Observation.status().toString().c_str());
    return 1;
  }
  std::printf("benchmark:    %s\n", Benchmark.c_str());
  std::printf("action space: %zu passes\n", (*Env)->actionSpace().size());
  std::printf("observation:  %zu-dimensional Autophase vector\n",
              Observation->Ints.size());

  // Run random optimizations. Each step produces a new observation and a
  // reward (the change in IR instruction count).
  Rng Gen(0xC0DE);
  double Cumulative = 0.0;
  for (int I = 0; I < Steps; ++I) {
    int Action = static_cast<int>(Gen.bounded((*Env)->actionSpace().size()));
    auto Result = (*Env)->step(Action);
    if (!Result.isOk()) {
      std::fprintf(stderr, "step failed: %s\n",
                   Result.status().toString().c_str());
      return 1;
    }
    Cumulative += Result->Reward;
    if (Result->Reward != 0.0)
      std::printf("step %3d: %-24s reward %+6.0f (cumulative %+.0f)\n", I,
                  (*Env)->actionSpace().ActionNames[Action].c_str(),
                  Result->Reward, Cumulative);
    if (Result->Done) {
      if (!(*Env)->reset().isOk())
        return 1;
    }
  }

  // Save the optimized program.
  const char *OutPath = "/tmp/quickstart_output.ir";
  if (Status S = (*Env)->writeIr(OutPath); !S.isOk()) {
    std::fprintf(stderr, "writeIr failed: %s\n", S.toString().c_str());
    return 1;
  }
  std::printf("\ntotal instruction-count reduction: %.0f\n", Cumulative);
  std::printf("optimized program written to %s\n", OutPath);
  return 0;
}
