//===- tests/analysis_test.cpp - Observation space tests -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "analysis/Autophase.h"
#include "analysis/InstCount.h"
#include "analysis/Inst2vec.h"
#include "analysis/ProGraML.h"
#include "analysis/Rewards.h"
#include "datasets/CsmithGenerator.h"
#include "datasets/CuratedSuites.h"
#include "ir/Parser.h"
#include "passes/PassManager.h"

#include <gtest/gtest.h>

using namespace compiler_gym;
using namespace compiler_gym::analysis;
using namespace compiler_gym::ir;

namespace {

std::unique_ptr<Module> smallModule() {
  auto M = parseModule(R"(module "t"
global @g = words 4
func @main(i64 %n) -> i64 {
entry:
  %c = icmp i1 gt i64 %n, i64 0
  condbr i1 %c, label %a, label %b
a:
  %x = mul i64 i64 %n, i64 2
  store i64 %x, ptr @g
  br label %b
b:
  %r = phi i64 [ %x, %a ], [ 0, %entry ]
  ret i64 %r
}
)");
  EXPECT_TRUE(M.isOk());
  return M.takeValue();
}

TEST(InstCount, HasSeventyDimsWithDocumentedLayout) {
  auto M = smallModule();
  std::vector<int64_t> V = instCount(*M);
  ASSERT_EQ(V.size(), 70u);
  EXPECT_EQ(V[0], 7); // Total instructions.
  EXPECT_EQ(V[1], 3); // Blocks.
  EXPECT_EQ(V[2], 1); // Functions.
  EXPECT_EQ(V[3 + static_cast<int>(Opcode::Mul)], 1);
  EXPECT_EQ(V[3 + static_cast<int>(Opcode::Phi)], 1);
  EXPECT_EQ(V[3 + static_cast<int>(Opcode::Store)], 1);
  EXPECT_EQ(V[45], 1); // Globals.
  EXPECT_EQ(V[47], 2); // Phi incoming arcs.
}

TEST(InstCount, PerFunctionDecompositionMatchesWholeModule) {
  // The incremental observation path aggregates per-function vectors; the
  // decomposition must reproduce the whole-module scan exactly, including
  // the max-aggregated block-size dim and the module-level counts.
  for (uint64_t Seed : {1ull, 17ull, 42ull}) {
    datasets::ProgramStyle Style = datasets::styleForDataset(
        Seed % 2 ? "benchmark://csmith-v0" : "benchmark://npb-v0");
    auto M = datasets::generateProgram(Seed, Style, "m");
    std::vector<int64_t> Agg(InstCountDims, 0);
    for (const auto &F : M->functions())
      accumulateInstCount(Agg, instCountFunction(*F));
    finalizeInstCount(Agg, *M);
    EXPECT_EQ(Agg, instCount(*M)) << "seed " << Seed;
  }
}

TEST(Autophase, PerFunctionDecompositionMatchesWholeModule) {
  for (uint64_t Seed : {2ull, 19ull, 44ull}) {
    datasets::ProgramStyle Style = datasets::styleForDataset(
        Seed % 2 ? "benchmark://csmith-v0" : "benchmark://npb-v0");
    auto M = datasets::generateProgram(Seed, Style, "m");
    std::vector<int64_t> Agg(AutophaseDims, 0);
    for (const auto &F : M->functions())
      accumulateAutophase(Agg, autophaseFunction(*F));
    finalizeAutophase(Agg, *M);
    EXPECT_EQ(Agg, autophase(*M)) << "seed " << Seed;
  }
}

TEST(InstCount, RespondsToOptimization) {
  datasets::ProgramStyle Style =
      datasets::styleForDataset("benchmark://csmith-v0");
  auto M = datasets::generateProgram(3, Style, "m");
  std::vector<int64_t> Before = instCount(*M);
  ASSERT_TRUE(passes::runPass(*M, "mem2reg").isOk());
  std::vector<int64_t> After = instCount(*M);
  EXPECT_LT(After[0], Before[0]);
  EXPECT_LT(After[3 + static_cast<int>(Opcode::Alloca)],
            Before[3 + static_cast<int>(Opcode::Alloca)]);
}

TEST(Autophase, HasFiftySixNamedDims) {
  auto M = smallModule();
  std::vector<int64_t> V = autophase(*M);
  ASSERT_EQ(V.size(), 56u);
  for (int I = 0; I < AutophaseDims; ++I)
    EXPECT_STRNE(autophaseFeatureName(I), "?");
  EXPECT_STREQ(autophaseFeatureName(0), "bb_count");
  EXPECT_STREQ(autophaseFeatureName(-1), "?");
  EXPECT_STREQ(autophaseFeatureName(56), "?");
  EXPECT_EQ(V[0], 3);  // bb_count.
}

TEST(Autophase, CfgFeaturesMatchStructure) {
  auto M = smallModule();
  std::vector<int64_t> V = autophase(*M);
  // One two-successor block (entry), one one-succ (a), one no-succ (b).
  EXPECT_EQ(V[2], 1); // bb_two_succ.
  EXPECT_EQ(V[1], 1); // bb_one_succ.
  EXPECT_EQ(V[6], 1); // bb_no_succ.
  EXPECT_EQ(V[16], 1); // cond_branches.
  EXPECT_EQ(V[15], 1); // branches.
  EXPECT_EQ(V[17], 1); // phi_count.
  EXPECT_EQ(V[18], 2); // phi_arg_count.
}

TEST(Autophase, DistinguishesDatasetStyles) {
  // Feature distributions must differ across dataset styles (this is what
  // makes Tables VI/VII meaningful).
  int64_t BlasFloatOps = 0, LinuxFloatOps = 0;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    auto Loopy = datasets::generateProgram(
        Seed, datasets::styleForDataset("benchmark://blas-v0"), "a");
    auto Branchy = datasets::generateProgram(
        Seed, datasets::styleForDataset("benchmark://linux-v0"), "b");
    BlasFloatOps += autophase(*Loopy)[31];   // float_binop_count.
    LinuxFloatOps += autophase(*Branchy)[31];
  }
  // blas: float-heavy; linux: no floats at all.
  EXPECT_GT(BlasFloatOps, 0);
  EXPECT_EQ(LinuxFloatOps, 0);
}

TEST(Inst2vec, EmitsOneEmbeddingPerInstruction) {
  auto M = smallModule();
  std::vector<float> E = inst2vec(*M);
  EXPECT_EQ(E.size(), M->instructionCount() * Inst2vecDims);
}

TEST(Inst2vec, DeterministicAndStatementSensitive) {
  auto M = smallModule();
  EXPECT_EQ(inst2vec(*M), inst2vec(*M));
  const Instruction *Mul = nullptr, *Store = nullptr;
  M->findFunction("main")->forEachInstruction(
      [&](BasicBlock &, Instruction &I) {
        if (I.opcode() == Opcode::Mul)
          Mul = &I;
        if (I.opcode() == Opcode::Store)
          Store = &I;
      });
  ASSERT_NE(Mul, nullptr);
  ASSERT_NE(Store, nullptr);
  EXPECT_NE(inst2vecStatement(*Mul), inst2vecStatement(*Store));
}

TEST(Inst2vec, AbstractsIdentifiers) {
  // Two adds of different locals embed identically (identifier-abstracted),
  // while add-of-constant differs.
  auto M = parseModule(R"(module "t"
func @main(i64 %a, i64 %b) -> i64 {
entry:
  %x = add i64 i64 %a, i64 %b
  %y = add i64 i64 %b, i64 %x
  %z = add i64 i64 %a, i64 5
  ret i64 %z
}
)");
  ASSERT_TRUE(M.isOk());
  std::vector<const Instruction *> Adds;
  (*M)->findFunction("main")->forEachInstruction(
      [&](BasicBlock &, Instruction &I) {
        if (I.opcode() == Opcode::Add)
          Adds.push_back(&I);
      });
  ASSERT_EQ(Adds.size(), 3u);
  EXPECT_EQ(inst2vecStatement(*Adds[0]), inst2vecStatement(*Adds[1]));
  EXPECT_NE(inst2vecStatement(*Adds[0]), inst2vecStatement(*Adds[2]));
}

TEST(ProGraML, GraphStructureMatchesProgram) {
  auto M = smallModule();
  ProgramGraph G = buildProgramGraph(*M);
  // Nodes: 1 function + 1 global + 1 arg + 7 instructions + constants.
  size_t InstNodes = 0, DataEdges = 0, ControlEdges = 0, CallEdges = 0;
  for (const auto &N : G.Nodes)
    InstNodes += N.Kind == ProgramGraph::NodeKind::Instruction;
  for (const auto &E : G.Edges) {
    DataEdges += E.Flow == ProgramGraph::EdgeFlow::Data;
    ControlEdges += E.Flow == ProgramGraph::EdgeFlow::Control;
    CallEdges += E.Flow == ProgramGraph::EdgeFlow::Call;
  }
  EXPECT_EQ(InstNodes, M->instructionCount());
  EXPECT_GT(DataEdges, 0u);
  EXPECT_GT(ControlEdges, 0u);
  EXPECT_EQ(CallEdges, 1u); // Function -> entry.
  // Edge endpoints are in range.
  for (const auto &E : G.Edges) {
    EXPECT_GE(E.Source, 0);
    EXPECT_LT(static_cast<size_t>(E.Source), G.numNodes());
    EXPECT_LT(static_cast<size_t>(E.Target), G.numNodes());
  }
}

TEST(ProGraML, SerializationRoundTrips) {
  auto M = smallModule();
  ProgramGraph G = buildProgramGraph(*M);
  std::string Bytes = serializeGraph(G);
  ProgramGraph Out;
  ASSERT_TRUE(deserializeGraph(Bytes, Out));
  ASSERT_EQ(Out.numNodes(), G.numNodes());
  ASSERT_EQ(Out.numEdges(), G.numEdges());
  for (size_t I = 0; I < G.numNodes(); ++I) {
    EXPECT_EQ(Out.Nodes[I].Kind, G.Nodes[I].Kind);
    EXPECT_EQ(Out.Nodes[I].Text, G.Nodes[I].Text);
  }
}

TEST(ProGraML, DeserializeRejectsGarbage) {
  ProgramGraph Out;
  EXPECT_FALSE(deserializeGraph("", Out));
  EXPECT_FALSE(deserializeGraph("abc", Out));
  std::string Huge(8, '\xFF');
  EXPECT_FALSE(deserializeGraph(Huge, Out));
}

TEST(ProGraML, FragmentAssemblyMatchesWholeModuleBuild) {
  // The incremental path — per-function fragments assembled into the v2
  // encoding — must deserialize to a graph bit-identical to the reference
  // whole-module builder, across generated programs of every style.
  for (uint64_t Seed : {3ull, 19ull, 54ull}) {
    for (const char *Dataset :
         {"benchmark://csmith-v0", "benchmark://blas-v0",
          "benchmark://linux-v0", "benchmark://npb-v0"}) {
      auto M = datasets::generateProgram(
          Seed, datasets::styleForDataset(Dataset), "m");
      ASSERT_NE(M, nullptr);
      std::vector<GraphFragment> Frags;
      std::vector<const GraphFragment *> Ptrs;
      for (const auto &F : M->functions())
        Frags.push_back(buildGraphFragment(*F));
      for (const auto &Frag : Frags)
        Ptrs.push_back(&Frag);
      ProgramGraph FromFrags;
      ASSERT_TRUE(
          deserializeGraph(assembleGraphFragments(*M, Ptrs), FromFrags))
          << Dataset << " seed " << Seed;
      EXPECT_TRUE(FromFrags == buildProgramGraph(*M))
          << "fragment assembly diverged for " << Dataset << " seed " << Seed;
    }
  }
}

TEST(ProGraML, V2EncodingRejectsTruncation) {
  auto M = smallModule();
  std::vector<GraphFragment> Frags;
  std::vector<const GraphFragment *> Ptrs;
  for (const auto &F : M->functions())
    Frags.push_back(buildGraphFragment(*F));
  for (const auto &Frag : Frags)
    Ptrs.push_back(&Frag);
  std::string Bytes = assembleGraphFragments(*M, Ptrs);
  ProgramGraph Out;
  ASSERT_TRUE(deserializeGraph(Bytes, Out));
  for (size_t Len = 0; Len < Bytes.size(); Len += 3)
    EXPECT_FALSE(deserializeGraph(Bytes.substr(0, Len), Out))
        << "truncation to " << Len << " bytes accepted";
  // Trailing garbage is rejected too.
  EXPECT_FALSE(deserializeGraph(Bytes + "x", Out));
}

namespace {

/// Mutates exactly \p F: deletes one dead side-effect-free instruction if
/// it has one, otherwise inserts a dead add before the entry terminator.
/// Returns false only for functions with no entry block.
bool mutateOneFunction(Module &M, Function &F) {
  for (const auto &BB : F.blocks()) {
    for (size_t I = 0; I < BB->size(); ++I) {
      Instruction *Inst = BB->instructions()[I].get();
      if (Inst->isTerminator() || F.hasUses(Inst) || Inst->hasSideEffects())
        continue;
      BB->erase(I);
      return true;
    }
  }
  BasicBlock *Entry = F.entry();
  if (!Entry || Entry->empty())
    return false;
  auto Dead = std::make_unique<Instruction>(
      Opcode::Add, Type::I64,
      std::vector<Value *>{M.getConstInt(Type::I64, 1),
                           M.getConstInt(Type::I64, 2)});
  Dead->setName("dead");
  Entry->insert(Entry->size() - 1, std::move(Dead));
  return true;
}

} // namespace

TEST(FeatureCacheIncremental, Inst2vecMatchesAndRecomputesOnlyDirty) {
  datasets::ProgramStyle Style =
      datasets::styleForDataset("benchmark://csmith-v0");
  Style.MinFunctions = 6;
  Style.MaxFunctions = 8;
  auto M = datasets::generateProgram(7, Style, "m");
  ASSERT_NE(M, nullptr);
  ASSERT_GE(M->functions().size(), 2u);

  FeatureCache Cache;
  EXPECT_EQ(Cache.inst2vec(*M), inst2vec(*M));
  uint64_t AfterCold = Cache.functionRecomputes();
  EXPECT_EQ(AfterCold, M->functions().size());

  // Unchanged module: pure cache hit.
  EXPECT_EQ(Cache.inst2vec(*M), inst2vec(*M));
  EXPECT_EQ(Cache.functionRecomputes(), AfterCold);

  // Mutate exactly one function: one segment recompute, bit-identical
  // result (the aggregate is spliced in place, not re-concatenated).
  Function *Dirty = M->functions().front().get();
  ASSERT_TRUE(mutateOneFunction(*M, *Dirty));
  Cache.invalidateFunction(Dirty);
  EXPECT_EQ(Cache.inst2vec(*M), inst2vec(*M));
  EXPECT_EQ(Cache.functionRecomputes(), AfterCold + 1);

  // The last function's segment is the splice tail edge case (its old
  // window ends at the already-shifted vector end).
  Function *Last = M->functions().back().get();
  ASSERT_TRUE(mutateOneFunction(*M, *Last));
  Cache.invalidateFunction(Last);
  EXPECT_EQ(Cache.inst2vec(*M), inst2vec(*M));

  // And two dirty functions at once, with length changes.
  ASSERT_TRUE(mutateOneFunction(*M, *Dirty));
  ASSERT_TRUE(mutateOneFunction(*M, *Last));
  Cache.invalidateFunction(Dirty);
  Cache.invalidateFunction(Last);
  EXPECT_EQ(Cache.inst2vec(*M), inst2vec(*M));
}

TEST(FeatureCacheIncremental, ProgramlMatchesAndRecomputesOnlyDirty) {
  datasets::ProgramStyle Style =
      datasets::styleForDataset("benchmark://npb-v0");
  Style.MinFunctions = 6;
  Style.MaxFunctions = 8;
  auto M = datasets::generateProgram(11, Style, "m");
  ASSERT_NE(M, nullptr);
  ASSERT_GE(M->functions().size(), 2u);

  FeatureCache Cache;
  auto expectMatchesReference = [&] {
    ProgramGraph FromCache;
    ASSERT_TRUE(deserializeGraph(Cache.programl(*M), FromCache));
    EXPECT_TRUE(FromCache == buildProgramGraph(*M));
  };
  expectMatchesReference();
  uint64_t AfterCold = Cache.functionRecomputes();
  EXPECT_EQ(AfterCold, M->functions().size());

  (void)Cache.programl(*M);
  EXPECT_EQ(Cache.functionRecomputes(), AfterCold);

  Function *Dirty = M->functions().back().get();
  ASSERT_TRUE(mutateOneFunction(*M, *Dirty));
  Cache.invalidateFunction(Dirty);
  expectMatchesReference();
  EXPECT_EQ(Cache.functionRecomputes(), AfterCold + 1);

  // One-function edits keep every other function's serialized region
  // byte-identical: each clean fragment's bytes must appear verbatim in
  // the re-assembled encoding (the stability wire deltas rely on).
  const std::string &After = Cache.programl(*M);
  for (const auto &F : M->functions()) {
    if (F.get() == Dirty)
      continue;
    const GraphFragment *Frag = Cache.cachedGraphFragment(F.get());
    ASSERT_NE(Frag, nullptr);
    EXPECT_NE(After.find(Frag->Bytes), std::string::npos)
        << "clean fragment of '" << F->name() << "' was rewritten";
  }
}

TEST(FeatureCacheIncremental, ProgramlSelfHealsOnErasedFunction) {
  auto M = parseModule(R"(module "t"
func @callee(i64 %x) -> i64 {
entry:
  %r = add i64 i64 %x, i64 1
  ret i64 %r
}
func @main(i64 %n) -> i64 {
entry:
  %r = add i64 i64 %n, i64 2
  ret i64 %r
}
)");
  ASSERT_TRUE(M.isOk());
  FeatureCache Cache;
  (void)Cache.programl(**M);
  // Erase the (uncalled) callee without notifying the cache: aggregation
  // must reconcile and still match the reference builder.
  (*M)->eraseFunction((*M)->findFunction("callee"));
  ProgramGraph FromCache;
  ASSERT_TRUE(deserializeGraph(Cache.programl(**M), FromCache));
  EXPECT_TRUE(FromCache == buildProgramGraph(**M));
}

TEST(Rewards, CodeAndBinarySizeShrinkUnderOptimization) {
  datasets::ProgramStyle Style =
      datasets::styleForDataset("benchmark://csmith-v0");
  auto M = datasets::generateProgram(17, Style, "m");
  int64_t Code = codeSize(*M);
  int64_t Binary = binarySize(*M);
  EXPECT_GT(Code, 0);
  EXPECT_GT(Binary, Code); // Bytes > instruction count for our targets.
  ASSERT_TRUE(passes::runPass(*M, "mem2reg").isOk());
  EXPECT_LT(codeSize(*M), Code);
  EXPECT_LT(binarySize(*M), Binary);
}

TEST(Rewards, RuntimeIsNoisyButCentered) {
  datasets::ProgramStyle Style =
      datasets::styleForDataset("benchmark://csmith-v0");
  auto M = datasets::generateProgram(23, Style, "m");
  Rng Gen(7);
  RuntimeOptions Opts;
  Opts.Interp.Args = {2};
  std::vector<double> Samples;
  for (int I = 0; I < 20; ++I) {
    auto R = measureRuntime(*M, Gen, Opts);
    ASSERT_TRUE(R.isOk());
    Samples.push_back(*R);
  }
  // Nondeterministic (spread > 0) but within noise bounds (~2%).
  double Lo = *std::min_element(Samples.begin(), Samples.end());
  double Hi = *std::max_element(Samples.begin(), Samples.end());
  EXPECT_GT(Hi, Lo);
  EXPECT_LT((Hi - Lo) / Lo, 0.30);
}

TEST(Rewards, ValidateSemanticsDetectsMiscompiles) {
  auto Ref = smallModule();
  auto Ok = Ref->clone();
  EXPECT_TRUE(validateSemantics(*Ref, *Ok).Ok);

  // "Miscompile": change the multiplier constant.
  auto Bad = Ref->clone();
  Function *F = Bad->findFunction("main");
  BasicBlock *A = F->findBlock("a");
  ASSERT_NE(A, nullptr);
  Instruction *Mul = A->front();
  ASSERT_EQ(Mul->opcode(), Opcode::Mul);
  Mul->setOperand(1, Bad->getConstInt(Type::I64, 3));
  InterpreterOptions IOpts;
  IOpts.Args = {5};
  ValidationResult V = validateSemantics(*Ref, *Bad, IOpts);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("divergence"), std::string::npos);
}

TEST(Rewards, ValidateSemanticsDetectsIntroducedTraps) {
  auto Ref = parseModule(R"(module "t"
func @main() -> i64 {
entry:
  ret i64 1
}
)");
  auto Bad = parseModule(R"(module "t"
func @main() -> i64 {
entry:
  %d = sdiv i64 i64 1, i64 0
  ret i64 %d
}
)");
  ASSERT_TRUE(Ref.isOk());
  ASSERT_TRUE(Bad.isOk());
  ValidationResult V = validateSemantics(**Ref, **Bad);
  EXPECT_FALSE(V.Ok);
  EXPECT_NE(V.Error.find("trapped"), std::string::npos);
}

TEST(Lowering, AssemblyAndObjectEmission) {
  auto M = smallModule();
  LoweredModule L = lowerModule(*M, TargetDescriptor(), /*EmitText=*/true);
  EXPECT_GT(L.TextSizeBytes, 0u);
  EXPECT_EQ(L.DataSizeBytes, 4u * 8u);
  EXPECT_FALSE(L.Assembly.empty());
  EXPECT_NE(L.Assembly.find("main:"), std::string::npos);
  EXPECT_FALSE(L.ObjectBytes.empty());
  // Text size is the sum of per-instruction sizes plus prologue/epilogue:
  // the object byte stream encodes exactly the instruction bytes.
  TargetDescriptor T;
  EXPECT_EQ(L.ObjectBytes.size() + T.FunctionPrologueBytes +
                T.FunctionEpilogueBytes,
            L.TextSizeBytes);
}

TEST(Lowering, TargetDescriptorChangesSizes) {
  auto M = smallModule();
  TargetDescriptor Fat;
  Fat.AluOpBytes = 8;
  Fat.MemOpBytes = 12;
  EXPECT_GT(lowerModule(*M, Fat).TextSizeBytes,
            lowerModule(*M).TextSizeBytes);
}

} // namespace
