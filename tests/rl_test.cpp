//===- tests/rl_test.cpp - RL substrate and agent tests --------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "rl/A2c.h"
#include "rl/Dqn.h"
#include "rl/Distributions.h"
#include "rl/Ggnn.h"
#include "rl/Impala.h"
#include "rl/Nn.h"
#include "rl/Ppo.h"
#include "rl/QLearning.h"
#include "rl/ReplayBuffer.h"
#include "rl/Rollout.h"

#include <gtest/gtest.h>

#include <cmath>

using namespace compiler_gym;
using namespace compiler_gym::rl;

namespace {

// -- Matrix / NN substrate -----------------------------------------------------

TEST(Matrix, MatmulMatchesHandComputation) {
  Matrix A(2, 3);
  Matrix B(3, 2);
  float AVals[] = {1, 2, 3, 4, 5, 6};
  float BVals[] = {7, 8, 9, 10, 11, 12};
  std::copy(std::begin(AVals), std::end(AVals), A.data().begin());
  std::copy(std::begin(BVals), std::end(BVals), B.data().begin());
  Matrix C = matmul(A, B);
  EXPECT_FLOAT_EQ(C.at(0, 0), 58);
  EXPECT_FLOAT_EQ(C.at(0, 1), 64);
  EXPECT_FLOAT_EQ(C.at(1, 0), 139);
  EXPECT_FLOAT_EQ(C.at(1, 1), 154);
}

TEST(Matrix, TransposedVariantsAgree) {
  Rng Gen(1);
  Matrix A = Matrix::xavier(4, 3, Gen);
  Matrix B = Matrix::xavier(4, 5, Gen);
  // matmulTransA(A, B) == A^T B.
  Matrix At(3, 4);
  for (size_t I = 0; I < 4; ++I)
    for (size_t J = 0; J < 3; ++J)
      At.at(J, I) = A.at(I, J);
  Matrix Want = matmul(At, B);
  Matrix Got = matmulTransA(A, B);
  ASSERT_EQ(Got.rows(), Want.rows());
  for (size_t I = 0; I < Want.data().size(); ++I)
    EXPECT_NEAR(Got.data()[I], Want.data()[I], 1e-5);
}

TEST(Mlp, GradientMatchesFiniteDifferences) {
  Mlp Net({3, 5, 2}, Activation::Tanh, /*Seed=*/7);
  Matrix X(2, 3);
  Rng Gen(3);
  for (float &V : X.data())
    V = static_cast<float>(Gen.uniform(-1, 1));

  // Loss = sum of outputs; dLoss/dY = 1.
  auto loss = [&](Mlp &Network) {
    Matrix Y = Network.forward(X);
    double L = 0;
    for (float V : Y.data())
      L += V;
    return L;
  };

  Matrix Y = Net.forward(X);
  Matrix dY(Y.rows(), Y.cols(), 1.0f);
  Net.backward(dY);

  std::vector<Param *> Params = Net.params();
  const float Eps = 1e-3f;
  int Checked = 0;
  for (Param *P : Params) {
    for (size_t I = 0; I < std::min<size_t>(4, P->Value.data().size()); ++I) {
      float Saved = P->Value.data()[I];
      P->Value.data()[I] = Saved + Eps;
      double Up = loss(Net);
      P->Value.data()[I] = Saved - Eps;
      double Down = loss(Net);
      P->Value.data()[I] = Saved;
      double Numeric = (Up - Down) / (2 * Eps);
      EXPECT_NEAR(P->Grad.data()[I], Numeric, 5e-2)
          << "param element " << I;
      ++Checked;
    }
  }
  EXPECT_GT(Checked, 8);
}

TEST(Adam, FitsLinearRegression) {
  // y = 2x - 1 learned by a linear model.
  Mlp Net({1, 1}, Activation::None, 11);
  AdamOptimizer Opt(0.05);
  Rng Gen(5);
  for (int Step = 0; Step < 500; ++Step) {
    Matrix X(8, 1);
    Matrix Target(8, 1);
    for (size_t I = 0; I < 8; ++I) {
      float XV = static_cast<float>(Gen.uniform(-2, 2));
      X.at(I, 0) = XV;
      Target.at(I, 0) = 2.0f * XV - 1.0f;
    }
    Matrix Y = Net.forward(X);
    Matrix dY(8, 1);
    for (size_t I = 0; I < 8; ++I)
      dY.at(I, 0) = 2.0f * (Y.at(I, 0) - Target.at(I, 0)) / 8.0f;
    Net.backward(dY);
    auto Params = Net.params();
    Opt.step(Params);
  }
  std::vector<float> Pred = Net.forward1({1.5f});
  EXPECT_NEAR(Pred[0], 2.0f * 1.5f - 1.0f, 0.05f);
}

TEST(Distributions, SoftmaxLogProbEntropy) {
  std::vector<float> Logits = {1.0f, 2.0f, 3.0f};
  std::vector<double> P = softmax(Logits);
  EXPECT_NEAR(P[0] + P[1] + P[2], 1.0, 1e-9);
  EXPECT_GT(P[2], P[1]);
  EXPECT_NEAR(logProb(Logits, 2), std::log(P[2]), 1e-9);
  // Uniform logits: entropy = ln(3).
  EXPECT_NEAR(entropy({0.f, 0.f, 0.f}), std::log(3.0), 1e-9);
  EXPECT_LT(entropy(Logits), std::log(3.0));
  EXPECT_EQ(argmax(Logits), 2);
}

TEST(Distributions, SamplingFollowsProbabilities) {
  std::vector<float> Logits = {0.0f, 2.0f};
  Rng Gen(17);
  int Count1 = 0;
  for (int I = 0; I < 2000; ++I)
    Count1 += sampleCategorical(Logits, Gen) == 1;
  double Frac = Count1 / 2000.0;
  EXPECT_NEAR(Frac, softmax(Logits)[1], 0.05);
}

TEST(Rollout, ReturnsAndGae) {
  std::vector<double> Rewards = {1.0, 0.0, 2.0};
  std::vector<double> Returns = discountedReturns(Rewards, 0.5);
  EXPECT_DOUBLE_EQ(Returns[2], 2.0);
  EXPECT_DOUBLE_EQ(Returns[1], 1.0);
  EXPECT_DOUBLE_EQ(Returns[0], 1.5);

  // With lambda = 1 and V = 0, GAE equals the discounted returns.
  std::vector<double> Values = {0.0, 0.0, 0.0};
  std::vector<double> Adv = gaeAdvantages(Rewards, Values, 0.5, 1.0);
  for (size_t I = 0; I < 3; ++I)
    EXPECT_NEAR(Adv[I], Returns[I], 1e-12);
}

TEST(ReplayBuffer, EvictsAndPrioritizes) {
  PrioritizedReplayBuffer Buf(4);
  for (int I = 0; I < 6; ++I) {
    Transition T;
    T.Action = I;
    Buf.add(T, I == 5 ? 100.0 : 0.01);
  }
  EXPECT_EQ(Buf.size(), 4u);
  Rng Gen(1);
  auto S = Buf.sample(64, Gen);
  int HighPriorityHits = 0;
  for (size_t Index : S.Indices)
    HighPriorityHits += Buf.at(Index).Action == 5;
  EXPECT_GT(HighPriorityHits, 32); // Dominates sampling.
  for (double W : S.Weights) {
    EXPECT_GT(W, 0.0);
    EXPECT_LE(W, 1.0);
  }
}

// -- A contextual-bandit toy env for agent learning tests ----------------------

/// Observation is a one-hot context; the rewarding action equals the
/// context index. Episode length 4.
class BanditEnv : public core::Env {
public:
  using Env::step;

  explicit BanditEnv(int NumContexts)
      : NumContexts(NumContexts), Gen(123) {
    Space.Name = "bandit";
    for (int I = 0; I < NumContexts; ++I)
      Space.ActionNames.push_back("arm" + std::to_string(I));
  }

  StatusOr<service::Observation> reset() override {
    Steps = 0;
    Context = static_cast<int>(Gen.bounded(NumContexts));
    TotalReward = 0;
    ++Epoch; // Monotonic across resets (Env::stateEpoch contract).
    return makeObservation();
  }

  StatusOr<core::StepResult> step(const std::vector<int> &Actions) override {
    core::StepResult R;
    for (int A : Actions) {
      R.Reward += A == Context ? 1.0 : 0.0;
      ++Steps;
    }
    TotalReward += R.Reward;
    Context = static_cast<int>(Gen.bounded(NumContexts));
    ++Epoch;
    R.Obs = *makeObservation();
    R.Done = Steps >= 4;
    return R;
  }

  const service::ActionSpace &actionSpace() const override { return Space; }
  size_t episodeLength() const override { return Steps; }
  double episodeReward() const override { return TotalReward; }
  uint64_t stateEpoch() const override { return Epoch; }
  StatusOr<std::vector<service::Observation>>
  rawObservations(const std::vector<std::string> &Spaces) override {
    std::vector<service::Observation> Out;
    for (size_t I = 0; I < Spaces.size(); ++I)
      Out.push_back(*makeObservation());
    return Out;
  }

private:
  StatusOr<service::Observation> makeObservation() {
    service::Observation Obs;
    Obs.Type = service::ObservationType::Int64List;
    Obs.Ints.assign(NumContexts, 0);
    Obs.Ints[Context] = 10; // Squashing keeps this well-scaled.
    return Obs;
  }

  int NumContexts;
  service::ActionSpace Space;
  Rng Gen;
  int Context = 0;
  size_t Steps = 0;
  uint64_t Epoch = 0;
  double TotalReward = 0;
};

template <typename AgentT> double banditScore(AgentT &Agent, int Contexts) {
  BanditEnv Train(Contexts);
  EXPECT_TRUE(Agent.train(Train, 400).isOk());
  // Greedy evaluation over all contexts.
  int Correct = 0;
  for (int C = 0; C < Contexts; ++C) {
    std::vector<int64_t> Raw(Contexts, 0);
    Raw[C] = 10;
    std::vector<float> Obs = squashObservation(Raw);
    Correct += Agent.act(Obs) == C;
  }
  return static_cast<double>(Correct) / Contexts;
}

TEST(Agents, PpoSolvesContextualBandit) {
  PpoConfig Config;
  Config.ObsDim = 4;
  Config.NumActions = 4;
  Config.MaxEpisodeSteps = 4;
  Config.EntropyCoef = 0.005;
  PpoAgent Agent(Config);
  EXPECT_EQ(Agent.name(), "PPO");
  EXPECT_GE(banditScore(Agent, 4), 0.75);
}

TEST(Agents, A2cSolvesContextualBandit) {
  A2cConfig Config;
  Config.ObsDim = 4;
  Config.NumActions = 4;
  Config.MaxEpisodeSteps = 4;
  A2cAgent Agent(Config);
  EXPECT_GE(banditScore(Agent, 4), 0.75);
}

TEST(Agents, DqnSolvesContextualBandit) {
  DqnConfig Config;
  Config.ObsDim = 4;
  Config.NumActions = 4;
  Config.MaxEpisodeSteps = 4;
  Config.WarmupSteps = 64;
  Config.EpsilonDecaySteps = 800;
  DqnAgent Agent(Config);
  EXPECT_GE(banditScore(Agent, 4), 0.75);
}

TEST(Agents, ImpalaSolvesContextualBandit) {
  ImpalaConfig Config;
  Config.ObsDim = 4;
  Config.NumActions = 4;
  Config.MaxEpisodeSteps = 4;
  ImpalaAgent Agent(Config);
  EXPECT_GE(banditScore(Agent, 4), 0.75);
}

TEST(Agents, QLearningSolvesContextualBandit) {
  QLearningConfig Config;
  Config.NumActions = 4;
  Config.MaxEpisodeSteps = 4;
  QLearningAgent Agent(Config);
  EXPECT_GE(banditScore(Agent, 4), 0.75);
  EXPECT_GT(Agent.tableSize(), 0u);
}

TEST(Agents, EvaluateEpisodeUsesGreedyPolicy) {
  BanditEnv E(3);
  QLearningConfig Config;
  Config.NumActions = 3;
  Config.MaxEpisodeSteps = 4;
  QLearningAgent Agent(Config);
  ASSERT_TRUE(Agent.train(E, 300).isOk());
  auto Score = evaluateEpisode(E, Agent, 4);
  ASSERT_TRUE(Score.isOk());
  EXPECT_GE(*Score, 2.0); // At least half the 4 steps correct.
}

// -- GGNN --------------------------------------------------------------------------

analysis::ProgramGraph chainGraph(int NumNodes) {
  analysis::ProgramGraph G;
  for (int I = 0; I < NumNodes; ++I)
    G.Nodes.push_back({analysis::ProgramGraph::NodeKind::Instruction, "add",
                       I % 5});
  for (int I = 0; I + 1 < NumNodes; ++I)
    G.Edges.push_back({I, I + 1, analysis::ProgramGraph::EdgeFlow::Control,
                       0});
  return G;
}

TEST(Ggnn, LearnsToCountNodes) {
  // Target = node count: learnable from mean-pooled states iff message
  // passing carries size information; a strong smoke test for the
  // gradient flow.
  GgnnConfig Config;
  Config.Hidden = 16;
  Config.LearningRate = 5e-3;
  GgnnRegressor Net(Config);

  std::vector<analysis::ProgramGraph> Graphs;
  std::vector<double> Targets;
  Rng Gen(3);
  for (int I = 0; I < 40; ++I) {
    int N = 3 + static_cast<int>(Gen.bounded(40));
    Graphs.push_back(chainGraph(N));
    Targets.push_back(N);
  }
  double Mean = 0, Var = 0;
  for (double T : Targets)
    Mean += T;
  Mean /= Targets.size();
  for (double T : Targets)
    Var += (T - Mean) * (T - Mean);
  Net.setNormalization(Mean, std::sqrt(Var / Targets.size()));

  double FirstLoss = 0, LastLoss = 0;
  for (int Epoch = 0; Epoch < 60; ++Epoch) {
    double Loss = 0;
    for (size_t I = 0; I < Graphs.size(); ++I)
      Loss += Net.trainStep(Graphs[I], Targets[I]);
    Loss /= Graphs.size();
    if (Epoch == 0)
      FirstLoss = Loss;
    LastLoss = Loss;
  }
  EXPECT_LT(LastLoss, FirstLoss * 0.35);

  // Held-out relative error must beat the naive mean predictor.
  double RelErr = 0, NaiveErr = 0;
  int Held = 0;
  for (int N : {7, 19, 33}) {
    analysis::ProgramGraph G = chainGraph(N);
    RelErr += std::abs(Net.predict(G) - N) / N;
    NaiveErr += std::abs(Mean - N) / N;
    ++Held;
  }
  EXPECT_LT(RelErr / Held, NaiveErr / Held);
}

} // namespace
