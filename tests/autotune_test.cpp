//===- tests/autotune_test.cpp - Search technique tests --------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "autotune/Search.h"
#include "core/Registry.h"

#include <gtest/gtest.h>

using namespace compiler_gym;
using namespace compiler_gym::autotune;
using namespace compiler_gym::core;

namespace {

std::unique_ptr<CompilerEnv> makeLlvm() {
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/bitcount";
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "IrInstructionCount";
  auto Env = make("llvm-v0", Opts);
  EXPECT_TRUE(Env.isOk());
  return Env.takeValue();
}

std::unique_ptr<CompilerEnv> makeGcc() {
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://chstone-v0/dfadd";
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "ObjSizeBytes";
  Opts.ActionSpaceName = "gcc-direct-v0";
  auto Env = make("gcc-v0", Opts);
  EXPECT_TRUE(Env.isOk());
  return Env.takeValue();
}

struct LlvmSearchCase {
  const char *Name;
  std::unique_ptr<Search> (*Factory)();
};

std::unique_ptr<Search> mkRandom() { return createRandomSearch(1, 16); }
std::unique_ptr<Search> mkGreedy() { return createGreedySearch(); }
std::unique_ptr<Search> mkLaMcts() { return createLaMctsSearch(1); }
std::unique_ptr<Search> mkNevergrad() { return createNevergradSearch(1, 12); }
std::unique_ptr<Search> mkOpenTuner() { return createOpenTunerSearch(1, 12); }

class LlvmAutotuners : public ::testing::TestWithParam<LlvmSearchCase> {};

TEST_P(LlvmAutotuners, FindsImprovingSequenceWithinBudget) {
  auto Env = makeLlvm();
  std::unique_ptr<Search> S = GetParam().Factory();
  EXPECT_EQ(S->name(), std::string(GetParam().Name));
  SearchBudget Budget;
  Budget.MaxSteps = 600;
  auto Result = S->run(*Env, Budget);
  ASSERT_TRUE(Result.isOk()) << Result.status().toString();
  EXPECT_GT(Result->BestReward, 0.0) << "no instruction-count reduction";
  EXPECT_FALSE(Result->BestActions.empty());
  EXPECT_LE(Result->StepsUsed, Budget.MaxSteps + 64); // Small overshoot ok.
  EXPECT_GT(Result->CompilationsUsed, 0u);

  // Replaying the best sequence reproduces at least the claimed reward
  // (deterministic code-size signal).
  ASSERT_TRUE(Env->reset().isOk());
  ASSERT_TRUE(Env->step(Result->BestActions).isOk());
  EXPECT_NEAR(Env->episodeReward(), Result->BestReward, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    All, LlvmAutotuners,
    ::testing::Values(LlvmSearchCase{"Random Search", mkRandom},
                      LlvmSearchCase{"Greedy Search", mkGreedy},
                      LlvmSearchCase{"LaMCTS", mkLaMcts},
                      LlvmSearchCase{"Nevergrad", mkNevergrad},
                      LlvmSearchCase{"OpenTuner", mkOpenTuner}));

TEST(Autotune, PipelineActionsCoverDefaultPipelines) {
  auto Env = makeLlvm();
  // Every -Oz and -O3 pipeline pass is exposed as an action, so the
  // mapping must be lossless; indices must be valid. Pre-reset the env's
  // space is empty and the registry fallback must give the same answer.
  std::vector<int> OzPreReset = pipelineActions(*Env, "-Oz");
  ASSERT_TRUE(Env->reset().isOk());
  std::vector<int> Oz = pipelineActions(*Env, "-Oz");
  std::vector<int> O3 = pipelineActions(*Env, "-O3");
  EXPECT_EQ(Oz, OzPreReset);
  EXPECT_EQ(Oz.size(), 16u);
  EXPECT_EQ(O3.size(), 21u);
  for (int A : Oz)
    EXPECT_LT(static_cast<size_t>(A), Env->actionSpace().size());
  for (int A : O3)
    EXPECT_LT(static_cast<size_t>(A), Env->actionSpace().size());
  EXPECT_TRUE(pipelineActions(*Env, "-Onope").empty());
  EXPECT_TRUE(pipelineActions(*Env, "-O0").empty());
}

TEST_P(LlvmAutotuners, WarmStartFloorsResultAtSeedQuality) {
  auto Env = makeLlvm();
  std::vector<int> Seed = pipelineActions(*Env, "-Oz");
  ASSERT_FALSE(Seed.empty());

  // The seed's own reward, measured independently.
  SearchBudget Unbounded;
  BudgetTracker Probe(Unbounded);
  auto SeedReward = evaluateSequence(*Env, Seed, Probe);
  ASSERT_TRUE(SeedReward.isOk());
  EXPECT_GT(*SeedReward, 0.0);

  // A warm-started search must never report worse than its seed, even
  // under a budget too small to find anything better.
  std::unique_ptr<Search> S = GetParam().Factory();
  S->setWarmStart(Seed);
  SearchBudget Budget;
  Budget.MaxSteps = 120;
  auto Result = S->run(*Env, Budget);
  ASSERT_TRUE(Result.isOk()) << Result.status().toString();
  EXPECT_GE(Result->BestReward, *SeedReward - 1e-9);
  EXPECT_FALSE(Result->BestActions.empty());

  // And the reported sequence must reproduce the reported reward.
  ASSERT_TRUE(Env->reset().isOk());
  ASSERT_TRUE(Env->step(Result->BestActions).isOk());
  EXPECT_NEAR(Env->episodeReward(), Result->BestReward, 1e-9);
}

TEST(Autotune, WallClockBudgetIsHonored) {
  auto Env = makeLlvm();
  std::unique_ptr<Search> S = createRandomSearch(2, 8);
  SearchBudget Budget;
  Budget.MaxWallSeconds = 0.3;
  Stopwatch Watch;
  auto Result = S->run(*Env, Budget);
  ASSERT_TRUE(Result.isOk());
  EXPECT_LT(Watch.elapsedMs() / 1000.0, 5.0); // Generous ceiling.
}

TEST(Autotune, GreedyStopsAtLocalOptimum) {
  auto Env = makeLlvm();
  std::unique_ptr<Search> S = createGreedySearch();
  SearchBudget Budget;
  Budget.MaxSteps = 100000; // Effectively unbounded: must self-terminate.
  auto Result = S->run(*Env, Budget);
  ASSERT_TRUE(Result.isOk());
  // Terminated because no action gave positive reward, not by budget.
  EXPECT_LT(Result->StepsUsed, Budget.MaxSteps);
}

struct GccSearchCase {
  const char *Name;
  std::unique_ptr<Search> (*Factory)();
};

std::unique_ptr<Search> mkGccRandom() { return createGccRandomSearch(3); }
std::unique_ptr<Search> mkGccHill() { return createGccHillClimb(3, 4); }
std::unique_ptr<Search> mkGccGa() { return createGccGeneticAlgorithm(3, 20); }

class GccAutotuners : public ::testing::TestWithParam<GccSearchCase> {};

TEST_P(GccAutotuners, ReducesObjectSizeWithinCompilationBudget) {
  auto Env = makeGcc();
  std::unique_ptr<Search> S = GetParam().Factory();
  SearchBudget Budget;
  Budget.MaxCompilations = 120;
  auto Result = S->run(*Env, Budget);
  ASSERT_TRUE(Result.isOk()) << Result.status().toString();
  EXPECT_GT(Result->BestReward, 0.0) << "no object-size reduction";
  EXPECT_LE(Result->CompilationsUsed, 125u);
  EXPECT_EQ(Result->BestActions.size(), 502u); // A full choice vector.
}

INSTANTIATE_TEST_SUITE_P(
    All, GccAutotuners,
    ::testing::Values(GccSearchCase{"Random Search", mkGccRandom},
                      GccSearchCase{"Hill Climbing", mkGccHill},
                      GccSearchCase{"Genetic Algorithm", mkGccGa}));

TEST(Autotune, EvaluateSequenceCountsBudget) {
  auto Env = makeLlvm();
  SearchBudget Budget;
  BudgetTracker Tracker(Budget);
  auto R = evaluateSequence(*Env, {0, 1, 2}, Tracker);
  ASSERT_TRUE(R.isOk());
  EXPECT_EQ(Tracker.compilations(), 1u);
  EXPECT_EQ(Tracker.steps(), 3u);
}

} // namespace
