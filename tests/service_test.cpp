//===- tests/service_test.cpp - RPC runtime robustness ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The §IV-B contract: serialized messaging, session lifecycle, fault
// injection (crashes, hangs, flaky transport), crash recovery with state
// replay, and wire-format fuzzing.

#include "core/Registry.h"
#include "datasets/DatasetRegistry.h"
#include "envs/llvm/LlvmSession.h"
#include "service/CompilerService.h"
#include "service/Serialization.h"
#include "service/ServiceClient.h"

#include <gtest/gtest.h>

using namespace compiler_gym;
using namespace compiler_gym::service;

namespace {

datasets::Benchmark testBenchmark() {
  auto B = datasets::DatasetRegistry::instance().resolve(
      "benchmark://cbench-v1/crc32");
  EXPECT_TRUE(B.isOk());
  return *B;
}

TEST(Serialization, RequestRoundTrips) {
  RequestEnvelope Req;
  Req.Kind = RequestKind::Step;
  Req.Step.SessionId = 42;
  Action A1;
  A1.Index = 7;
  A1.Values = {1, -2, 3};
  Req.Step.Actions = {A1};
  Req.Step.ObservationSpaces = {"Autophase", "Ir"};
  auto Decoded = decodeRequest(encodeRequest(Req));
  ASSERT_TRUE(Decoded.isOk()) << Decoded.status().toString();
  EXPECT_EQ(Decoded->Kind, RequestKind::Step);
  EXPECT_EQ(Decoded->Step.SessionId, 42u);
  ASSERT_EQ(Decoded->Step.Actions.size(), 1u);
  EXPECT_EQ(Decoded->Step.Actions[0].Index, 7);
  EXPECT_EQ(Decoded->Step.Actions[0].Values, (std::vector<int64_t>{1, -2, 3}));
  EXPECT_EQ(Decoded->Step.ObservationSpaces,
            (std::vector<std::string>{"Autophase", "Ir"}));
}

TEST(Serialization, StartSessionCarriesBenchmark) {
  RequestEnvelope Req;
  Req.Kind = RequestKind::StartSession;
  Req.Start.CompilerName = "llvm";
  Req.Start.Bench.Uri = "benchmark://x/y";
  Req.Start.Bench.IrText = "module \"m\"\n";
  Req.Start.Bench.Runnable = true;
  Req.Start.Bench.Inputs = {9};
  auto Decoded = decodeRequest(encodeRequest(Req));
  ASSERT_TRUE(Decoded.isOk());
  EXPECT_EQ(Decoded->Start.Bench.Uri, "benchmark://x/y");
  EXPECT_EQ(Decoded->Start.Bench.IrText, "module \"m\"\n");
  EXPECT_TRUE(Decoded->Start.Bench.Runnable);
}

TEST(Serialization, ReplyRoundTripsObservations) {
  ReplyEnvelope Reply;
  Reply.Code = StatusCode::Ok;
  Reply.Step.EndOfSession = true;
  Observation Obs;
  Obs.Type = ObservationType::Int64List;
  Obs.Ints = {1, 2, 3};
  Reply.Step.Observations.push_back(Obs);
  Observation Str;
  Str.Type = ObservationType::String;
  Str.Str = std::string("binary\0data", 11);
  Reply.Step.Observations.push_back(Str);
  auto Decoded = decodeReply(encodeReply(Reply));
  ASSERT_TRUE(Decoded.isOk());
  EXPECT_TRUE(Decoded->Step.EndOfSession);
  ASSERT_EQ(Decoded->Step.Observations.size(), 2u);
  EXPECT_EQ(Decoded->Step.Observations[0].Ints,
            (std::vector<int64_t>{1, 2, 3}));
  EXPECT_EQ(Decoded->Step.Observations[1].Str.size(), 11u);
}

TEST(Serialization, ErrorsRoundTrip) {
  ReplyEnvelope Reply;
  Reply.Code = StatusCode::DeadlineExceeded;
  Reply.ErrorMessage = "too slow";
  auto Decoded = decodeReply(encodeReply(Reply));
  ASSERT_TRUE(Decoded.isOk());
  EXPECT_EQ(Decoded->status().code(), StatusCode::DeadlineExceeded);
  EXPECT_EQ(Decoded->status().message(), "too slow");
}

TEST(SerializationFuzz, RandomBytesNeverCrashDecoders) {
  Rng Gen(0xF022);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    size_t Len = Gen.bounded(200);
    std::string Bytes;
    for (size_t I = 0; I < Len; ++I)
      Bytes.push_back(static_cast<char>(Gen.bounded(256)));
    (void)decodeRequest(Bytes); // Must not crash; errors are fine.
    (void)decodeReply(Bytes);
  }
}

TEST(SerializationFuzz, BitflippedRealMessagesNeverCrash) {
  RequestEnvelope Req;
  Req.Kind = RequestKind::StartSession;
  Req.Start.CompilerName = "llvm";
  Req.Start.Bench = testBenchmark();
  std::string Bytes = encodeRequest(Req);
  Rng Gen(0xF1E);
  for (int Trial = 0; Trial < 500; ++Trial) {
    std::string Mutated = Bytes;
    size_t Flips = 1 + Gen.bounded(8);
    for (size_t F = 0; F < Flips; ++F)
      Mutated[Gen.bounded(Mutated.size())] ^=
          static_cast<char>(1 << Gen.bounded(8));
    auto Decoded = decodeRequest(Mutated);
    if (Decoded.isOk()) {
      // Occasionally decodes (e.g. payload-only flips); must round-trip.
      (void)encodeRequest(*Decoded);
    }
  }
}

TEST(Service, SessionLifecycle) {
  envs::registerLlvmEnvironment();
  auto Service = std::make_shared<CompilerService>();
  ServiceClient Client(Service);

  StartSessionRequest Req;
  Req.CompilerName = "llvm";
  Req.Bench = testBenchmark();
  auto Reply = Client.startSession(Req);
  ASSERT_TRUE(Reply.isOk()) << Reply.status().toString();
  EXPECT_GT(Reply->Space.size(), 0u);
  EXPECT_FALSE(Reply->ObservationSpaces.empty());
  EXPECT_EQ(Service->numSessions(), 1u);

  StepRequest Step;
  Step.SessionId = Reply->SessionId;
  Action A;
  A.Index = 0;
  Step.Actions = {A};
  Step.ObservationSpaces = {"IrInstructionCount"};
  auto StepReplyOr = Client.step(Step);
  ASSERT_TRUE(StepReplyOr.isOk()) << StepReplyOr.status().toString();
  ASSERT_EQ(StepReplyOr->Observations.size(), 1u);
  EXPECT_GT(StepReplyOr->Observations[0].IntValue, 0);

  ASSERT_TRUE(Client.endSession(Reply->SessionId).isOk());
  EXPECT_EQ(Service->numSessions(), 0u);
}

TEST(Service, ErrorsForUnknownEntities) {
  envs::registerLlvmEnvironment();
  auto Service = std::make_shared<CompilerService>();
  ServiceClient Client(Service);

  StartSessionRequest Req;
  Req.CompilerName = "not-a-compiler";
  Req.Bench = testBenchmark();
  auto Reply = Client.startSession(Req);
  ASSERT_FALSE(Reply.isOk());
  EXPECT_EQ(Reply.status().code(), StatusCode::NotFound);

  StepRequest Step;
  Step.SessionId = 999;
  auto StepReply = Client.step(Step);
  ASSERT_FALSE(StepReply.isOk());
  EXPECT_EQ(StepReply.status().code(), StatusCode::NotFound);

  Req.CompilerName = "llvm";
  Req.ActionSpaceName = "bogus-space";
  auto Reply2 = Client.startSession(Req);
  ASSERT_FALSE(Reply2.isOk());
  EXPECT_EQ(Reply2.status().code(), StatusCode::NotFound);
}

TEST(Service, InvalidActionIndexIsOutOfRange) {
  envs::registerLlvmEnvironment();
  auto Service = std::make_shared<CompilerService>();
  ServiceClient Client(Service);
  StartSessionRequest Req;
  Req.CompilerName = "llvm";
  Req.Bench = testBenchmark();
  auto Reply = Client.startSession(Req);
  ASSERT_TRUE(Reply.isOk());
  StepRequest Step;
  Step.SessionId = Reply->SessionId;
  Action A;
  A.Index = 100000;
  Step.Actions = {A};
  auto R = Client.step(Step);
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::OutOfRange);
}

TEST(Service, MalformedBenchmarkFailsCleanly) {
  envs::registerLlvmEnvironment();
  auto Service = std::make_shared<CompilerService>();
  ServiceClient Client(Service);
  StartSessionRequest Req;
  Req.CompilerName = "llvm";
  Req.Bench.Uri = "benchmark://custom/bad";
  Req.Bench.IrText = "this is not ir";
  auto Reply = Client.startSession(Req);
  ASSERT_FALSE(Reply.isOk());
  EXPECT_EQ(Reply.status().code(), StatusCode::InvalidArgument);
  EXPECT_EQ(Service->numSessions(), 0u);
}

TEST(Service, HeartbeatWorks) {
  auto Service = std::make_shared<CompilerService>();
  ServiceClient Client(Service);
  EXPECT_TRUE(Client.heartbeat().isOk());
  EXPECT_EQ(Client.rpcCount(), 1u);
}

// -- Fault tolerance -----------------------------------------------------------

TEST(FaultTolerance, CrashedServiceReturnsAborted) {
  envs::registerLlvmEnvironment();
  FaultPlan Plan;
  Plan.CrashAfterOps = 2;
  auto Service = std::make_shared<CompilerService>(Plan);
  ServiceClient Client(Service);
  EXPECT_TRUE(Client.heartbeat().isOk());
  EXPECT_TRUE(Client.heartbeat().isOk());
  Status Third = Client.heartbeat();
  ASSERT_FALSE(Third.isOk());
  EXPECT_EQ(Third.code(), StatusCode::Aborted);
  EXPECT_TRUE(Service->crashed());
  Service->restart();
  EXPECT_FALSE(Service->crashed());
  EXPECT_TRUE(Client.heartbeat().isOk());
}

TEST(FaultTolerance, EnvRecoversFromBackendCrashTransparently) {
  // The paper's §IV-B story end-to-end: the service dies mid-episode, the
  // env restarts it and replays its action history; the user never sees an
  // error, and the state is bit-identical to an uninterrupted episode.
  core::MakeOptions Crashy;
  Crashy.Benchmark = "benchmark://cbench-v1/crc32";
  Crashy.ObservationSpace = "none";
  Crashy.RewardSpace = "none";
  Crashy.Faults.CrashAfterOps = 7;
  auto EnvA = core::make("llvm-v0", Crashy);
  ASSERT_TRUE(EnvA.isOk());

  core::MakeOptions Stable = Crashy;
  Stable.Faults = FaultPlan{};
  auto EnvB = core::make("llvm-v0", Stable);
  ASSERT_TRUE(EnvB.isOk());

  ASSERT_TRUE((*EnvA)->reset().isOk());
  ASSERT_TRUE((*EnvB)->reset().isOk());
  for (int Step = 0; Step < 10; ++Step) {
    auto RA = (*EnvA)->step(Step % 5);
    ASSERT_TRUE(RA.isOk()) << "step " << Step << ": "
                           << RA.status().toString();
    ASSERT_TRUE((*EnvB)->step(Step % 5).isOk());
  }
  EXPECT_GE((*EnvA)->serviceRecoveries(), 1u);
  EXPECT_EQ((*EnvB)->serviceRecoveries(), 0u);
  auto HashA = (*EnvA)->observation()["IrHash"];
  auto HashB = (*EnvB)->observation()["IrHash"];
  ASSERT_TRUE(HashA.isOk());
  ASSERT_TRUE(HashB.isOk());
  EXPECT_EQ(HashA->raw().Str, HashB->raw().Str);
}

TEST(FaultTolerance, HangsAreRetriedAsTimeouts) {
  core::MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "none";
  Opts.Faults.HangOnOp = 3; // Third op sleeps past the client deadline.
  Opts.Faults.HangMs = 100;
  Opts.Client.TimeoutMs = 40;
  Opts.Client.MaxRetries = 6;
  // Legacy per-attempt timeouts: with deadline propagation the 40ms
  // budget would be spent after one attempt (client retries would be
  // refused and recovery would move up to the env layer instead).
  Opts.Client.PropagateDeadline = false;
  auto Env = core::make("llvm-v0", Opts);
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  auto R = (*Env)->step(0);
  EXPECT_TRUE(R.isOk()) << R.status().toString();
  EXPECT_GE((*Env)->client().retryCount(), 1u);
}

namespace {

/// Fails every RPC with a typed channel error while recording the
/// DeadlineMs each attempt carried — the retry-budget accounting probe.
class DeadlineRecordingTransport : public Transport {
public:
  StatusOr<std::string> roundTrip(const std::string &Bytes, int) override {
    auto Req = decodeRequest(Bytes);
    EXPECT_TRUE(Req.isOk());
    if (Req.isOk())
      Deadlines.push_back(Req->DeadlineMs);
    return unavailable("injected channel failure");
  }

  std::vector<uint32_t> Deadlines;
};

} // namespace

TEST(FaultTolerance, RetryBudgetShrinksAcrossAttemptsAndNeverWraps) {
  auto T = std::make_shared<DeadlineRecordingTransport>();
  ClientOptions Opts;
  Opts.TimeoutMs = 60;
  Opts.MaxRetries = 50;
  Opts.RetryBackoffMs = 8;
  Opts.RetryBackoffMaxMs = 16;
  ServiceClient Client(nullptr, T, Opts);
  Status S = Client.heartbeat();
  ASSERT_FALSE(S.isOk());
  const std::vector<uint32_t> &D = T->Deadlines;
  // The failing channel was retried, but the 60ms budget stopped the
  // attempts well short of MaxRetries.
  ASSERT_GE(D.size(), 2u);
  EXPECT_LT(D.size(), 10u);
  // First attempt carries (nearly) the whole budget; every retry carries
  // strictly less than its predecessor; and the stamp never exceeds the
  // budget or wraps negative (DeadlineMs is unsigned — an elapsed time
  // past the budget must clamp to expiry, not wrap to ~4 billion ms).
  EXPECT_GE(D.front(), 50u);
  for (size_t I = 0; I < D.size(); ++I) {
    EXPECT_GT(D[I], 0u) << "attempt " << I;
    EXPECT_LE(D[I], 60u) << "attempt " << I;
    if (I)
      EXPECT_LT(D[I], D[I - 1]) << "attempt " << I;
  }
}

TEST(FaultTolerance, FlakyTransportIsSurvivable) {
  core::MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "IrInstructionCount";
  Opts.UseFlakyTransport = true;
  Opts.TransportFaultPlan.DropProbability = 0.10;
  Opts.TransportFaultPlan.GarbageProbability = 0.10;
  Opts.TransportFaultPlan.Seed = 99;
  Opts.Client.TimeoutMs = 2000;
  Opts.Client.MaxRetries = 8;
  auto Env = core::make("llvm-v0", Opts);
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  for (int Step = 0; Step < 20; ++Step) {
    auto R = (*Env)->step(Step % 7);
    ASSERT_TRUE(R.isOk()) << "step " << Step << ": "
                          << R.status().toString();
  }
  EXPECT_GE((*Env)->client().retryCount(), 1u);
}

TEST(FaultTolerance, RetriedRequestsAreDeduplicatedByTheService) {
  // A retry re-sends the same RequestId; the service must replay the
  // stored reply instead of re-executing (double-applying the actions).
  envs::registerLlvmEnvironment();
  auto Service = std::make_shared<CompilerService>();
  ServiceClient Client(Service);
  StartSessionRequest Req;
  Req.CompilerName = "llvm";
  Req.Bench = testBenchmark();
  auto Reply = Client.startSession(Req);
  ASSERT_TRUE(Reply.isOk());

  RequestEnvelope Step;
  Step.Kind = RequestKind::Step;
  Step.RequestId = 0xD5D5;
  Step.Step.SessionId = Reply->SessionId;
  Action A;
  A.Index = 1;
  Step.Step.Actions = {A};
  std::string Bytes = encodeRequest(Step);
  uint64_t OpsBefore = Service->opsHandled();
  std::string First = Service->handle(Bytes);
  std::string Second = Service->handle(Bytes); // The "retry".
  EXPECT_EQ(First, Second);
  // The duplicate performed no compiler work.
  EXPECT_EQ(Service->opsHandled(), OpsBefore + 1);
}

/// Corrupts the reply of exactly one call into undecodable bytes. The
/// request itself still executes on the service — the hazard under test.
class CorruptOneReplyTransport : public Transport {
public:
  CorruptOneReplyTransport(std::shared_ptr<Transport> Inner, int CorruptCall)
      : Inner(std::move(Inner)), CorruptCall(CorruptCall) {}

  StatusOr<std::string> roundTrip(const std::string &Bytes,
                                  int TimeoutMs) override {
    StatusOr<std::string> Reply = Inner->roundTrip(Bytes, TimeoutMs);
    if (++CallIndex == CorruptCall)
      return std::string("\xFF\xFF\xFF");
    return Reply;
  }

private:
  std::shared_ptr<Transport> Inner;
  int CallIndex = 0;
  int CorruptCall;
};

TEST(FaultTolerance, GarbledReplyRetryDoesNotDoubleApplyActions) {
  // A garbled reply means the request DID execute; the client retry must
  // not execute it again. End state must match a fault-free episode.
  core::MakeOptions MO;
  MO.Benchmark = "benchmark://cbench-v1/crc32";
  MO.ObservationSpace = "none";
  MO.RewardSpace = "none";
  auto EnvOpts = core::resolveMakeOptions("llvm-v0", MO);
  ASSERT_TRUE(EnvOpts.isOk());
  auto Service = std::make_shared<CompilerService>();
  auto Base = std::make_shared<QueueTransport>(
      [Service](const std::string &Bytes) { return Service->handle(Bytes); });
  // Call 4 = the second step (1: StartSession, 2: reset obs, 3: step 0).
  auto Corrupt = std::make_shared<CorruptOneReplyTransport>(Base, 4);
  auto Env = core::CompilerEnv::attach(*EnvOpts, Service, Corrupt);
  ASSERT_TRUE(Env.isOk());
  auto RefEnv = core::make("llvm-v0", MO);
  ASSERT_TRUE(RefEnv.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  ASSERT_TRUE((*RefEnv)->reset().isOk());
  for (int Step = 0; Step < 6; ++Step) {
    auto R = (*Env)->step(Step % 7);
    ASSERT_TRUE(R.isOk()) << "step " << Step << ": "
                          << R.status().toString();
    ASSERT_TRUE((*RefEnv)->step(Step % 7).isOk());
  }
  EXPECT_GE((*Env)->client().retryCount(), 1u);
  auto Hash = (*Env)->observation()["IrHash"];
  auto RefHash = (*RefEnv)->observation()["IrHash"];
  ASSERT_TRUE(Hash.isOk());
  ASSERT_TRUE(RefHash.isOk());
  EXPECT_EQ(Hash->raw().Str, RefHash->raw().Str);
}

TEST(FaultTolerance, ForkSurvivesOnSharedService) {
  core::MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "none";
  auto Env = core::make("llvm-v0", Opts);
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  ASSERT_TRUE((*Env)->step(1).isOk());
  auto Fork = (*Env)->fork();
  ASSERT_TRUE(Fork.isOk());
  // Both keep working.
  EXPECT_TRUE((*Env)->step(2).isOk());
  EXPECT_TRUE((*Fork)->step(3).isOk());
}

TEST(BenchmarkCache, AmortizesEnvironmentInit) {
  envs::LlvmSession::clearBenchmarkCache();
  core::MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/sha";
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "none";
  auto Env = core::make("llvm-v0", Opts);
  ASSERT_TRUE(Env.isOk());
  uint64_t Misses0 = envs::LlvmSession::cacheMisses();
  for (int I = 0; I < 5; ++I)
    ASSERT_TRUE((*Env)->reset().isOk());
  // One cold parse; every further reset is a cache hit (O(1) init).
  EXPECT_EQ(envs::LlvmSession::cacheMisses(), Misses0 + 1);
  EXPECT_GE(envs::LlvmSession::cacheHits(), 4u);
}

} // namespace
