//===- tests/gcc_env_test.cpp - GCC flag-tuning env tests ------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Registry.h"
#include "envs/gcc/GccSession.h"

#include <gtest/gtest.h>

using namespace compiler_gym;
using namespace compiler_gym::core;
using namespace compiler_gym::envs;

namespace {

TEST(GccOptionSpace, Has502OptionsLikeGcc11) {
  const GccOptionSpace &Space = GccSession::optionSpace();
  EXPECT_EQ(Space.options().size(), 502u); // §V-B: 1 + 242 + 259... = 502.
  size_t OLevels = 0, Flags = 0, Params = 0;
  for (const GccOption &O : Space.options()) {
    switch (O.OptKind) {
    case GccOption::Kind::OLevel:
      ++OLevels;
      break;
    case GccOption::Kind::Flag:
      ++Flags;
      EXPECT_EQ(O.Cardinality, 3); // unset / on / off.
      break;
    case GccOption::Kind::Param:
      ++Params;
      EXPECT_EQ(O.Cardinality,
                static_cast<int64_t>(O.ParamValues.size()));
      break;
    }
  }
  EXPECT_EQ(OLevels, 1u);
  EXPECT_EQ(Flags, 242u);
  EXPECT_EQ(Params, 259u);
}

TEST(GccOptionSpace, SpaceSizeIsAstronomical) {
  // Paper: ~10^461 for GCC 11.2. Ours is the same order of magnitude
  // (hundreds of orders of magnitude).
  double Log10 = GccSession::optionSpace().log10SpaceSize();
  EXPECT_GT(Log10, 300.0);
  EXPECT_LT(Log10, 700.0);
}

TEST(GccOptionSpace, OlderGccExposesASmallerSpace) {
  GccOptionSpace Gcc5(5);
  EXPECT_LT(Gcc5.options().size(),
            GccSession::optionSpace().options().size());
  EXPECT_LT(Gcc5.log10SpaceSize(),
            GccSession::optionSpace().log10SpaceSize());
}

TEST(GccOptionSpace, CategoricalActionsFollowTheCardinalityRule) {
  const GccOptionSpace &Space = GccSession::optionSpace();
  // Options with cardinality < 10 get one action per value; others get the
  // eight +/-{1,10,100,1000} adjusters.
  size_t Expected = 0;
  for (const GccOption &O : Space.options())
    Expected += O.Cardinality < 10 ? static_cast<size_t>(O.Cardinality) : 8;
  EXPECT_EQ(Space.actions().size(), Expected);
  EXPECT_GT(Space.actions().size(), 1500u); // Paper's space: 2281.
}

TEST(GccOptionSpace, ApplyActionClampsAndMutates) {
  const GccOptionSpace &Space = GccSession::optionSpace();
  std::vector<int64_t> Choices = Space.defaultChoices();
  ASSERT_TRUE(Space.applyAction(0, Choices)); // "-O=0".
  EXPECT_FALSE(Space.applyAction(Space.actions().size(), Choices));

  // Find a delta action and exercise clamping at both ends.
  for (size_t I = 0; I < Space.actions().size(); ++I) {
    const GccAction &A = Space.actions()[I];
    if (!A.IsDelta || A.Delta != -1000)
      continue;
    ASSERT_TRUE(Space.applyAction(I, Choices));
    EXPECT_EQ(Choices[A.OptionIndex], 0); // Clamped at zero.
    break;
  }
}

TEST(GccOptionSpace, PlanMapsChoicesToPipeline) {
  const GccOptionSpace &Space = GccSession::optionSpace();
  std::vector<int64_t> Choices = Space.defaultChoices();
  GccOptionSpace::CompilePlan Plan = Space.plan(Choices);
  EXPECT_EQ(Plan.OLevel, "-O0");

  Choices[0] = 4; // -O3.
  Plan = Space.plan(Choices);
  EXPECT_EQ(Plan.OLevel, "-O3");

  // Find the -fmem2reg flag and set it to "on".
  for (size_t I = 0; I < Space.options().size(); ++I) {
    if (Space.options()[I].Name == "-fmem2reg") {
      Choices[I] = 1;
      Plan = Space.plan(Choices);
      EXPECT_NE(std::find(Plan.ExtraPasses.begin(), Plan.ExtraPasses.end(),
                          "mem2reg"),
                Plan.ExtraPasses.end());
      Choices[I] = 2; // -fno-mem2reg.
      Plan = Space.plan(Choices);
      EXPECT_NE(std::find(Plan.DisabledPasses.begin(),
                          Plan.DisabledPasses.end(), "mem2reg"),
                Plan.DisabledPasses.end());
      return;
    }
  }
  FAIL() << "no -fmem2reg option found";
}

std::unique_ptr<CompilerEnv> makeGcc() {
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://chstone-v0/sha";
  auto Env = make("gcc-v0", Opts);
  EXPECT_TRUE(Env.isOk()) << Env.status().toString();
  return Env.takeValue();
}

TEST(GccEnv, DefaultsToCategoricalSpace) {
  auto Env = makeGcc();
  ASSERT_TRUE(Env->reset().isOk());
  EXPECT_EQ(Env->actionSpace().Name, "gcc-categorical-v0");
  EXPECT_EQ(Env->actionSpace().size(),
            GccSession::optionSpace().actions().size());
}

TEST(GccEnv, ChoicesObservationTracksActions) {
  auto Env = makeGcc();
  auto Obs = Env->reset();
  ASSERT_TRUE(Obs.isOk());
  EXPECT_EQ(Obs->Ints.size(), 502u);
  for (int64_t C : Obs->Ints)
    EXPECT_EQ(C, 0);
  // Action 1 is "-O=1" (set option 0 to choice 1 = -O0... order: value 0
  // first). Apply "-O=4" (choice index 4 = -O3): action index 4.
  auto R = Env->step(4);
  ASSERT_TRUE(R.isOk());
  EXPECT_EQ(R->Obs.Ints[0], 4);
}

TEST(GccEnv, OLevelsShrinkObjectCode) {
  auto Env = makeGcc();
  ASSERT_TRUE(Env->reset().isOk());
  auto Size0 = Env->observation()["ObjSizeBytes"];
  ASSERT_TRUE(Size0.isOk());
  // Switch to -Os (choice 5 of option 0 -> action index 5).
  ASSERT_TRUE(Env->step(5).isOk());
  auto SizeOs = Env->observation()["ObjSizeBytes"];
  ASSERT_TRUE(SizeOs.isOk());
  EXPECT_LT(*SizeOs->asInt64(), *Size0->asInt64());
  // Episode reward (ObjSizeBytes delta) equals the total reduction.
  EXPECT_DOUBLE_EQ(Env->episodeReward(),
                   static_cast<double>(*Size0->asInt64() -
                                       *SizeOs->asInt64()));
}

TEST(GccEnv, DirectActionSpaceSetsWholeVector) {
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://chstone-v0/sha";
  Opts.ActionSpaceName = "gcc-direct-v0";
  auto Env = make("gcc-v0", Opts);
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  std::vector<int64_t> Choices(502, 0);
  Choices[0] = 4; // -O3.
  auto R = (*Env)->stepDirect(Choices);
  ASSERT_TRUE(R.isOk()) << R.status().toString();
  auto Obs = (*Env)->observation()["Choices"];
  ASSERT_TRUE(Obs.isOk());
  EXPECT_EQ(Obs->raw().Ints[0], 4);

  // Wrong-length vectors are rejected.
  auto Bad = (*Env)->stepDirect({1, 2, 3});
  ASSERT_FALSE(Bad.isOk());
  EXPECT_EQ(Bad.status().code(), StatusCode::InvalidArgument);
}

TEST(GccEnv, ObservationSpacesAllWork) {
  auto Env = makeGcc();
  ASSERT_TRUE(Env->reset().isOk());
  for (const char *Space : {"InstructionCount", "Choices", "Rtl", "Asm",
                            "Obj", "AsmSizeBytes", "ObjSizeBytes",
                            "ObjSizeOs"}) {
    auto Obs = Env->observation()[Space];
    EXPECT_TRUE(Obs.isOk()) << Space << ": " << Obs.status().toString();
  }
  auto Asm = Env->observation()["Asm"];
  ASSERT_TRUE(Asm.isOk());
  EXPECT_NE(Asm->asString()->find(".text"), std::string::npos);
}

TEST(GccEnv, RecompilesFromSourceEachConfig) {
  // GCC env state is the flag configuration: toggling a flag on and back
  // off returns to the original object code (no hidden IR state).
  auto Env = makeGcc();
  ASSERT_TRUE(Env->reset().isOk());
  auto Size0 = Env->observation()["ObjSizeBytes"];
  ASSERT_TRUE(Size0.isOk());
  ASSERT_TRUE(Env->step(4).isOk()); // -O3.
  auto Size1 = Env->observation()["ObjSizeBytes"];
  ASSERT_TRUE(Env->step(1).isOk()); // Back to -O0 (choice 1).
  auto Size2 = Env->observation()["ObjSizeBytes"];
  ASSERT_TRUE(Size2.isOk());
  EXPECT_NE(*Size1->asInt64(), *Size0->asInt64());
  EXPECT_EQ(*Size2->asInt64(), *Size0->asInt64());
}

TEST(GccEnv, ForkCopiesChoices) {
  auto Env = makeGcc();
  ASSERT_TRUE(Env->reset().isOk());
  ASSERT_TRUE(Env->step(4).isOk());
  auto Fork = Env->fork();
  ASSERT_TRUE(Fork.isOk());
  auto Obs = (*Fork)->observation()["Choices"];
  ASSERT_TRUE(Obs.isOk());
  EXPECT_EQ(Obs->raw().Ints[0], 4);
}

TEST(GccEnv, FlagsComposeWithOLevel) {
  // -O0 plus -fmem2reg must shrink code relative to plain -O0.
  auto Env = makeGcc();
  ASSERT_TRUE(Env->reset().isOk());
  auto Size0 = Env->observation()["ObjSizeBytes"];
  ASSERT_TRUE(Size0.isOk());
  const auto &Actions = GccSession::optionSpace().actions();
  int FlagAction = -1;
  for (size_t I = 0; I < Actions.size(); ++I)
    if (Actions[I].Name == "-fmem2reg=1")
      FlagAction = static_cast<int>(I);
  ASSERT_GE(FlagAction, 0);
  ASSERT_TRUE(Env->step(FlagAction).isOk());
  auto Size1 = Env->observation()["ObjSizeBytes"];
  ASSERT_TRUE(Size1.isOk());
  EXPECT_LT(*Size1->asInt64(), *Size0->asInt64());
}

} // namespace
