//===- tests/runtime_test.cpp - Parallel runtime subsystem -----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The parallel environment runtime: ServiceBroker shard routing and crash
// recovery at fleet scale, EnvPool vectorized/episode-parallel stepping
// with no episodes lost to injected faults, and the sharded
// ObservationCache.

#include "runtime/EnvPool.h"
#include "runtime/ObservationCache.h"
#include "runtime/ServiceBroker.h"

#include "core/Registry.h"
#include "envs/llvm/LlvmSession.h"
#include "rl/Rollout.h"

#include <gtest/gtest.h>

#include <map>
#include <thread>

using namespace compiler_gym;
using namespace compiler_gym::runtime;

namespace {

// -- ObservationCache ----------------------------------------------------------

service::Observation intObs(int64_t V) {
  service::Observation Obs;
  Obs.Type = service::ObservationType::Int64Value;
  Obs.IntValue = V;
  return Obs;
}

TEST(ObservationCache, RoundTripAndCounters) {
  ObservationCache Cache;
  service::Observation Out;
  EXPECT_FALSE(Cache.lookup(1, "Autophase", Out));
  EXPECT_EQ(Cache.misses(), 1u);
  Cache.insert(1, "Autophase", intObs(42));
  ASSERT_TRUE(Cache.lookup(1, "Autophase", Out));
  EXPECT_EQ(Out.IntValue, 42);
  EXPECT_EQ(Cache.hits(), 1u);
  // Same state, different space: distinct entry.
  EXPECT_FALSE(Cache.lookup(1, "InstCount", Out));
  // Different state, same space: distinct entry.
  EXPECT_FALSE(Cache.lookup(2, "Autophase", Out));
  EXPECT_EQ(Cache.size(), 1u);
}

TEST(ObservationCache, LruEvictsColdEntriesPerStripe) {
  ObservationCacheOptions Opts;
  Opts.NumStripes = 1; // Single stripe: capacity is exact.
  Opts.CapacityPerStripe = 4;
  ObservationCache Cache(Opts);
  for (int64_t I = 0; I < 4; ++I)
    Cache.insert(static_cast<uint64_t>(I + 1), "S", intObs(I));
  // Touch entry 1 so it is MRU, then overflow.
  service::Observation Out;
  ASSERT_TRUE(Cache.lookup(1, "S", Out));
  Cache.insert(100, "S", intObs(100));
  EXPECT_EQ(Cache.size(), 4u);
  EXPECT_EQ(Cache.evictions(), 1u);
  EXPECT_TRUE(Cache.lookup(1, "S", Out));   // Recently used: kept.
  EXPECT_FALSE(Cache.lookup(2, "S", Out));  // LRU victim.
  EXPECT_TRUE(Cache.lookup(100, "S", Out)); // New entry present.
}

TEST(ObservationCache, ConcurrentMixedTrafficIsSafe) {
  ObservationCacheOptions Opts;
  Opts.NumStripes = 4;
  Opts.CapacityPerStripe = 32;
  ObservationCache Cache(Opts);
  constexpr int NumThreads = 4;
  constexpr int OpsPerThread = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T) {
    Threads.emplace_back([&Cache, T] {
      service::Observation Out;
      for (int I = 0; I < OpsPerThread; ++I) {
        uint64_t Key = static_cast<uint64_t>((T * 31 + I) % 257 + 1);
        if (I % 3 == 0)
          Cache.insert(Key, "S", intObs(static_cast<int64_t>(Key)));
        else if (Cache.lookup(Key, "S", Out))
          // An entry under key K must carry K's payload, however the
          // interleaving went.
          EXPECT_EQ(Out.IntValue, static_cast<int64_t>(Key));
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_LE(Cache.size(), Cache.capacity());
  // Each thread performs one lookup per op where I % 3 != 0.
  constexpr uint64_t LookupsPerThread =
      OpsPerThread - (OpsPerThread + 2) / 3;
  EXPECT_EQ(Cache.hits() + Cache.misses(), NumThreads * LookupsPerThread);
}

// -- ServiceBroker -------------------------------------------------------------

TEST(ServiceBroker, LeastLoadedRouting) {
  BrokerOptions Opts;
  Opts.NumShards = 3;
  Opts.MonitorIntervalMs = 0;
  ServiceBroker Broker(Opts);
  // Six acquisitions spread evenly over three shards.
  std::map<size_t, int> Counts;
  std::vector<size_t> Leases;
  for (int I = 0; I < 6; ++I) {
    size_t S = Broker.acquireShard();
    Leases.push_back(S);
    ++Counts[S];
  }
  EXPECT_EQ(Counts.size(), 3u);
  for (const auto &[Shard, Count] : Counts)
    EXPECT_EQ(Count, 2) << "shard " << Shard;
  for (size_t S : Leases)
    Broker.releaseShard(S);
  for (size_t I = 0; I < Broker.numShards(); ++I)
    EXPECT_EQ(Broker.shardLoad(I), 0u);
}

TEST(ServiceBroker, SweepRestartsCrashedShards) {
  envs::registerLlvmEnvironment();
  BrokerOptions Opts;
  Opts.NumShards = 2;
  Opts.MonitorIntervalMs = 0; // Manual sweeps.
  Opts.Faults.CrashAfterOps = 2;
  ServiceBroker Broker(Opts);
  auto Client = Broker.makeClient(0);
  EXPECT_TRUE(Client->heartbeat().isOk());
  EXPECT_TRUE(Client->heartbeat().isOk());
  EXPECT_FALSE(Client->heartbeat().isOk()); // Third op: crashed.
  ASSERT_TRUE(Broker.shardService(0)->crashed());
  EXPECT_FALSE(Broker.shardService(1)->crashed());

  EXPECT_EQ(Broker.checkShards(), 1u);
  EXPECT_EQ(Broker.shardRestarts(), 1u);
  EXPECT_FALSE(Broker.shardService(0)->crashed());
  EXPECT_TRUE(Client->heartbeat().isOk());
  EXPECT_EQ(Broker.checkShards(), 0u); // Healthy fleet: no-op.
}

TEST(ServiceBroker, MonitorThreadRestartsCrashedShardUnprompted) {
  envs::registerLlvmEnvironment();
  BrokerOptions Opts;
  Opts.NumShards = 1;
  Opts.MonitorIntervalMs = 5;
  Opts.Faults.CrashAfterOps = 1;
  ServiceBroker Broker(Opts);
  auto Client = Broker.makeClient(0);
  EXPECT_TRUE(Client->heartbeat().isOk());
  EXPECT_FALSE(Client->heartbeat().isOk()); // Crashes the shard.
  // The monitor notices and restarts without any client intervention.
  for (int I = 0; I < 200 && Broker.shardService(0)->crashed(); ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_FALSE(Broker.shardService(0)->crashed());
  EXPECT_GE(Broker.shardRestarts(), 1u);
}

// -- Shared-shard environments -------------------------------------------------

TEST(SharedShard, EnvsSurviveEachOthersRecoveries) {
  // Two envs on ONE shard with a crashy service: each recovery restarts
  // the shared service, killing the sibling's session. Both must finish
  // their episodes with state identical to a fault-free run.
  core::MakeOptions MO;
  MO.Benchmark = "benchmark://cbench-v1/crc32";
  MO.ObservationSpace = "none";
  MO.RewardSpace = "none";
  auto EnvOpts = core::resolveMakeOptions("llvm-v0", MO);
  ASSERT_TRUE(EnvOpts.isOk());

  BrokerOptions BO;
  BO.NumShards = 1;
  BO.MonitorIntervalMs = 0; // Recovery driven purely by the envs.
  BO.Faults.CrashAfterOps = 5;
  ServiceBroker Broker(BO);
  auto A = core::CompilerEnv::attach(*EnvOpts, Broker.shardService(0),
                                     Broker.shardTransport(0));
  auto B = core::CompilerEnv::attach(*EnvOpts, Broker.shardService(0),
                                     Broker.shardTransport(0));
  ASSERT_TRUE(A.isOk());
  ASSERT_TRUE(B.isOk());
  ASSERT_TRUE((*A)->reset().isOk());
  ASSERT_TRUE((*B)->reset().isOk());
  for (int Step = 0; Step < 8; ++Step) {
    auto RA = (*A)->step(Step % 5);
    ASSERT_TRUE(RA.isOk()) << "A step " << Step << ": "
                           << RA.status().toString();
    auto RB = (*B)->step((Step + 2) % 5);
    ASSERT_TRUE(RB.isOk()) << "B step " << Step << ": "
                           << RB.status().toString();
  }
  EXPECT_GE((*A)->serviceRecoveries() + (*B)->serviceRecoveries(), 1u);

  // Fault-free references on private services.
  auto RefA = core::make("llvm-v0", MO);
  auto RefB = core::make("llvm-v0", MO);
  ASSERT_TRUE(RefA.isOk());
  ASSERT_TRUE(RefB.isOk());
  ASSERT_TRUE((*RefA)->reset().isOk());
  ASSERT_TRUE((*RefB)->reset().isOk());
  for (int Step = 0; Step < 8; ++Step) {
    ASSERT_TRUE((*RefA)->step(Step % 5).isOk());
    ASSERT_TRUE((*RefB)->step((Step + 2) % 5).isOk());
  }
  auto HashA = (*A)->observation()["IrHash"];
  auto HashRefA = (*RefA)->observation()["IrHash"];
  ASSERT_TRUE(HashA.isOk());
  ASSERT_TRUE(HashRefA.isOk());
  EXPECT_EQ(HashA->raw().Str, HashRefA->raw().Str);
  auto HashB = (*B)->observation()["IrHash"];
  auto HashRefB = (*RefB)->observation()["IrHash"];
  ASSERT_TRUE(HashB.isOk());
  ASSERT_TRUE(HashRefB.isOk());
  EXPECT_EQ(HashB->raw().Str, HashRefB->raw().Str);
}

// -- EnvPool -------------------------------------------------------------------

EnvPoolOptions smokePoolOptions(size_t Workers) {
  EnvPoolOptions Opts;
  Opts.EnvId = "llvm-v0";
  Opts.Make.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.Make.ObservationSpace = "Autophase";
  Opts.Make.RewardSpace = "IrInstructionCount";
  Opts.NumWorkers = Workers;
  Opts.Broker.MonitorIntervalMs = 0;
  return Opts;
}

TEST(EnvPool, ResetAllAndStepBatch) {
  auto Pool = EnvPool::create(smokePoolOptions(3));
  ASSERT_TRUE(Pool.isOk()) << Pool.status().toString();
  EXPECT_EQ((*Pool)->size(), 3u);
  auto Obs = (*Pool)->resetAll();
  ASSERT_TRUE(Obs.isOk()) << Obs.status().toString();
  ASSERT_EQ(Obs->size(), 3u);
  for (const service::Observation &O : *Obs)
    EXPECT_FALSE(O.Ints.empty()); // Autophase vectors.

  std::vector<std::vector<int>> Actions(3);
  for (size_t W = 0; W < 3; ++W)
    Actions[W] = {static_cast<int>(W), 1};
  auto Results = (*Pool)->stepBatch(Actions);
  ASSERT_TRUE(Results.isOk()) << Results.status().toString();
  ASSERT_EQ(Results->size(), 3u);
  PoolStats Stats = (*Pool)->stats();
  EXPECT_EQ(Stats.StepsExecuted, 6u);

  auto Bad = (*Pool)->stepBatch({{0}});
  EXPECT_FALSE(Bad.isOk());
  EXPECT_EQ(Bad.status().code(), StatusCode::InvalidArgument);
}

TEST(EnvPool, ShardsBenchmarksAcrossWorkers) {
  EnvPoolOptions Opts = smokePoolOptions(2);
  Opts.Benchmarks = {
      "benchmark://cbench-v1/crc32", "benchmark://cbench-v1/sha",
      "benchmark://cbench-v1/qsort", "benchmark://cbench-v1/dijkstra"};
  auto Pool = EnvPool::create(Opts);
  ASSERT_TRUE(Pool.isOk()) << Pool.status().toString();
  // Worker 0 cycles {crc32, qsort}; worker 1 cycles {sha, dijkstra}.
  EXPECT_EQ((*Pool)->nextBenchmark(0), "benchmark://cbench-v1/crc32");
  EXPECT_EQ((*Pool)->nextBenchmark(1), "benchmark://cbench-v1/sha");
  EXPECT_EQ((*Pool)->nextBenchmark(0), "benchmark://cbench-v1/qsort");
  EXPECT_EQ((*Pool)->nextBenchmark(1), "benchmark://cbench-v1/dijkstra");
  EXPECT_EQ((*Pool)->nextBenchmark(0), "benchmark://cbench-v1/crc32");
}

TEST(EnvPool, DatasetExpansion) {
  EnvPoolOptions Opts = smokePoolOptions(2);
  Opts.DatasetUri = "benchmark://cbench-v1";
  Opts.MaxDatasetBenchmarks = 6;
  auto Pool = EnvPool::create(Opts);
  ASSERT_TRUE(Pool.isOk()) << Pool.status().toString();
  std::string First = (*Pool)->nextBenchmark(0);
  EXPECT_EQ(First.rfind("benchmark://cbench-v1/", 0), 0u);

  EnvPoolOptions BadOpts = smokePoolOptions(1);
  BadOpts.DatasetUri = "benchmark://no-such-dataset";
  auto Bad = EnvPool::create(BadOpts);
  ASSERT_FALSE(Bad.isOk());
  EXPECT_EQ(Bad.status().code(), StatusCode::NotFound);
}

TEST(EnvPool, ObservationCacheDeduplicatesAcrossWorkers) {
  EnvPoolOptions Opts = smokePoolOptions(4);
  // All four workers repeatedly reset the same benchmark and request the
  // same Autophase observation of the same initial state.
  auto Pool = EnvPool::create(Opts);
  ASSERT_TRUE(Pool.isOk()) << Pool.status().toString();
  for (int Round = 0; Round < 3; ++Round)
    ASSERT_TRUE((*Pool)->resetAll().isOk());
  PoolStats Stats = (*Pool)->stats();
  EXPECT_GT(Stats.CacheHits, 0u);
  EXPECT_GT(Stats.CacheMisses, 0u);
}

TEST(EnvPool, FaultInjectedCollectLosesNoEpisodes) {
  // The acceptance scenario: a crashy shard fleet must still complete
  // every scheduled episode, with rewards identical to a fault-free run.
  constexpr size_t Episodes = 8;
  const std::vector<int> EpisodeActions = {0, 1, 2, 3, 0, 1};

  // Reference rewards from a fault-free single env.
  core::MakeOptions MO;
  MO.Benchmark = "benchmark://cbench-v1/crc32";
  MO.ObservationSpace = "none";
  MO.RewardSpace = "IrInstructionCount";
  auto Ref = core::make("llvm-v0", MO);
  ASSERT_TRUE(Ref.isOk());
  ASSERT_TRUE((*Ref)->reset().isOk());
  ASSERT_TRUE((*Ref)->step(EpisodeActions).isOk());
  const double ExpectedReward = (*Ref)->episodeReward();

  EnvPoolOptions Opts;
  Opts.EnvId = "llvm-v0";
  Opts.Make = MO;
  Opts.NumWorkers = 4;
  Opts.Broker.NumShards = 2; // Two envs share each crashing shard.
  Opts.Broker.MonitorIntervalMs = 5;
  Opts.Broker.Faults.CrashAfterOps = 9;
  auto Pool = EnvPool::create(Opts);
  ASSERT_TRUE(Pool.isOk()) << Pool.status().toString();

  std::vector<double> Rewards(Episodes, -1.0);
  Status S = (*Pool)->collect(
      Episodes,
      [&](size_t, size_t Episode, core::CompilerEnv &E,
          const service::Observation &) -> Status {
        CG_ASSIGN_OR_RETURN(core::StepResult R, E.step(EpisodeActions));
        (void)R;
        Rewards[Episode] = E.episodeReward();
        return Status::ok();
      });
  ASSERT_TRUE(S.isOk()) << S.toString();

  PoolStats Stats = (*Pool)->stats();
  EXPECT_EQ(Stats.EpisodesCompleted, Episodes); // No episode lost.
  for (size_t I = 0; I < Episodes; ++I)
    EXPECT_DOUBLE_EQ(Rewards[I], ExpectedReward) << "episode " << I;
  // The fleet really did crash and recover along the way.
  EXPECT_GE(Stats.EnvRecoveries + Stats.ShardRestarts, 1u);
}

TEST(EnvPool, ParallelRolloutCollectsFullTrajectories) {
  EnvPoolOptions Opts = smokePoolOptions(2);
  auto Pool = EnvPool::create(Opts);
  ASSERT_TRUE(Pool.isOk()) << Pool.status().toString();
  size_t NumActions = 0;
  {
    auto Obs = (*Pool)->resetAll();
    ASSERT_TRUE(Obs.isOk());
    NumActions = (*Pool)->env(0).actionSpace().size();
  }
  ASSERT_GT(NumActions, 0u);
  rl::PolicyFn Policy = [NumActions](const std::vector<float> &) {
    return std::vector<float>(NumActions, 0.0f); // Uniform.
  };
  auto Trajs = rl::collectEpisodes(**Pool, Policy, nullptr, /*MaxSteps=*/5,
                                   /*Episodes=*/6, /*Seed=*/7);
  ASSERT_TRUE(Trajs.isOk()) << Trajs.status().toString();
  ASSERT_EQ(Trajs->size(), 6u);
  for (const rl::Trajectory &T : *Trajs) {
    EXPECT_GT(T.length(), 0u);
    EXPECT_LE(T.length(), 5u);
    EXPECT_EQ(T.Observations.size(), T.Actions.size());
    EXPECT_EQ(T.Rewards.size(), T.Actions.size());
  }
}

} // namespace
