//===- tests/observation_delta_test.cpp - Wire-level deltas ----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The wire-delta contract: delta encode/apply round-trips, serialization of
// delta-carrying replies (and the legacy full-payload path), malformed-delta
// rejection, and the end-to-end epoch handshake through CompilerEnv —
// including equality with full recomputation, fork, and crash recovery.

#include "core/Registry.h"
#include "runtime/ObservationCache.h"
#include "service/CompilerService.h"
#include "service/Serialization.h"

#include <gtest/gtest.h>

using namespace compiler_gym;
using namespace compiler_gym::service;

namespace {

Observation intsObs(std::vector<int64_t> V, uint64_t Key = 0) {
  Observation O;
  O.Type = ObservationType::Int64List;
  O.Ints = std::move(V);
  O.StateKey = Key;
  return O;
}

Observation bytesObs(std::string S, uint64_t Key = 0) {
  Observation O;
  O.Type = ObservationType::Binary;
  O.Str = std::move(S);
  O.StateKey = Key;
  return O;
}

TEST(ObservationDelta, EligibilityMatchesPayloadKinds) {
  EXPECT_TRUE(deltaEligible(ObservationType::Int64List));
  EXPECT_TRUE(deltaEligible(ObservationType::DoubleList));
  EXPECT_TRUE(deltaEligible(ObservationType::String));
  EXPECT_TRUE(deltaEligible(ObservationType::Binary));
  EXPECT_FALSE(deltaEligible(ObservationType::Int64Value));
  EXPECT_FALSE(deltaEligible(ObservationType::DoubleValue));
}

TEST(ObservationDelta, EqualLengthChangedRunsRoundTrip) {
  std::vector<int64_t> BaseV(256, 7), FullV(256, 7);
  FullV[10] = 1;
  FullV[11] = 2;
  FullV[200] = 3;
  Observation Base = intsObs(BaseV), Full = intsObs(FullV);
  Observation Delta;
  ASSERT_TRUE(encodeObservationDelta(Base, Full, Delta));
  EXPECT_TRUE(Delta.IsDelta);
  EXPECT_LT(observationWireSize(Delta), observationWireSize(Full));
  // Two well-separated runs -> two segments.
  EXPECT_EQ(Delta.Segments.size(), 2u);
  auto Applied = applyObservationDelta(Base, Delta);
  ASSERT_TRUE(Applied.isOk()) << Applied.status().toString();
  EXPECT_EQ(Applied->Ints, FullV);
}

TEST(ObservationDelta, LengthChangeUsesPrefixSuffixWindow) {
  std::string BaseS(4000, 'a');
  std::string FullS = BaseS.substr(0, 1000) + "XYZ" + BaseS.substr(1200);
  Observation Base = bytesObs(BaseS), Full = bytesObs(FullS);
  Observation Delta;
  ASSERT_TRUE(encodeObservationDelta(Base, Full, Delta));
  ASSERT_EQ(Delta.Segments.size(), 1u);
  EXPECT_LT(Delta.Segments[0].Str.size(), 100u);
  auto Applied = applyObservationDelta(Base, Delta);
  ASSERT_TRUE(Applied.isOk());
  EXPECT_EQ(Applied->Str, FullS);
}

TEST(ObservationDelta, UnchangedPayloadYieldsEmptyDelta) {
  std::vector<int64_t> V(64, 5);
  Observation Base = intsObs(V), Full = intsObs(V);
  Observation Delta;
  ASSERT_TRUE(encodeObservationDelta(Base, Full, Delta));
  EXPECT_TRUE(Delta.Segments.empty());
  auto Applied = applyObservationDelta(Base, Delta);
  ASSERT_TRUE(Applied.isOk());
  EXPECT_EQ(Applied->Ints, V);
}

TEST(ObservationDelta, RefusesWhenNotSmallerOrMismatched) {
  // Tiny payloads: segment overhead exceeds the full payload.
  Observation Base = intsObs({1}), Full = intsObs({2});
  Observation Delta;
  EXPECT_FALSE(encodeObservationDelta(Base, Full, Delta));
  // Type mismatch.
  Observation S = bytesObs("abc");
  EXPECT_FALSE(encodeObservationDelta(Base, S, Delta));
  // Scalars are never delta-encoded.
  Observation A, B;
  A.Type = B.Type = ObservationType::Int64Value;
  A.IntValue = 1;
  B.IntValue = 2;
  EXPECT_FALSE(encodeObservationDelta(A, B, Delta));
}

TEST(ObservationDelta, RejectsMalformedSegments) {
  Observation Base = intsObs(std::vector<int64_t>(16, 1));
  Observation Delta;
  Delta.Type = ObservationType::Int64List;
  Delta.IsDelta = true;
  ObservationSegment S;
  S.Start = 20; // Beyond the base.
  S.DropCount = 1;
  S.Ints = {9};
  Delta.Segments = {S};
  EXPECT_FALSE(applyObservationDelta(Base, Delta).isOk());
  // Overlapping / out-of-order segments.
  ObservationSegment S1, S2;
  S1.Start = 4;
  S1.DropCount = 4;
  S1.Ints = {9, 9, 9, 9};
  S2.Start = 6; // Overlaps S1's dropped range.
  S2.DropCount = 1;
  S2.Ints = {8};
  Delta.Segments = {S1, S2};
  EXPECT_FALSE(applyObservationDelta(Base, Delta).isOk());
  // DropCount overflowing the base tail.
  ObservationSegment S3;
  S3.Start = 10;
  S3.DropCount = 10;
  Delta.Segments = {S3};
  EXPECT_FALSE(applyObservationDelta(Base, Delta).isOk());
  // A non-delta observation is rejected outright.
  EXPECT_FALSE(applyObservationDelta(Base, Base).isOk());
}

TEST(ObservationDelta, DeltaRepliesSurviveSerialization) {
  ReplyEnvelope Reply;
  Reply.Step.ObservationNames = {"Inst2vec", "Runtime"};
  Observation Delta;
  Delta.Type = ObservationType::DoubleList;
  Delta.IsDelta = true;
  Delta.StateKey = 0xABCD;
  Delta.BaseKey = 0x1234;
  ObservationSegment Seg;
  Seg.Start = 3;
  Seg.DropCount = 2;
  Seg.Doubles = {1.5, -2.5, 3.5};
  Delta.Segments = {Seg};
  Observation Full; // Legacy full payload rides in the same reply.
  Full.Type = ObservationType::DoubleValue;
  Full.DoubleValue = 0.25;
  Reply.Step.Observations = {Delta, Full};

  auto Decoded = decodeReply(encodeReply(Reply));
  ASSERT_TRUE(Decoded.isOk()) << Decoded.status().toString();
  ASSERT_EQ(Decoded->Step.Observations.size(), 2u);
  const Observation &D = Decoded->Step.Observations[0];
  EXPECT_TRUE(D.IsDelta);
  EXPECT_EQ(D.StateKey, 0xABCDu);
  EXPECT_EQ(D.BaseKey, 0x1234u);
  ASSERT_EQ(D.Segments.size(), 1u);
  EXPECT_EQ(D.Segments[0].Start, 3u);
  EXPECT_EQ(D.Segments[0].DropCount, 2u);
  EXPECT_EQ(D.Segments[0].Doubles, (std::vector<double>{1.5, -2.5, 3.5}));
  const Observation &F = Decoded->Step.Observations[1];
  EXPECT_FALSE(F.IsDelta);
  EXPECT_EQ(F.DoubleValue, 0.25);
}

TEST(ObservationDelta, BaseKeysSurviveRequestSerialization) {
  RequestEnvelope Req;
  Req.Kind = RequestKind::Step;
  Req.Step.SessionId = 9;
  Req.Step.ObservationSpaces = {"Inst2vec", "Programl"};
  Req.Step.ObservationBaseKeys = {0x11, 0x22};
  auto Decoded = decodeRequest(encodeRequest(Req));
  ASSERT_TRUE(Decoded.isOk());
  EXPECT_EQ(Decoded->Step.ObservationBaseKeys,
            (std::vector<uint64_t>{0x11, 0x22}));
  // Legacy requests without base keys still decode.
  Req.Step.ObservationBaseKeys.clear();
  auto Legacy = decodeRequest(encodeRequest(Req));
  ASSERT_TRUE(Legacy.isOk());
  EXPECT_TRUE(Legacy->Step.ObservationBaseKeys.empty());
}

// -- End-to-end: the epoch handshake through the env stack -------------------

core::MakeOptions plainLlvm(const std::string &Benchmark) {
  core::MakeOptions Opts;
  Opts.Benchmark = Benchmark;
  Opts.ObservationSpace = "none"; // "" would mean "the env default".
  Opts.RewardSpace = "none";
  return Opts;
}

TEST(ObservationDeltaE2E, RepeatedObservationsArriveAsDeltas) {
  auto Env = core::make("llvm-v0", plainLlvm("benchmark://cbench-v1/crc32"));
  ASSERT_TRUE(Env.isOk()) << Env.status().toString();
  ASSERT_TRUE((*Env)->reset().isOk());

  const std::vector<std::string> Spaces = {"Inst2vec", "Programl",
                                           "Autophase"};
  auto First = (*Env)->rawObservations(Spaces);
  ASSERT_TRUE(First.isOk()) << First.status().toString();
  EXPECT_EQ((*Env)->deltaRepliesReceived(), 0u) << "no base on first fetch";

  // Same state, advertised bases: the service answers "unchanged" deltas.
  uint64_t BytesBefore = (*Env)->client().wireBytesReceived();
  auto Second = (*Env)->rawObservations(Spaces);
  ASSERT_TRUE(Second.isOk());
  uint64_t UnchangedBytes = (*Env)->client().wireBytesReceived() - BytesBefore;
  EXPECT_EQ((*Env)->deltaRepliesReceived(), 3u);
  for (size_t I = 0; I < Spaces.size(); ++I) {
    EXPECT_EQ((*First)[I].Ints, (*Second)[I].Ints) << Spaces[I];
    EXPECT_EQ((*First)[I].Doubles, (*Second)[I].Doubles) << Spaces[I];
    EXPECT_EQ((*First)[I].Str, (*Second)[I].Str) << Spaces[I];
  }

  // Step, then observe: a real delta, reconstructed to exactly what a
  // delta-blind env computes from scratch.
  size_t NumActions = (*Env)->actionSpace().ActionNames.size();
  ASSERT_GT(NumActions, 0u);
  int Action = 0;
  for (size_t I = 0; I < NumActions; ++I)
    if ((*Env)->actionSpace().ActionNames[I] == "dce") {
      Action = static_cast<int>(I);
      break;
    }
  ASSERT_TRUE((*Env)->step({Action}).isOk());
  uint64_t DeltasBefore = (*Env)->deltaRepliesReceived();
  auto Third = (*Env)->rawObservations(Spaces);
  ASSERT_TRUE(Third.isOk());
  EXPECT_GT((*Env)->deltaRepliesReceived(), DeltasBefore);

  auto Fresh = core::make("llvm-v0", plainLlvm("benchmark://cbench-v1/crc32"));
  ASSERT_TRUE(Fresh.isOk());
  ASSERT_TRUE((*Fresh)->reset().isOk());
  ASSERT_TRUE((*Fresh)->step({Action}).isOk());
  auto Reference = (*Fresh)->rawObservations(Spaces);
  ASSERT_TRUE(Reference.isOk());
  for (size_t I = 0; I < Spaces.size(); ++I) {
    EXPECT_EQ((*Third)[I].Ints, (*Reference)[I].Ints) << Spaces[I];
    EXPECT_EQ((*Third)[I].Doubles, (*Reference)[I].Doubles) << Spaces[I];
    EXPECT_EQ((*Third)[I].Str, (*Reference)[I].Str) << Spaces[I];
  }

  // Wire accounting: the unchanged-state reply was far smaller than the
  // initial full fetch.
  uint64_t FullBytes = 0;
  {
    auto Env2 =
        core::make("llvm-v0", plainLlvm("benchmark://cbench-v1/crc32"));
    ASSERT_TRUE(Env2.isOk());
    ASSERT_TRUE((*Env2)->reset().isOk());
    uint64_t Before = (*Env2)->client().wireBytesReceived();
    ASSERT_TRUE((*Env2)->rawObservations(Spaces).isOk());
    FullBytes = (*Env2)->client().wireBytesReceived() - Before;
  }
  EXPECT_LT(UnchangedBytes, FullBytes / 4);
}

TEST(ObservationDeltaE2E, ForkedEnvInheritsBasesAndStaysCorrect) {
  auto Env = core::make("llvm-v0", plainLlvm("benchmark://cbench-v1/crc32"));
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  const std::vector<std::string> Spaces = {"Inst2vec", "Programl"};
  ASSERT_TRUE((*Env)->rawObservations(Spaces).isOk());

  auto Fork = (*Env)->fork();
  ASSERT_TRUE(Fork.isOk()) << Fork.status().toString();
  // The clone holds the parent's bases for the identical state: its first
  // fetch can already be an unchanged-delta.
  auto Obs = (*Fork)->rawObservations(Spaces);
  ASSERT_TRUE(Obs.isOk());
  EXPECT_GT((*Fork)->deltaRepliesReceived(), 0u);
  auto Parent = (*Env)->rawObservations(Spaces);
  ASSERT_TRUE(Parent.isOk());
  for (size_t I = 0; I < Spaces.size(); ++I) {
    EXPECT_EQ((*Obs)[I].Doubles, (*Parent)[I].Doubles);
    EXPECT_EQ((*Obs)[I].Str, (*Parent)[I].Str);
  }
}

TEST(ObservationDeltaE2E, DuplicateSpaceNamesInOneRequest) {
  // A request naming the same space twice can get two deltas against the
  // same advertised base (the second served from the shared cache after
  // the first updated the service's retained copy); reconstruction must
  // settle both against the pre-request base.
  auto Env = core::make("llvm-v0", plainLlvm("benchmark://cbench-v1/crc32"));
  ASSERT_TRUE(Env.isOk());
  (*Env)->client().service()->setObservationCache(
      std::make_shared<runtime::ObservationCache>());
  ASSERT_TRUE((*Env)->reset().isOk());
  const std::vector<std::string> Dup = {"Inst2vec", "Inst2vec"};
  ASSERT_TRUE((*Env)->rawObservations(Dup).isOk());
  for (int Step = 0; Step < 3; ++Step) {
    ASSERT_TRUE((*Env)->step({0}).isOk());
    auto Obs = (*Env)->rawObservations(Dup);
    ASSERT_TRUE(Obs.isOk()) << Obs.status().toString();
    EXPECT_EQ((*Obs)[0].Doubles, (*Obs)[1].Doubles);
  }
}

TEST(ObservationDeltaE2E, SurvivesCrashRecovery) {
  core::MakeOptions Opts = plainLlvm("benchmark://cbench-v1/crc32");
  Opts.Faults.CrashAfterOps = 6;
  auto Env = core::make("llvm-v0", Opts);
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  const std::vector<std::string> Spaces = {"Inst2vec", "Autophase"};
  ASSERT_TRUE((*Env)->rawObservations(Spaces).isOk());
  // Drive past the crash point; recovery replays and the content-addressed
  // bases stay coherent.
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE((*Env)->step({0}).isOk());
  EXPECT_GT((*Env)->serviceRecoveries(), 0u);
  auto Obs = (*Env)->rawObservations(Spaces);
  ASSERT_TRUE(Obs.isOk());

  core::MakeOptions Plain = plainLlvm("benchmark://cbench-v1/crc32");
  auto Fresh = core::make("llvm-v0", Plain);
  ASSERT_TRUE(Fresh.isOk());
  ASSERT_TRUE((*Fresh)->reset().isOk());
  for (int I = 0; I < 4; ++I)
    ASSERT_TRUE((*Fresh)->step({0}).isOk());
  auto Reference = (*Fresh)->rawObservations(Spaces);
  ASSERT_TRUE(Reference.isOk());
  for (size_t I = 0; I < Spaces.size(); ++I) {
    EXPECT_EQ((*Obs)[I].Ints, (*Reference)[I].Ints) << Spaces[I];
    EXPECT_EQ((*Obs)[I].Doubles, (*Reference)[I].Doubles) << Spaces[I];
  }
}

} // namespace
