//===- tests/datasets_test.cpp - Benchmark dataset tests -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "datasets/DatasetRegistry.h"
#include "datasets/CuratedSuites.h"
#include "ir/Parser.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace compiler_gym;
using namespace compiler_gym::datasets;

namespace {

TEST(BenchmarkUri, Parses) {
  std::string Dataset, Name;
  ASSERT_TRUE(parseBenchmarkUri("benchmark://cbench-v1/qsort", Dataset, Name)
                  .isOk());
  EXPECT_EQ(Dataset, "benchmark://cbench-v1");
  EXPECT_EQ(Name, "qsort");
  ASSERT_TRUE(parseBenchmarkUri("benchmark://cbench-v1", Dataset, Name)
                  .isOk());
  EXPECT_EQ(Name, "");
  EXPECT_FALSE(parseBenchmarkUri("http://nope", Dataset, Name).isOk());
}

TEST(DatasetRegistry, MatchesTableOne) {
  const DatasetRegistry &Reg = DatasetRegistry::instance();
  struct Expected {
    const char *Uri;
    uint64_t Count;
  };
  // Counts from Table I of the paper.
  const Expected Cases[] = {
      {"benchmark://anghabench-v1", 1041333},
      {"benchmark://blas-v0", 300},
      {"benchmark://cbench-v1", 23},
      {"benchmark://chstone-v0", 12},
      {"benchmark://clgen-v0", 996},
      {"benchmark://github-v0", 49738},
      {"benchmark://linux-v0", 13894},
      {"benchmark://mibench-v1", 40},
      {"benchmark://npb-v0", 122},
      {"benchmark://opencv-v0", 442},
      {"benchmark://poj104-v1", 49816},
      {"benchmark://tensorflow-v0", 1985},
  };
  for (const Expected &C : Cases) {
    const Dataset *D = Reg.dataset(C.Uri);
    ASSERT_NE(D, nullptr) << C.Uri;
    EXPECT_EQ(D->size(), C.Count) << C.Uri;
  }
  // Generators with 32-bit seed spaces.
  EXPECT_EQ(Reg.dataset("benchmark://csmith-v0")->size(), 1ull << 32);
  EXPECT_EQ(Reg.dataset("benchmark://llvm-stress-v0")->size(), 1ull << 32);
  EXPECT_EQ(Reg.dataset("benchmark://not-real-v9"), nullptr);
}

TEST(DatasetRegistry, OnlyCbenchAndCsmithAreRunnable) {
  const DatasetRegistry &Reg = DatasetRegistry::instance();
  for (const auto &D : Reg.datasets()) {
    bool ExpectRunnable = D->name() == "benchmark://cbench-v1" ||
                          D->name() == "benchmark://csmith-v0" ||
                          D->name() == "benchmark://loop_tool-v0";
    EXPECT_EQ(D->runnable(), ExpectRunnable) << D->name();
  }
}

TEST(DatasetRegistry, CbenchHasTheClassicMembers) {
  const Dataset *D =
      DatasetRegistry::instance().dataset("benchmark://cbench-v1");
  ASSERT_NE(D, nullptr);
  std::vector<std::string> Names = D->benchmarkNames(100);
  ASSERT_EQ(Names.size(), 23u);
  for (const char *Member : {"crc32", "qsort", "sha", "ghostscript",
                             "dijkstra", "jpeg-c"})
    EXPECT_NE(std::find(Names.begin(), Names.end(), Member), Names.end())
        << Member;
}

TEST(DatasetRegistry, ResolveFullAndDatasetOnlyUris) {
  const DatasetRegistry &Reg = DatasetRegistry::instance();
  auto B = Reg.resolve("benchmark://cbench-v1/crc32");
  ASSERT_TRUE(B.isOk());
  EXPECT_EQ(B->Uri, "benchmark://cbench-v1/crc32");
  EXPECT_TRUE(B->Runnable);
  EXPECT_FALSE(B->IrText.empty());

  auto First = Reg.resolve("benchmark://chstone-v0");
  ASSERT_TRUE(First.isOk());
  EXPECT_EQ(First->Uri, "benchmark://chstone-v0/adpcm");

  EXPECT_FALSE(Reg.resolve("benchmark://cbench-v1/not-a-benchmark").isOk());
  EXPECT_FALSE(Reg.resolve("benchmark://no-dataset/x").isOk());
}

TEST(DatasetRegistry, BenchmarksAreDeterministic) {
  const DatasetRegistry &Reg = DatasetRegistry::instance();
  auto A = Reg.resolve("benchmark://csmith-v0/12345");
  auto B = Reg.resolve("benchmark://csmith-v0/12345");
  ASSERT_TRUE(A.isOk());
  ASSERT_TRUE(B.isOk());
  EXPECT_EQ(A->IrText, B->IrText);
  auto C = Reg.resolve("benchmark://csmith-v0/12346");
  ASSERT_TRUE(C.isOk());
  EXPECT_NE(A->IrText, C->IrText);
}

class DatasetSanity : public ::testing::TestWithParam<const char *> {};

TEST_P(DatasetSanity, FirstBenchmarksParseAndVerify) {
  const Dataset *D = DatasetRegistry::instance().dataset(GetParam());
  ASSERT_NE(D, nullptr);
  std::vector<std::string> Names = D->benchmarkNames(3);
  ASSERT_FALSE(Names.empty());
  for (const std::string &Name : Names) {
    auto B = D->benchmark(Name);
    ASSERT_TRUE(B.isOk()) << Name;
    auto M = ir::parseModule(B->IrText);
    ASSERT_TRUE(M.isOk()) << Name << ": " << M.status().toString();
    EXPECT_TRUE(ir::verifyModule(**M).isOk()) << Name;
    EXPECT_GT((*M)->instructionCount(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllDatasets, DatasetSanity,
    ::testing::Values("benchmark://anghabench-v1", "benchmark://blas-v0",
                      "benchmark://cbench-v1", "benchmark://chstone-v0",
                      "benchmark://clgen-v0", "benchmark://csmith-v0",
                      "benchmark://github-v0", "benchmark://linux-v0",
                      "benchmark://llvm-stress-v0", "benchmark://mibench-v1",
                      "benchmark://npb-v0", "benchmark://opencv-v0",
                      "benchmark://poj104-v1", "benchmark://tensorflow-v0"));

TEST(DatasetRegistry, CbenchSizesSpreadWidely) {
  // Fig 6 requires a large spread between the smallest and largest cBench
  // programs (the paper reports 560x in median step time).
  const Dataset *D =
      DatasetRegistry::instance().dataset("benchmark://cbench-v1");
  auto Small = D->benchmark("crc32");
  auto Large = D->benchmark("ghostscript");
  ASSERT_TRUE(Small.isOk());
  ASSERT_TRUE(Large.isOk());
  auto SmallM = ir::parseModule(Small->IrText);
  auto LargeM = ir::parseModule(Large->IrText);
  ASSERT_TRUE(SmallM.isOk());
  ASSERT_TRUE(LargeM.isOk());
  double Ratio = static_cast<double>((*LargeM)->instructionCount()) /
                 static_cast<double>((*SmallM)->instructionCount());
  EXPECT_GT(Ratio, 10.0);
}

TEST(Dataset, RandomBenchmarkIsFromDataset) {
  const Dataset *D =
      DatasetRegistry::instance().dataset("benchmark://chstone-v0");
  Rng Gen(3);
  auto B = D->randomBenchmark(Gen);
  ASSERT_TRUE(B.isOk());
  EXPECT_EQ(B->Uri.rfind("benchmark://chstone-v0/", 0), 0u);
}

TEST(Dataset, LoopToolBenchmarksCarrySizes) {
  auto B = DatasetRegistry::instance().resolve(
      "benchmark://loop_tool-v0/1048576");
  ASSERT_TRUE(B.isOk());
  ASSERT_EQ(B->Inputs.size(), 1u);
  EXPECT_EQ(B->Inputs[0], 1048576);
  EXPECT_FALSE(DatasetRegistry::instance()
                   .resolve("benchmark://loop_tool-v0/-3")
                   .isOk());
}

} // namespace
