//===- tests/concurrency_test.cpp - Concurrency primitives -----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The concurrency primitives the parallel runtime leans on: util::ThreadPool
// (ordering, exception propagation, shutdown-while-busy) and the
// TransitionDatabase async writer thread (no lost records on close).

#include "core/TransitionDatabase.h"
#include "util/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <thread>

using namespace compiler_gym;

namespace {

// -- ThreadPool ----------------------------------------------------------------

TEST(ThreadPool, RunsEverySubmittedJobExactlyOnce) {
  ThreadPool Pool(4);
  constexpr int Jobs = 200;
  std::atomic<int> Counter{0};
  std::vector<std::future<void>> Futures;
  for (int I = 0; I < Jobs; ++I)
    Futures.push_back(Pool.submit([&Counter] { ++Counter; }));
  for (std::future<void> &F : Futures)
    F.get();
  EXPECT_EQ(Counter.load(), Jobs);
}

TEST(ThreadPool, SingleWorkerExecutesFifo) {
  ThreadPool Pool(1);
  std::vector<int> Order;
  std::vector<std::future<void>> Futures;
  for (int I = 0; I < 50; ++I)
    Futures.push_back(Pool.submit([&Order, I] { Order.push_back(I); }));
  for (std::future<void> &F : Futures)
    F.get();
  ASSERT_EQ(Order.size(), 50u);
  for (int I = 0; I < 50; ++I)
    EXPECT_EQ(Order[I], I);
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool Pool(2);
  std::future<void> Bad =
      Pool.submit([] { throw std::runtime_error("job failed"); });
  std::future<void> Good = Pool.submit([] {});
  EXPECT_THROW(Bad.get(), std::runtime_error);
  // A throwing job must not take its worker down.
  Good.get();
  std::future<void> After = Pool.submit([] {});
  After.get();
}

TEST(ThreadPool, WaitBlocksUntilQueueDrains) {
  ThreadPool Pool(2);
  std::atomic<int> Done{0};
  for (int I = 0; I < 16; ++I)
    Pool.submit([&Done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      ++Done;
    });
  Pool.wait();
  EXPECT_EQ(Done.load(), 16);
}

TEST(ThreadPool, ShutdownWhileBusyFinishesQueuedJobs) {
  std::atomic<int> Done{0};
  constexpr int Jobs = 32;
  {
    ThreadPool Pool(2);
    for (int I = 0; I < Jobs; ++I)
      Pool.submit([&Done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        ++Done;
      });
    // Destructor runs with most jobs still queued.
  }
  // Workers drain the whole queue before exiting.
  EXPECT_EQ(Done.load(), Jobs);
}

TEST(ThreadPool, ConcurrentSubmittersAreSafe) {
  ThreadPool Pool(4);
  std::atomic<int> Counter{0};
  std::vector<std::thread> Producers;
  for (int P = 0; P < 4; ++P)
    Producers.emplace_back([&Pool, &Counter] {
      std::vector<std::future<void>> Futures;
      for (int I = 0; I < 100; ++I)
        Futures.push_back(Pool.submit([&Counter] { ++Counter; }));
      for (std::future<void> &F : Futures)
        F.get();
    });
  for (std::thread &T : Producers)
    T.join();
  EXPECT_EQ(Counter.load(), 400);
}

// -- TransitionDatabase async writer -------------------------------------------

std::string tempDbDir(const char *Name) {
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() / Name;
  std::filesystem::remove_all(Dir);
  std::filesystem::create_directories(Dir);
  return Dir.string();
}

core::StepsRow stepsRow(int I) {
  core::StepsRow Row;
  Row.BenchmarkUri = "benchmark://cbench-v1/crc32";
  Row.Actions = {I, I + 1};
  Row.StateId = "state-" + std::to_string(I);
  Row.EndOfEpisode = (I % 5 == 4);
  Row.Rewards = {0.5 * I};
  return Row;
}

TEST(TransitionDatabase, CloseWithoutFlushLosesNoRecords) {
  std::string Dir = tempDbDir("cg_tdb_close_test");
  constexpr int Rows = 500;
  {
    core::TransitionDatabase Db(Dir);
    for (int I = 0; I < Rows; ++I) {
      Db.appendStep(stepsRow(I));
      core::ObservationsRow Obs;
      Obs.StateId = "state-" + std::to_string(I);
      Obs.InstCounts = {I};
      Db.appendObservation(Obs);
    }
    // No flush(): the destructor must drain the writer queue.
  }
  core::TransitionDatabase Reopened(Dir);
  auto Steps = Reopened.readSteps();
  ASSERT_TRUE(Steps.isOk()) << Steps.status().toString();
  ASSERT_EQ(Steps->size(), static_cast<size_t>(Rows));
  for (int I = 0; I < Rows; ++I) {
    EXPECT_EQ((*Steps)[I].StateId, "state-" + std::to_string(I));
    EXPECT_EQ((*Steps)[I].Actions, (std::vector<int>{I, I + 1}));
  }
  auto Obs = Reopened.readObservations();
  ASSERT_TRUE(Obs.isOk());
  EXPECT_EQ(Obs->size(), static_cast<size_t>(Rows));
  std::filesystem::remove_all(Dir);
}

TEST(TransitionDatabase, ConcurrentAppendersLoseNoRecords) {
  std::string Dir = tempDbDir("cg_tdb_mt_test");
  constexpr int Threads = 4;
  constexpr int RowsPerThread = 250;
  {
    core::TransitionDatabase Db(Dir);
    std::vector<std::thread> Writers;
    for (int T = 0; T < Threads; ++T)
      Writers.emplace_back([&Db, T] {
        for (int I = 0; I < RowsPerThread; ++I)
          Db.appendStep(stepsRow(T * RowsPerThread + I));
      });
    for (std::thread &T : Writers)
      T.join();
    ASSERT_TRUE(Db.flush().isOk());
    auto Steps = Db.readSteps();
    ASSERT_TRUE(Steps.isOk());
    EXPECT_EQ(Steps->size(), static_cast<size_t>(Threads * RowsPerThread));
  }
  std::filesystem::remove_all(Dir);
}

} // namespace
