//===- tests/net_test.cpp - Socket transport & framing ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The cross-process transport: frame codec strictness (including a
// malformed-frame corpus — the wire is a fuzz surface), socket loopback
// round trips over Unix-domain and TCP sockets, reconnect behavior, and
// the client retry policy (exponential backoff, reconnect accounting,
// typed backpressure).

#include "datasets/DatasetRegistry.h"
#include "envs/llvm/LlvmSession.h"
#include "net/Frame.h"
#include "net/NetServer.h"
#include "net/Socket.h"
#include "net/SocketTransport.h"
#include "service/CompilerService.h"
#include "service/Serialization.h"
#include "service/ServiceClient.h"
#include "util/Rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unistd.h>

using namespace compiler_gym;
using namespace compiler_gym::net;
using namespace compiler_gym::service;

namespace {

datasets::Benchmark testBenchmark() {
  auto B = datasets::DatasetRegistry::instance().resolve(
      "benchmark://cbench-v1/crc32");
  EXPECT_TRUE(B.isOk());
  return *B;
}

std::string uniqueSocketPath(const char *Tag) {
  static std::atomic<int> Counter{0};
  return "/tmp/cg_net_test_" + std::to_string(::getpid()) + "_" + Tag + "_" +
         std::to_string(Counter.fetch_add(1)) + ".sock";
}

// -- Frame codec --------------------------------------------------------------

TEST(Frame, RoundTripsPayload) {
  std::string Payload = "hello, framed world";
  std::string Wire = encodeFrame(Payload);
  EXPECT_EQ(Wire.size(), FrameHeaderBytes + Payload.size());
  FrameDecoder D;
  D.feed(Wire);
  std::string Out;
  ASSERT_EQ(D.next(Out), FrameDecoder::Result::Frame);
  EXPECT_EQ(Out, Payload);
  EXPECT_EQ(D.next(Out), FrameDecoder::Result::NeedMore);
  EXPECT_EQ(D.bufferedBytes(), 0u);
}

TEST(Frame, DecodesIncrementallyByteByByte) {
  std::string Wire = encodeFrame("incremental");
  FrameDecoder D;
  std::string Out;
  for (size_t I = 0; I + 1 < Wire.size(); ++I) {
    D.feed(&Wire[I], 1);
    ASSERT_EQ(D.next(Out), FrameDecoder::Result::NeedMore) << "at byte " << I;
  }
  D.feed(&Wire[Wire.size() - 1], 1);
  ASSERT_EQ(D.next(Out), FrameDecoder::Result::Frame);
  EXPECT_EQ(Out, "incremental");
}

TEST(Frame, DecodesSeveralFramesFromOneBuffer) {
  std::string Wire =
      encodeFrame("one") + encodeFrame("") + encodeFrame("three");
  FrameDecoder D;
  D.feed(Wire);
  std::string Out;
  ASSERT_EQ(D.next(Out), FrameDecoder::Result::Frame);
  EXPECT_EQ(Out, "one");
  ASSERT_EQ(D.next(Out), FrameDecoder::Result::Frame);
  EXPECT_EQ(Out, "");
  ASSERT_EQ(D.next(Out), FrameDecoder::Result::Frame);
  EXPECT_EQ(Out, "three");
  EXPECT_EQ(D.next(Out), FrameDecoder::Result::NeedMore);
}

// The malformed-frame corpus: every damage class must yield a typed error
// (and never UB — this test is part of the ASan job).
TEST(Frame, RejectsBadMagic) {
  std::string Wire = encodeFrame("payload");
  Wire[0] = 'X';
  FrameDecoder D;
  D.feed(Wire);
  std::string Out;
  ASSERT_EQ(D.next(Out), FrameDecoder::Result::Error);
  EXPECT_EQ(D.errorKind(), FrameDecoder::ErrorKind::BadMagic);
  EXPECT_FALSE(D.errorMessage().empty());
}

TEST(Frame, RejectsBadVersion) {
  std::string Wire = encodeFrame("payload");
  Wire[4] = 99;
  FrameDecoder D;
  D.feed(Wire);
  std::string Out;
  ASSERT_EQ(D.next(Out), FrameDecoder::Result::Error);
  EXPECT_EQ(D.errorKind(), FrameDecoder::ErrorKind::BadVersion);
}

TEST(Frame, RejectsOversizedLength) {
  std::string Wire = encodeFrame("payload");
  // Claim a 4GB-ish payload: must be rejected from the header alone,
  // before any buffering.
  Wire[8] = static_cast<char>(0xFF);
  Wire[9] = static_cast<char>(0xFF);
  Wire[10] = static_cast<char>(0xFF);
  Wire[11] = static_cast<char>(0x7F);
  FrameDecoder D;
  D.feed(Wire);
  std::string Out;
  ASSERT_EQ(D.next(Out), FrameDecoder::Result::Error);
  EXPECT_EQ(D.errorKind(), FrameDecoder::ErrorKind::Oversized);
}

TEST(Frame, RejectsCorruptPayload) {
  std::string Wire = encodeFrame("payload-to-corrupt");
  Wire[FrameHeaderBytes + 3] ^= 0x5A;
  FrameDecoder D;
  D.feed(Wire);
  std::string Out;
  ASSERT_EQ(D.next(Out), FrameDecoder::Result::Error);
  EXPECT_EQ(D.errorKind(), FrameDecoder::ErrorKind::BadCrc);
}

TEST(Frame, TruncatedFrameIsNeedMoreNeverError) {
  std::string Wire = encodeFrame("truncate me");
  for (size_t Len = 0; Len < Wire.size(); ++Len) {
    FrameDecoder D;
    D.feed(Wire.data(), Len);
    std::string Out;
    EXPECT_EQ(D.next(Out), FrameDecoder::Result::NeedMore)
        << "prefix of " << Len;
  }
}

TEST(Frame, ErrorPoisonsDecoder) {
  std::string Bad = encodeFrame("x");
  Bad[0] = 'Z';
  FrameDecoder D;
  D.feed(Bad);
  std::string Out;
  ASSERT_EQ(D.next(Out), FrameDecoder::Result::Error);
  // Feeding a perfectly valid frame afterwards must not resurrect the
  // stream: position is unknown after damage.
  D.feed(encodeFrame("valid"));
  EXPECT_EQ(D.next(Out), FrameDecoder::Result::Error);
  EXPECT_EQ(D.errorKind(), FrameDecoder::ErrorKind::BadMagic);
}

TEST(Frame, HonorsConfiguredCap) {
  std::string Payload(2048, 'p');
  std::string Wire = encodeFrame(Payload);
  FrameDecoder D(/*MaxFrameBytes=*/1024);
  D.feed(Wire);
  std::string Out;
  ASSERT_EQ(D.next(Out), FrameDecoder::Result::Error);
  EXPECT_EQ(D.errorKind(), FrameDecoder::ErrorKind::Oversized);
}

TEST(Frame, Crc32MatchesKnownVector) {
  // The standard IEEE check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

// -- Envelope decode hardening ------------------------------------------------
//
// The frame CRC catches random damage; these corpora check that an
// attacker-shaped payload (valid frame, hostile envelope) still fails
// with clean Status errors. Run under ASan in CI.

TEST(Serialization, TruncatedReplyPrefixesFailCleanly) {
  ReplyEnvelope Reply;
  Reply.Code = StatusCode::Ok;
  Reply.Step.ObservationNames = {"Autophase"};
  Observation O;
  O.Type = ObservationType::Int64List;
  O.Ints = {1, 2, 3, 4, 5, 6, 7, 8};
  O.StateKey = 0xFEED;
  Reply.Step.Observations = {O};
  Reply.Step.SessionStateKey = 0xFEED;
  std::string Wire = encodeReply(Reply);
  for (size_t Len = 0; Len < Wire.size(); ++Len) {
    auto Decoded = decodeReply(Wire.substr(0, Len));
    EXPECT_FALSE(Decoded.isOk()) << "prefix of " << Len << " decoded";
  }
}

TEST(Serialization, TruncatedRequestPrefixesFailCleanly) {
  RequestEnvelope Req;
  Req.Kind = RequestKind::Step;
  Req.AuthToken = "tenant-token";
  Req.Step.SessionId = 7;
  Req.Step.ObservationSpaces = {"Ir", "Autophase"};
  Req.Step.ObservationBaseKeys = {0xAB, 0xCD};
  std::string Wire = encodeRequest(Req);
  for (size_t Len = 0; Len < Wire.size(); ++Len) {
    auto Decoded = decodeRequest(Wire.substr(0, Len));
    EXPECT_FALSE(Decoded.isOk()) << "prefix of " << Len << " decoded";
  }
}

TEST(Serialization, MutatedReplyBytesNeverCrash) {
  ReplyEnvelope Reply;
  Reply.Code = StatusCode::Ok;
  Reply.Step.ObservationNames = {"Ir"};
  Observation O;
  O.Type = ObservationType::String;
  O.Str = "define i32 @main() { ret i32 0 }";
  Reply.Step.Observations = {O};
  std::string Wire = encodeReply(Reply);
  Rng Gen(0xC0FFEE);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    std::string Mutated = Wire;
    size_t Flips = 1 + Gen.bounded(4);
    for (size_t F = 0; F < Flips; ++F)
      Mutated[Gen.bounded(Mutated.size())] ^=
          static_cast<char>(1 + Gen.bounded(255));
    // Either it decodes (the mutation hit a payload byte) or it fails
    // with a Status — anything else (crash, OOB read) fails the ASan job.
    (void)decodeReply(Mutated);
  }
}

// -- Address parsing ----------------------------------------------------------

TEST(NetAddress, ParsesTcpAndUnix) {
  auto Tcp = NetAddress::parse("tcp:127.0.0.1:4242");
  ASSERT_TRUE(Tcp.isOk());
  EXPECT_EQ(Tcp->Kind, NetAddress::Family::Tcp);
  EXPECT_EQ(Tcp->Host, "127.0.0.1");
  EXPECT_EQ(Tcp->Port, 4242);
  EXPECT_EQ(Tcp->str(), "tcp:127.0.0.1:4242");

  auto Unix = NetAddress::parse("unix:/tmp/cg.sock");
  ASSERT_TRUE(Unix.isOk());
  EXPECT_EQ(Unix->Kind, NetAddress::Family::Unix);
  EXPECT_EQ(Unix->Path, "/tmp/cg.sock");
  EXPECT_EQ(Unix->str(), "unix:/tmp/cg.sock");
}

TEST(NetAddress, RejectsMalformedSpecs) {
  EXPECT_FALSE(NetAddress::parse("http://x").isOk());
  EXPECT_FALSE(NetAddress::parse("tcp:nohost").isOk());
  EXPECT_FALSE(NetAddress::parse("tcp:1.2.3.4:").isOk());
  EXPECT_FALSE(NetAddress::parse("tcp:1.2.3.4:99999").isOk());
  EXPECT_FALSE(NetAddress::parse("tcp:1.2.3.4:12ab").isOk());
  EXPECT_FALSE(NetAddress::parse("unix:").isOk());
}

// -- Loopback serving ---------------------------------------------------------

class NetLoopbackTest : public ::testing::Test {
protected:
  /// Serves a real CompilerService at \p Addr and returns a client over a
  /// dialed SocketTransport.
  void serveAt(const NetAddress &Addr) {
    envs::registerLlvmEnvironment();
    Service = std::make_shared<CompilerService>();
    auto ServerOr = NetServer::serveSync(
        Addr, [S = Service](const std::string &B) { return S->handle(B); });
    ASSERT_TRUE(ServerOr.isOk()) << ServerOr.status().toString();
    Server = std::move(*ServerOr);
  }

  std::shared_ptr<ServiceClient> makeClient(ClientOptions Opts = {}) {
    Channel = std::make_shared<SocketTransport>(Server->boundAddress());
    return std::make_shared<ServiceClient>(nullptr, Channel, Opts);
  }

  /// A full session: start, two steps, end. Asserts success everywhere.
  void runEpisode(ServiceClient &Client) {
    StartSessionRequest Start;
    Start.CompilerName = "llvm";
    Start.Bench = testBenchmark();
    auto Session = Client.startSession(Start);
    ASSERT_TRUE(Session.isOk()) << Session.status().toString();
    StepRequest Step;
    Step.SessionId = Session->SessionId;
    Action A;
    A.Index = 0;
    Step.Actions = {A};
    Step.ObservationSpaces = {"Autophase"};
    auto R1 = Client.step(Step);
    ASSERT_TRUE(R1.isOk()) << R1.status().toString();
    ASSERT_EQ(R1->Observations.size(), 1u);
    EXPECT_FALSE(R1->Observations[0].Ints.empty());
    auto R2 = Client.step(Step);
    ASSERT_TRUE(R2.isOk()) << R2.status().toString();
    EXPECT_TRUE(Client.endSession(Session->SessionId).isOk());
  }

  std::shared_ptr<CompilerService> Service;
  std::unique_ptr<NetServer> Server;
  std::shared_ptr<SocketTransport> Channel;
};

TEST_F(NetLoopbackTest, UnixDomainEpisode) {
  NetAddress Addr;
  Addr.Kind = NetAddress::Family::Unix;
  Addr.Path = uniqueSocketPath("uds");
  serveAt(Addr);
  auto Client = makeClient();
  EXPECT_TRUE(Client->heartbeat().isOk());
  runEpisode(*Client);
  EXPECT_EQ(Channel->connectCount(), 1u);
}

TEST_F(NetLoopbackTest, TcpEpisodeOnEphemeralPort) {
  auto Addr = NetAddress::parse("tcp:127.0.0.1:0");
  ASSERT_TRUE(Addr.isOk());
  serveAt(*Addr);
  EXPECT_NE(Server->boundAddress().Port, 0); // Port 0 resolved.
  auto Client = makeClient();
  runEpisode(*Client);
}

TEST_F(NetLoopbackTest, ManyConcurrentConnections) {
  auto Addr = NetAddress::parse("tcp:127.0.0.1:0");
  ASSERT_TRUE(Addr.isOk());
  serveAt(*Addr);
  constexpr int N = 8;
  std::vector<std::thread> Threads;
  std::atomic<int> Failures{0};
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([this, &Failures] {
      auto Ch = std::make_shared<SocketTransport>(Server->boundAddress());
      ServiceClient Client(nullptr, Ch);
      for (int K = 0; K < 5; ++K)
        if (!Client.heartbeat().isOk())
          Failures.fetch_add(1);
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
}

TEST_F(NetLoopbackTest, ReconnectsAfterServerRestart) {
  NetAddress Addr;
  Addr.Kind = NetAddress::Family::Unix;
  Addr.Path = uniqueSocketPath("restart");
  serveAt(Addr);
  // Generous retries: the client must ride through the restart below.
  ClientOptions Opts;
  Opts.MaxRetries = 6;
  Opts.RetryBackoffMs = 1;
  Opts.RetryBackoffMaxMs = 40;
  auto Client = makeClient(Opts);
  ASSERT_TRUE(Client->heartbeat().isOk());

  Server.reset(); // Connection dies with the server.
  std::thread Restarter([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    auto ServerOr = NetServer::serveSync(
        Addr, [S = Service](const std::string &B) { return S->handle(B); });
    ASSERT_TRUE(ServerOr.isOk());
    Server = std::move(*ServerOr);
  });
  Status S = Client->heartbeat();
  Restarter.join();
  EXPECT_TRUE(S.isOk()) << S.toString();
  EXPECT_GE(Channel->connectCount(), 2u);
  EXPECT_GE(Client->reconnectCount(), 1u);
}

TEST_F(NetLoopbackTest, GarbageOnTheWireDropsConnectionCleanly) {
  NetAddress Addr;
  Addr.Kind = NetAddress::Family::Unix;
  Addr.Path = uniqueSocketPath("garbage");
  serveAt(Addr);
  auto Conn = Socket::connect(Addr, 1000);
  ASSERT_TRUE(Conn.isOk());
  // Not a frame at all: the server must drop us, not hang or crash.
  ASSERT_TRUE(Conn->writeAll(std::string(64, 'Z'), 1000).isOk());
  auto Readback = Conn->readSome(1024, 2000);
  ASSERT_TRUE(Readback.isOk()) << Readback.status().toString();
  EXPECT_TRUE(Readback->empty()) << "expected EOF after garbage";
  // The server is still healthy for well-behaved clients.
  auto Client = makeClient();
  EXPECT_TRUE(Client->heartbeat().isOk());
}

TEST_F(NetLoopbackTest, ClientTimeoutSurfacesAsDeadline) {
  NetAddress Addr;
  Addr.Kind = NetAddress::Family::Unix;
  Addr.Path = uniqueSocketPath("slow");
  // A server that never replies.
  auto ServerOr = NetServer::serve(
      Addr, [](std::string, ReplyFn) { /* drop the request */ });
  ASSERT_TRUE(ServerOr.isOk());
  auto Transport = std::make_shared<SocketTransport>(Addr);
  auto Reply = Transport->roundTrip("ping", /*TimeoutMs=*/60);
  ASSERT_FALSE(Reply.isOk());
  EXPECT_EQ(Reply.status().code(), StatusCode::DeadlineExceeded);
}

// -- Client retry policy ------------------------------------------------------

namespace {

/// Returns canned failures for the first N calls, then delegates.
class ScriptedTransport : public Transport {
public:
  ScriptedTransport(std::shared_ptr<Transport> Inner,
                    std::vector<StatusOr<std::string>> Script)
      : Inner(std::move(Inner)), Script(std::move(Script)) {}

  StatusOr<std::string> roundTrip(const std::string &Bytes,
                                  int TimeoutMs) override {
    std::lock_guard<std::mutex> Lock(M);
    if (Cursor < Script.size())
      return Script[Cursor++];
    return Inner->roundTrip(Bytes, TimeoutMs);
  }

  size_t calls() const {
    std::lock_guard<std::mutex> Lock(M);
    return Cursor;
  }

private:
  std::shared_ptr<Transport> Inner;
  std::vector<StatusOr<std::string>> Script;
  size_t Cursor = 0;
  mutable std::mutex M;
};

} // namespace

TEST(ClientRetry, DisconnectFaultsAreRetriedAndCounted) {
  auto Service = std::make_shared<CompilerService>();
  auto Base = std::make_shared<QueueTransport>(
      [Service](const std::string &B) { return Service->handle(B); });
  TransportFaults Faults;
  Faults.DisconnectProbability = 1.0; // Every call: connection reset.
  auto Flaky = std::make_shared<FlakyTransport>(Base, Faults);
  ClientOptions Opts;
  Opts.MaxRetries = 3;
  Opts.RetryBackoffMs = 1;
  Opts.RetryBackoffMaxMs = 4;
  ServiceClient Client(Service, Flaky, Opts);
  Status S = Client.heartbeat();
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), StatusCode::Unavailable);
  EXPECT_EQ(Client.retryCount(), 3u);
  // Every failed attempt (initial + 3 retries) was channel loss.
  EXPECT_EQ(Client.reconnectCount(), 4u);
}

TEST(ClientRetry, PartialWriteFaultIsRetriedAsGarbled) {
  auto Service = std::make_shared<CompilerService>();
  auto Base = std::make_shared<QueueTransport>(
      [Service](const std::string &B) { return Service->handle(B); });
  TransportFaults Faults;
  Faults.PartialWriteProbability = 0.5;
  Faults.Seed = 0x7E57;
  auto Flaky = std::make_shared<FlakyTransport>(Base, Faults);
  ClientOptions Opts;
  Opts.MaxRetries = 8;
  Opts.RetryBackoffMs = 1;
  Opts.RetryBackoffMaxMs = 2;
  ServiceClient Client(Service, Flaky, Opts);
  // With p=0.5 and 9 attempts per call, 20 heartbeats all succeed with
  // overwhelming probability — and some retries must have happened.
  for (int I = 0; I < 20; ++I)
    ASSERT_TRUE(Client.heartbeat().isOk());
  EXPECT_GT(Client.retryCount(), 0u);
  EXPECT_EQ(Client.reconnectCount(), 0u); // Garbled is not channel loss.
}

TEST(ClientRetry, TypedBackpressureIsHonoredWithoutRecovery) {
  auto Service = std::make_shared<CompilerService>();
  auto Base = std::make_shared<QueueTransport>(
      [Service](const std::string &B) { return Service->handle(B); });
  // Two flow-control rejections, then the real service.
  ReplyEnvelope Busy;
  Busy.Code = StatusCode::Unavailable;
  Busy.ErrorMessage = "queue full";
  Busy.RetryAfterMs = 5;
  std::string BusyWire = encodeReply(Busy);
  auto Scripted = std::make_shared<ScriptedTransport>(
      Base, std::vector<StatusOr<std::string>>{BusyWire, BusyWire});
  ClientOptions Opts;
  Opts.MaxRetries = 3;
  Opts.RetryBackoffMs = 1;
  ServiceClient Client(Service, Scripted, Opts);
  Status S = Client.heartbeat();
  EXPECT_TRUE(S.isOk()) << S.toString();
  EXPECT_EQ(Client.retryCount(), 2u);
  // Backpressure is flow control, not channel loss: no reconnects, no
  // restarts.
  EXPECT_EQ(Client.reconnectCount(), 0u);
  EXPECT_EQ(Client.restartCount(), 0u);
}

TEST(ClientRetry, ExhaustedBackpressureSurfacesTypedReply) {
  auto Service = std::make_shared<CompilerService>();
  auto Base = std::make_shared<QueueTransport>(
      [Service](const std::string &B) { return Service->handle(B); });
  ReplyEnvelope Busy;
  Busy.Code = StatusCode::Unavailable;
  Busy.ErrorMessage = "tenant over quota";
  Busy.RetryAfterMs = 2;
  std::string BusyWire = encodeReply(Busy);
  auto Scripted = std::make_shared<ScriptedTransport>(
      Base,
      std::vector<StatusOr<std::string>>{BusyWire, BusyWire, BusyWire});
  ClientOptions Opts;
  Opts.MaxRetries = 2; // Fewer attempts than rejections.
  Opts.RetryBackoffMs = 1;
  ServiceClient Client(Service, Scripted, Opts);
  Status S = Client.heartbeat();
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), StatusCode::Unavailable);
  // The server's message, not a transport artifact.
  EXPECT_NE(S.message().find("tenant over quota"), std::string::npos);
}

TEST(ClientRetry, NullServiceRestartIsNoOp) {
  auto Service = std::make_shared<CompilerService>();
  auto Base = std::make_shared<QueueTransport>(
      [Service](const std::string &B) { return Service->handle(B); });
  ServiceClient Client(nullptr, Base);
  Client.restartService(); // Must not crash.
  EXPECT_EQ(Client.restartCount(), 0u);
  EXPECT_TRUE(Client.heartbeat().isOk());
}

} // namespace
