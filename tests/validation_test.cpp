//===- tests/validation_test.cpp - Replay validation & datasets -*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// §III-B2/3/4 end-to-end: state serialization, replay validation,
// semantics validation; the transition database (§III-F); and the
// leaderboard.

#include "core/Leaderboard.h"
#include "core/Registry.h"
#include "core/TransitionDatabase.h"
#include "core/Validation.h"

#include <gtest/gtest.h>

#include <filesystem>

using namespace compiler_gym;
using namespace compiler_gym::core;

namespace {

EnvState recordEpisode(const std::string &Benchmark,
                       const std::vector<int> &Actions) {
  MakeOptions Opts;
  Opts.Benchmark = Benchmark;
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "IrInstructionCount";
  auto Env = make("llvm-v0", Opts);
  EXPECT_TRUE(Env.isOk());
  EXPECT_TRUE((*Env)->reset().isOk());
  for (int A : Actions)
    EXPECT_TRUE((*Env)->step(A).isOk());
  return (*Env)->state();
}

TEST(Validation, CleanEpisodeValidates) {
  EnvState State = recordEpisode("benchmark://cbench-v1/crc32",
                                 {0, 3, 9, 14, 2});
  auto Result = validateState(State);
  ASSERT_TRUE(Result.isOk()) << Result.status().toString();
  EXPECT_TRUE(Result->RewardValidated) << Result->Error;
  EXPECT_TRUE(Result->HashValidated) << Result->Error;
  EXPECT_TRUE(Result->SemanticsChecked);
  EXPECT_TRUE(Result->SemanticsValidated) << Result->Error;
  EXPECT_TRUE(Result->ok());
}

TEST(Validation, TamperedRewardIsRejected) {
  EnvState State = recordEpisode("benchmark://cbench-v1/crc32", {0, 3, 9});
  State.CumulativeReward += 1000.0; // A falsified leaderboard claim.
  auto Result = validateState(State);
  ASSERT_TRUE(Result.isOk());
  EXPECT_FALSE(Result->RewardValidated);
  EXPECT_FALSE(Result->ok());
}

TEST(Validation, EmptyEpisodeValidates) {
  EnvState State = recordEpisode("benchmark://cbench-v1/sha", {});
  auto Result = validateState(State);
  ASSERT_TRUE(Result.isOk());
  EXPECT_TRUE(Result->ok()) << Result->Error;
}

TEST(EnvStateText, RoundTripAndErrors) {
  EnvState State;
  State.EnvId = "llvm-v0";
  State.BenchmarkUri = "benchmark://cbench-v1/crc32";
  State.RewardSpace = "IrInstructionCount";
  State.Actions = {1, 2, 3};
  State.CumulativeReward = 12.5;
  auto Parsed = EnvState::deserialize(State.serialize());
  ASSERT_TRUE(Parsed.isOk());
  EXPECT_EQ(*Parsed, State);

  EXPECT_FALSE(EnvState::deserialize("not enough fields").isOk());
  EXPECT_FALSE(
      EnvState::deserialize("llvm-v0|uri|r|1.0|2,x,3").isOk());
}

// -- Transition database -------------------------------------------------------

class TransitionDbTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = ::testing::TempDir() + "/cg_tdb_" +
          std::to_string(reinterpret_cast<uintptr_t>(this));
    std::filesystem::remove_all(Dir);
  }
  void TearDown() override { std::filesystem::remove_all(Dir); }
  std::string Dir;
};

TEST_F(TransitionDbTest, LogsEpisodesAndBuildsTransitions) {
  TransitionDatabase Db(Dir);
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "IrInstructionCount";
  auto EnvPtr = make("llvm-v0", Opts);
  ASSERT_TRUE(EnvPtr.isOk());

  auto Logger = std::make_unique<TransitionLogger>(
      std::move(*EnvPtr), &Db, [](Env &E) {
        auto Hash = E.observation()["IrHash"];
        return Hash.isOk() ? Hash->raw().Str : std::string("?");
      });
  Logger->setBenchmarkUri("benchmark://cbench-v1/crc32");

  ASSERT_TRUE(Logger->reset().isOk());
  for (int A : {0, 5, 9})
    ASSERT_TRUE(Logger->step(A).isOk());
  ASSERT_TRUE(Db.flush().isOk());
  ASSERT_TRUE(Db.buildTransitions().isOk());

  auto Steps = Db.readSteps();
  ASSERT_TRUE(Steps.isOk());
  ASSERT_EQ(Steps->size(), 4u); // Initial state + 3 steps.
  EXPECT_TRUE(Steps->front().Actions.empty());
  EXPECT_EQ(Steps->back().Actions, (std::vector<int>{0, 5, 9}));
  EXPECT_EQ(Steps->back().BenchmarkUri, "benchmark://cbench-v1/crc32");

  auto Obs = Db.readObservations();
  ASSERT_TRUE(Obs.isOk());
  EXPECT_LE(Obs->size(), 4u); // De-duplicated by state id.
  for (const auto &Row : *Obs) {
    EXPECT_EQ(Row.InstCounts.size(), 70u);
    EXPECT_EQ(Row.Autophase.size(), 56u);
    EXPECT_FALSE(Row.CompressedIr.empty());
  }

  auto Trans = Db.readTransitions();
  ASSERT_TRUE(Trans.isOk());
  EXPECT_EQ(Trans->size(), 3u);
  // Transition chain links consistently.
  EXPECT_EQ((*Trans)[0].NextStateId, (*Trans)[1].StateId);
  EXPECT_EQ((*Trans)[1].NextStateId, (*Trans)[2].StateId);
  EXPECT_EQ((*Trans)[0].Action, 0);
  EXPECT_EQ((*Trans)[1].Action, 5);
}

TEST_F(TransitionDbTest, DeduplicatesRepeatedStates) {
  TransitionDatabase Db(Dir);
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "none";
  auto EnvPtr = make("llvm-v0", Opts);
  ASSERT_TRUE(EnvPtr.isOk());
  auto Logger = std::make_unique<TransitionLogger>(
      std::move(*EnvPtr), &Db, [](Env &E) {
        auto Hash = E.observation()["IrHash"];
        return Hash.isOk() ? Hash->raw().Str : std::string("?");
      });
  // Two identical episodes: states repeat, observations dedup. Use
  // mem2reg so the step provably changes the module state.
  ASSERT_TRUE(Logger->reset().isOk());
  int Mem2Reg = -1;
  {
    const auto &Names = Logger->actionSpace().ActionNames;
    for (size_t I = 0; I < Names.size(); ++I)
      if (Names[I] == "mem2reg")
        Mem2Reg = static_cast<int>(I);
    ASSERT_GE(Mem2Reg, 0);
  }
  for (int Episode = 0; Episode < 2; ++Episode) {
    ASSERT_TRUE(Logger->reset().isOk());
    ASSERT_TRUE(Logger->step(Mem2Reg).isOk());
  }
  ASSERT_TRUE(Db.buildTransitions().isOk());
  auto Steps = Db.readSteps();
  auto Obs = Db.readObservations();
  auto Trans = Db.readTransitions();
  ASSERT_TRUE(Steps.isOk());
  ASSERT_TRUE(Obs.isOk());
  ASSERT_TRUE(Trans.isOk());
  EXPECT_EQ(Steps->size(), 5u); // Probe reset + 2 x (reset + step).
  EXPECT_EQ(Obs->size(), 2u);   // Unique states only.
  EXPECT_EQ(Trans->size(), 1u); // Identical transition deduped.
}

TEST_F(TransitionDbTest, SurvivesPayloadEscaping) {
  TransitionDatabase Db(Dir);
  ObservationsRow Row;
  Row.StateId = "abc";
  Row.CompressedIr = "line1\nline2\twith\ttabs\\and\\slashes";
  Db.appendObservation(Row);
  ASSERT_TRUE(Db.flush().isOk());
  auto Obs = Db.readObservations();
  ASSERT_TRUE(Obs.isOk());
  ASSERT_EQ(Obs->size(), 1u);
  EXPECT_EQ((*Obs)[0].CompressedIr, Row.CompressedIr);
}

// -- Leaderboard ------------------------------------------------------------------

TEST(LeaderboardTest, SubmitRankAndValidate) {
  std::string Path = ::testing::TempDir() + "/cg_leaderboard_test.csv";
  std::filesystem::remove(Path);
  Leaderboard Board(Path);

  EnvState Good = recordEpisode("benchmark://cbench-v1/crc32", {0, 3, 9});
  LeaderboardEntry E1;
  E1.Technique = "random-search";
  E1.State = Good;
  E1.WalltimeSeconds = 1.5;
  auto V = validateState(Good);
  ASSERT_TRUE(V.isOk());
  E1.Validated = V->ok();
  ASSERT_TRUE(Board.submit(E1).isOk());

  EnvState Weaker = Good;
  Weaker.CumulativeReward -= 5.0;
  Weaker.Actions.pop_back();
  LeaderboardEntry E2;
  E2.Technique = "greedy";
  E2.State = Weaker;
  ASSERT_TRUE(Board.submit(E2).isOk());

  auto Ranked = Board.ranking("benchmark://cbench-v1/crc32");
  ASSERT_TRUE(Ranked.isOk());
  ASSERT_EQ(Ranked->size(), 2u);
  EXPECT_EQ((*Ranked)[0].Technique, "random-search");
  EXPECT_TRUE((*Ranked)[0].Validated);
  std::filesystem::remove(Path);
}

} // namespace
