//===- tests/fork_snapshot_test.cpp - COW fork & snapshot recovery -*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The copy-on-write fork/recovery subsystem end-to-end: Module::share()
// structural sharing and pass-layer COW isolation, the content-addressed
// SnapshotStore, fork-vs-replay equivalence along divergent action
// sequences, replay-free crash recovery (asserted through the
// cg_env_replayed_actions_total counter), and EnvPool candidate fan-out.
// The file runs under both the ASan (COW isolation: a leaked share is a
// use-after-free factory) and TSan (concurrent rebases from one parent)
// CI jobs.

#include "core/Registry.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Snapshot.h"
#include "passes/PassManager.h"
#include "runtime/EnvPool.h"
#include "telemetry/MetricsRegistry.h"

#include <gtest/gtest.h>

using namespace compiler_gym;
using namespace compiler_gym::ir;

namespace {

std::unique_ptr<Module> parse(const std::string &Text) {
  auto M = parseModule(Text);
  EXPECT_TRUE(M.isOk()) << M.status().toString();
  return M.isOk() ? M.takeValue() : nullptr;
}

/// A module constfold will definitely rewrite.
std::unique_ptr<Module> foldableModule() {
  return parse(R"(module "t"
func @main() -> i64 {
entry:
  %a = add i64 i64 2, i64 3
  %b = mul i64 i64 %a, i64 4
  %c = sub i64 i64 %b, i64 20
  ret i64 %c
}
)");
}

uint64_t replayedActions() {
  return telemetry::MetricsRegistry::global()
      .counter("cg_env_replayed_actions_total")
      .value();
}

uint64_t snapshotHits() {
  return telemetry::MetricsRegistry::global()
      .counter("cg_snapshot_store_hits_total", {{"outcome", "hit"}})
      .value();
}

// -- Module structural sharing -------------------------------------------------

TEST(ModuleShare, ShareAliasesFunctionPayloads) {
  auto M = foldableModule();
  auto S = M->share();
  EXPECT_EQ(printModule(*M), printModule(*S));
  EXPECT_EQ(M->hash(), S->hash());
  ASSERT_EQ(S->functions().size(), M->functions().size());
  // The same payload object, not a deep copy — and both sides know it.
  EXPECT_EQ(S->functions()[0].get(), M->functions()[0].get());
  EXPECT_TRUE(M->isFunctionShared(0));
  EXPECT_TRUE(S->isFunctionShared(0));
}

TEST(ModuleShare, PassMutationCowIsolatesParentAndSiblings) {
  auto M = foldableModule();
  const std::string Before = printModule(*M);
  auto S1 = M->share();
  auto S2 = M->share();
  // Mutating S1 through the pass layer copy-on-writes its function; the
  // parent and the sibling share must be bit-identical afterwards.
  auto Changed = passes::runPass(*S1, "constfold");
  ASSERT_TRUE(Changed.isOk());
  EXPECT_TRUE(*Changed);
  EXPECT_NE(printModule(*S1), Before);
  EXPECT_EQ(printModule(*M), Before);
  EXPECT_EQ(printModule(*S2), Before);
  // S1 detached its copy; M and S2 still alias the original payload.
  EXPECT_NE(S1->functions()[0].get(), M->functions()[0].get());
  EXPECT_EQ(S2->functions()[0].get(), M->functions()[0].get());
}

TEST(ModuleShare, NoopPassKeepsPayloadShared) {
  auto M = foldableModule();
  auto S = M->share();
  // mem2reg has nothing to do here: the COW barrier must revert its
  // speculative unshare so the payload stays aliased (no silent deep copy
  // on every no-op pass).
  auto Changed = passes::runPass(*S, "mem2reg");
  ASSERT_TRUE(Changed.isOk());
  EXPECT_FALSE(*Changed);
  EXPECT_EQ(S->functions()[0].get(), M->functions()[0].get());
}

// -- SnapshotStore -------------------------------------------------------------

TEST(SnapshotStore, RoundTripsFrozenShares) {
  SnapshotStore Store(/*MaxEntries=*/8, /*MaxBytes=*/1 << 20);
  auto M = foldableModule();
  Store.put(42, M->share(), "benchmark://t/main");
  auto Snap = Store.get(42);
  ASSERT_TRUE(Snap.has_value());
  EXPECT_EQ(Snap->BenchmarkUri, "benchmark://t/main");
  EXPECT_EQ(printModule(*Snap->Mod), printModule(*M));
  // A restore is a share of the frozen module: mutating it must not
  // disturb the stored snapshot.
  auto Restored = Snap->Mod->share();
  ASSERT_TRUE(passes::runPass(*Restored, "constfold").isOk());
  EXPECT_EQ(printModule(*Store.get(42)->Mod), printModule(*M));
  EXPECT_FALSE(Store.get(7).has_value());
}

TEST(SnapshotStore, LruEvictsOldestEntry) {
  SnapshotStore Store(/*MaxEntries=*/2, /*MaxBytes=*/1 << 20);
  auto M = foldableModule();
  Store.put(1, M->share(), "a");
  Store.put(2, M->share(), "b");
  ASSERT_TRUE(Store.get(1).has_value()); // Refresh 1: 2 is now oldest.
  Store.put(3, M->share(), "c");
  EXPECT_EQ(Store.entries(), 2u);
  EXPECT_TRUE(Store.get(1).has_value());
  EXPECT_FALSE(Store.get(2).has_value());
  EXPECT_TRUE(Store.get(3).has_value());
}

// -- Environment-level fork ----------------------------------------------------

std::unique_ptr<core::CompilerEnv> makeLlvm(const std::string &Obs = "none") {
  core::MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = Obs;
  Opts.RewardSpace = "IrInstructionCount";
  auto Env = core::make("llvm-v0", Opts);
  EXPECT_TRUE(Env.isOk()) << Env.status().toString();
  return Env.takeValue();
}

std::string irHash(core::CompilerEnv &E) {
  auto H = E.observation()["IrHash"];
  EXPECT_TRUE(H.isOk()) << H.status().toString();
  return H.isOk() ? H->raw().Str : std::string();
}

TEST(EnvFork, DivergentForksMatchFreshReplay) {
  const std::vector<int> Prefix = {0, 1, 2};
  const std::vector<std::vector<int>> Suffixes = {{3}, {4, 1}, {2, 2, 0}};

  auto Parent = makeLlvm();
  ASSERT_TRUE(Parent->reset().isOk());
  ASSERT_TRUE(Parent->step(Prefix).isOk());

  for (const std::vector<int> &Suffix : Suffixes) {
    auto Fork = Parent->fork();
    ASSERT_TRUE(Fork.isOk()) << Fork.status().toString();
    ASSERT_TRUE((*Fork)->step(Suffix).isOk());

    // A fresh env replaying prefix + suffix must land on the same state,
    // reward and episode history.
    auto Ref = makeLlvm();
    ASSERT_TRUE(Ref->reset().isOk());
    ASSERT_TRUE(Ref->step(Prefix).isOk());
    ASSERT_TRUE(Ref->step(Suffix).isOk());
    EXPECT_EQ(irHash(**Fork), irHash(*Ref));
    EXPECT_DOUBLE_EQ((*Fork)->episodeReward(), Ref->episodeReward());
    EXPECT_EQ((*Fork)->episodeLength(), Ref->episodeLength());
    EXPECT_EQ((*Fork)->state().Actions, Ref->state().Actions);
  }
}

TEST(EnvFork, ForkMutationNeverLeaksToParentOrSiblings) {
  auto Parent = makeLlvm();
  ASSERT_TRUE(Parent->reset().isOk());
  ASSERT_TRUE(Parent->step({0, 1}).isOk());
  const std::string ParentHash = irHash(*Parent);

  auto A = Parent->fork();
  auto B = Parent->fork();
  ASSERT_TRUE(A.isOk());
  ASSERT_TRUE(B.isOk());
  // Stepping one fork must not move the parent or the sibling.
  ASSERT_TRUE((*A)->step({2, 3, 4}).isOk());
  EXPECT_EQ(irHash(*Parent), ParentHash);
  EXPECT_EQ(irHash(**B), ParentHash);
  // And divergence in the sibling stays out of the parent and the fork.
  const std::string AHash = irHash(**A);
  ASSERT_TRUE((*B)->step({5}).isOk());
  EXPECT_EQ(irHash(*Parent), ParentHash);
  EXPECT_EQ(irHash(**A), AHash);
}

// -- Replay-free crash recovery ------------------------------------------------

TEST(Recovery, CrashRecoveryRestoresSnapshotWithZeroReplayedActions) {
  // Fault-free reference for the final state.
  auto Ref = makeLlvm();
  ASSERT_TRUE(Ref->reset().isOk());
  for (int Step = 0; Step < 10; ++Step)
    ASSERT_TRUE(Ref->step(Step % 5).isOk());

  core::MakeOptions Crashy;
  Crashy.Benchmark = "benchmark://cbench-v1/crc32";
  Crashy.ObservationSpace = "none";
  Crashy.RewardSpace = "IrInstructionCount";
  Crashy.Faults.CrashAfterOps = 7;
  auto Env = core::make("llvm-v0", Crashy);
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());

  const uint64_t ReplayedBefore = replayedActions();
  const uint64_t HitsBefore = snapshotHits();
  for (int Step = 0; Step < 10; ++Step) {
    auto R = (*Env)->step(Step % 5);
    ASSERT_TRUE(R.isOk()) << "step " << Step << ": "
                          << R.status().toString();
  }
  // The service really crashed, and recovery restored the last committed
  // state from its snapshot instead of replaying the episode.
  EXPECT_GE((*Env)->serviceRecoveries(), 1u);
  EXPECT_GT(snapshotHits(), HitsBefore);
  EXPECT_EQ(replayedActions(), ReplayedBefore);
  // Bit-identical to the uninterrupted episode.
  EXPECT_EQ(irHash(**Env), irHash(*Ref));
  EXPECT_DOUBLE_EQ((*Env)->episodeReward(), Ref->episodeReward());
}

// -- EnvPool candidate fan-out -------------------------------------------------

runtime::EnvPoolOptions fanoutPoolOptions(size_t Workers) {
  runtime::EnvPoolOptions Opts;
  Opts.EnvId = "llvm-v0";
  Opts.Make.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.Make.ObservationSpace = "none";
  Opts.Make.RewardSpace = "IrInstructionCount";
  Opts.NumWorkers = Workers;
  Opts.Broker.MonitorIntervalMs = 0;
  return Opts;
}

TEST(EnvPool, EvaluateContinuationsMatchesSequentialReference) {
  const std::vector<int> Prefix = {0, 1};
  const std::vector<std::vector<int>> Candidates = {
      {2}, {3}, {4, 1}, {}, {0, 2, 3}};

  // Expected deltas from fresh envs replaying prefix + candidate.
  std::vector<double> Expected;
  for (const std::vector<int> &Cand : Candidates) {
    auto Ref = makeLlvm();
    ASSERT_TRUE(Ref->reset().isOk());
    ASSERT_TRUE(Ref->step(Prefix).isOk());
    const double Base = Ref->episodeReward();
    if (!Cand.empty())
      ASSERT_TRUE(Ref->step(Cand).isOk());
    Expected.push_back(Ref->episodeReward() - Base);
  }

  auto Pool = runtime::EnvPool::create(fanoutPoolOptions(3));
  ASSERT_TRUE(Pool.isOk()) << Pool.status().toString();
  ASSERT_TRUE((*Pool)->resetAll().isOk());
  core::CompilerEnv &Parent = (*Pool)->env(0);
  ASSERT_TRUE(Parent.step(Prefix).isOk());
  const std::string ParentHash = irHash(Parent);

  auto Deltas = (*Pool)->evaluateContinuations(Parent, Candidates);
  ASSERT_TRUE(Deltas.isOk()) << Deltas.status().toString();
  ASSERT_EQ(Deltas->size(), Candidates.size());
  for (size_t I = 0; I < Candidates.size(); ++I)
    EXPECT_DOUBLE_EQ((*Deltas)[I], Expected[I]) << "candidate " << I;

  // The fan-out never stepped or mutated the parent.
  EXPECT_EQ(Parent.episodeLength(), Prefix.size());
  EXPECT_EQ(irHash(Parent), ParentHash);
}

TEST(EnvPool, FanoutOnColocatedShardsIsRaceFree) {
  // Two envs per shard plus an external (non-pool) parent: every worker
  // rebases from the same parent concurrently — the TSan target for the
  // SnapshotStore and the shared COW payloads.
  auto Parent = makeLlvm();
  ASSERT_TRUE(Parent->reset().isOk());
  ASSERT_TRUE(Parent->step({0, 1, 2}).isOk());

  runtime::EnvPoolOptions Opts = fanoutPoolOptions(4);
  Opts.Broker.NumShards = 2;
  auto Pool = runtime::EnvPool::create(Opts);
  ASSERT_TRUE(Pool.isOk()) << Pool.status().toString();

  std::vector<std::vector<int>> Candidates;
  for (int I = 0; I < 12; ++I)
    Candidates.push_back({I % 5, (I + 2) % 5});
  auto Deltas = (*Pool)->evaluateContinuations(*Parent, Candidates);
  ASSERT_TRUE(Deltas.isOk()) << Deltas.status().toString();
  ASSERT_EQ(Deltas->size(), Candidates.size());
  // Identical candidates must score identically regardless of worker.
  for (size_t I = 5; I < Candidates.size(); ++I)
    EXPECT_DOUBLE_EQ((*Deltas)[I], (*Deltas)[I - 5]) << "candidate " << I;
  EXPECT_EQ(Parent->episodeLength(), 3u);
}

} // namespace
