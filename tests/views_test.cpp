//===- tests/views_test.cpp - Typed views API tests ------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The §III-B views frontend: typed SpaceInfo descriptors, checked
// ObservationValue accessors, epoch-keyed view caching (including across
// fork()), derived observation spaces, per-space reward bookkeeping, and
// the vectorized multi-space step.

#include "core/Registry.h"
#include "runtime/EnvPool.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace compiler_gym;
using namespace compiler_gym::core;

namespace {

std::unique_ptr<CompilerEnv> makeLlvm(const std::string &Obs = "none",
                                      const std::string &Reward = "none") {
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = Obs;
  Opts.RewardSpace = Reward;
  auto Env = make("llvm-v0", Opts);
  EXPECT_TRUE(Env.isOk()) << Env.status().toString();
  return Env.takeValue();
}

// -- Typed descriptors --------------------------------------------------------

TEST(Spaces, BackendPublishesTypedDescriptors) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());

  const SpaceInfo *Autophase =
      Env->spaceRegistry().observationSpace("Autophase");
  ASSERT_NE(Autophase, nullptr);
  EXPECT_EQ(Autophase->Type, service::ObservationType::Int64List);
  EXPECT_EQ(Autophase->Shape, (std::vector<int64_t>{56}));
  EXPECT_DOUBLE_EQ(Autophase->RangeMin, 0.0);
  EXPECT_TRUE(Autophase->Deterministic);
  EXPECT_FALSE(Autophase->PlatformDependent);
  EXPECT_FALSE(Autophase->Derived);

  const SpaceInfo *Runtime = Env->spaceRegistry().observationSpace("Runtime");
  ASSERT_NE(Runtime, nullptr);
  EXPECT_FALSE(Runtime->Deterministic);
  EXPECT_TRUE(Runtime->PlatformDependent);

  // The catalogue lists every backend space.
  std::vector<SpaceInfo> All = Env->observation().spaces();
  EXPECT_GE(All.size(), 12u);
  EXPECT_EQ(Env->spaceRegistry().observationSpace("NotASpace"), nullptr);
}

TEST(Spaces, TypedAccessorMismatchesAreErrors) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());

  auto Autophase = Env->observation()["Autophase"];
  ASSERT_TRUE(Autophase.isOk());
  EXPECT_TRUE(Autophase->asInt64List().isOk());
  EXPECT_EQ(Autophase->asString().status().code(),
            StatusCode::InvalidArgument);
  EXPECT_EQ(Autophase->asInt64().status().code(),
            StatusCode::InvalidArgument);
  EXPECT_EQ(Autophase->asScalar().status().code(),
            StatusCode::InvalidArgument);

  auto Ir = Env->observation()["Ir"];
  ASSERT_TRUE(Ir.isOk());
  EXPECT_TRUE(Ir->asString().isOk());
  EXPECT_EQ(Ir->asInt64List().status().code(), StatusCode::InvalidArgument);

  auto Count = Env->observation()["IrInstructionCount"];
  ASSERT_TRUE(Count.isOk());
  EXPECT_TRUE(Count->asInt64().isOk());
  EXPECT_TRUE(Count->asScalar().isOk());
  EXPECT_EQ(Count->asDouble().status().code(), StatusCode::InvalidArgument);
  EXPECT_EQ(*Count->asScalar(), static_cast<double>(*Count->asInt64()));
}

// -- View caching -------------------------------------------------------------

TEST(Views, RepeatQueriesAreCacheHitsUntilNextAction) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());

  uint64_t Before = Env->client().rpcCount();
  auto First = Env->observation()["InstCount"];
  ASSERT_TRUE(First.isOk());
  EXPECT_EQ(Env->client().rpcCount(), Before + 1);

  // Same state: served from the view cache, no RPC.
  uint64_t Hits = Env->observation().cacheHits();
  auto Second = Env->observation()["InstCount"];
  ASSERT_TRUE(Second.isOk());
  EXPECT_EQ(Env->client().rpcCount(), Before + 1);
  EXPECT_EQ(Env->observation().cacheHits(), Hits + 1);

  // An action advances the state epoch: the next query re-fetches.
  ASSERT_TRUE(Env->step(0).isOk());
  uint64_t AfterStep = Env->client().rpcCount();
  ASSERT_TRUE(Env->observation()["InstCount"].isOk());
  EXPECT_EQ(Env->client().rpcCount(), AfterStep + 1);
}

TEST(Views, PrefetchBatchesSpacesIntoOneRpc) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  uint64_t Before = Env->client().rpcCount();
  ASSERT_TRUE(
      Env->observation().prefetch({"Ir", "InstCount", "Autophase"}).isOk());
  EXPECT_EQ(Env->client().rpcCount(), Before + 1);
  // All three now come from the cache.
  ASSERT_TRUE(Env->observation()["Ir"].isOk());
  ASSERT_TRUE(Env->observation()["InstCount"].isOk());
  ASSERT_TRUE(Env->observation()["Autophase"].isOk());
  EXPECT_EQ(Env->client().rpcCount(), Before + 1);
}

TEST(Views, CacheSurvivesFork) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  ASSERT_TRUE(Env->step(0).isOk());
  auto Hash = Env->observation()["IrHash"];
  ASSERT_TRUE(Hash.isOk());

  auto Fork = Env->fork();
  ASSERT_TRUE(Fork.isOk()) << Fork.status().toString();
  // The clone shares the parent's client, so RPC accounting is global:
  // the clone's first query of a cached space must add zero RPCs.
  uint64_t Before = Env->client().rpcCount();
  auto ForkHash = (*Fork)->observation()["IrHash"];
  ASSERT_TRUE(ForkHash.isOk());
  EXPECT_EQ(Env->client().rpcCount(), Before);
  EXPECT_EQ(ForkHash->raw().Str, Hash->raw().Str);

  // Stepping the clone invalidates only the clone's cache.
  ASSERT_TRUE((*Fork)->step(1).isOk());
  auto ParentAgain = Env->observation()["IrHash"];
  ASSERT_TRUE(ParentAgain.isOk());
  EXPECT_EQ(ParentAgain->raw().Str, Hash->raw().Str);
}

// -- Derived observation spaces -----------------------------------------------

Status registerCodeSizeShare(Env &E) {
  SpaceInfo Info;
  Info.Name = "AutophaseShare";
  Info.Type = service::ObservationType::DoubleList;
  Info.Shape = {56};
  return E.observation().registerDerived(
      std::move(Info), {"Autophase", "IrInstructionCount"},
      [](ObservationView &V) -> StatusOr<service::Observation> {
        CG_ASSIGN_OR_RETURN(ObservationValue A, V.get("Autophase"));
        CG_ASSIGN_OR_RETURN(ObservationValue C,
                            V.get("IrInstructionCount"));
        double Total = std::max<double>(1.0, *C.asScalar());
        service::Observation Out;
        for (int64_t X : A.raw().Ints)
          Out.Doubles.push_back(static_cast<double>(X) / Total);
        return Out;
      });
}

TEST(Views, DerivedSpaceRegistrationAndUnregistration) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  ASSERT_TRUE(registerCodeSizeShare(*Env).isOk());

  // Duplicate names are rejected (backend and derived alike).
  SpaceInfo Dup;
  Dup.Name = "AutophaseShare";
  EXPECT_EQ(Env->observation()
                .registerDerived(Dup, {},
                                 [](ObservationView &)
                                     -> StatusOr<service::Observation> {
                                   return service::Observation{};
                                 })
                .code(),
            StatusCode::InvalidArgument);

  auto V = Env->observation()["AutophaseShare"];
  ASSERT_TRUE(V.isOk()) << V.status().toString();
  EXPECT_TRUE(V->info().Derived);
  auto Share = V->asDoubleList();
  ASSERT_TRUE(Share.isOk());
  ASSERT_EQ(Share->size(), 56u);
  for (double X : *Share)
    EXPECT_GE(X, 0.0);

  ASSERT_TRUE(Env->observation().unregisterDerived("AutophaseShare").isOk());
  EXPECT_EQ(Env->observation()["AutophaseShare"].status().code(),
            StatusCode::NotFound);
  EXPECT_EQ(Env->observation().unregisterDerived("AutophaseShare").code(),
            StatusCode::NotFound);
}

TEST(Views, DerivedSpaceRidesTheStepRpc) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  ASSERT_TRUE(registerCodeSizeShare(*Env).isOk());

  // The derived space's declared dependencies travel in the step RPC; the
  // client-side computation then runs entirely against the primed cache.
  uint64_t Before = Env->client().rpcCount();
  auto R = Env->step({0}, {"AutophaseShare"});
  ASSERT_TRUE(R.isOk()) << R.status().toString();
  EXPECT_EQ(Env->client().rpcCount(), Before + 1);
  ASSERT_EQ(R->Observations.size(), 1u);
  EXPECT_EQ(R->Observations[0].first, "AutophaseShare");
  EXPECT_TRUE(R->Observations[0].second.asDoubleList().isOk());
}

TEST(Views, DerivedSpaceCycleIsAnError) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  SpaceInfo Info;
  Info.Name = "Ouroboros";
  Info.Type = service::ObservationType::Int64Value;
  ASSERT_TRUE(Env->observation()
                  .registerDerived(Info, {"Ouroboros"},
                                   [](ObservationView &V)
                                       -> StatusOr<service::Observation> {
                                     CG_ASSIGN_OR_RETURN(ObservationValue X,
                                                         V.get("Ouroboros"));
                                     return X.raw();
                                   })
                  .isOk());
  auto V = Env->observation()["Ouroboros"];
  ASSERT_FALSE(V.isOk());
  EXPECT_EQ(V.status().code(), StatusCode::Internal);
}

// -- Reward view --------------------------------------------------------------

TEST(Views, RewardViewPaysDeltaSincePreviousQuery) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());

  // First query primes the space: delta rewards pay zero.
  auto First = Env->reward()["IrInstructionCount"];
  ASSERT_TRUE(First.isOk()) << First.status().toString();
  EXPECT_DOUBLE_EQ(*First, 0.0);

  int Mem2Reg = -1;
  const auto &Names = Env->actionSpace().ActionNames;
  for (size_t I = 0; I < Names.size(); ++I)
    if (Names[I] == "mem2reg")
      Mem2Reg = static_cast<int>(I);
  auto Before = Env->observation()["IrInstructionCount"];
  ASSERT_TRUE(Env->step(Mem2Reg).isOk());
  auto After = Env->observation()["IrInstructionCount"];

  auto Paid = Env->reward()["IrInstructionCount"];
  ASSERT_TRUE(Paid.isOk());
  EXPECT_DOUBLE_EQ(*Paid, static_cast<double>(*Before->asInt64() -
                                              *After->asInt64()));
  // Immediately re-querying the same state pays zero again.
  EXPECT_DOUBLE_EQ(*Env->reward()["IrInstructionCount"], 0.0);

  EXPECT_EQ(Env->reward()["NotAReward"].status().code(),
            StatusCode::NotFound);
  EXPECT_FALSE(Env->reward().spaces().empty());
}

TEST(Views, RewardRegistrationValidatesAndUnregisters) {
  auto Env = makeLlvm();
  RewardSpec Nameless;
  EXPECT_EQ(Env->reward().registerReward(Nameless).code(),
            StatusCode::InvalidArgument);

  RewardSpec Dup;
  Dup.Name = "IrInstructionCount"; // Collides with a builtin.
  Dup.MetricObservation = "IrInstructionCount";
  EXPECT_EQ(Env->reward().registerReward(Dup).code(),
            StatusCode::InvalidArgument);

  RewardSpec Ok;
  Ok.Name = "MyReward";
  Ok.MetricObservation = "IrInstructionCount";
  ASSERT_TRUE(Env->reward().registerReward(Ok).isOk());
  ASSERT_TRUE(Env->setRewardSpace("MyReward").isOk());
  ASSERT_TRUE(Env->setRewardSpace("IrInstructionCount").isOk());
  ASSERT_TRUE(Env->reward().unregisterReward("MyReward").isOk());
  EXPECT_EQ(Env->setRewardSpace("MyReward").code(), StatusCode::NotFound);
  // Builtins cannot be unregistered.
  EXPECT_EQ(Env->reward().unregisterReward("IrInstructionCount").code(),
            StatusCode::InvalidArgument);
}

TEST(Views, FailedDerivedDemuxDoesNotDesyncEpisodeHistory) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  SpaceInfo Info;
  Info.Name = "Broken";
  Info.Type = service::ObservationType::Int64Value;
  ASSERT_TRUE(Env->observation()
                  .registerDerived(Info, {},
                                   [](ObservationView &)
                                       -> StatusOr<service::Observation> {
                                     return internalError("boom");
                                   })
                  .isOk());
  // The step RPC succeeds (the backend applies the action) before the
  // derived demux fails: the action must still be recorded, or recovery
  // replay and state() would desync from the live session.
  auto R = Env->step({0}, {"Broken"});
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(Env->episodeLength(), 1u);
  EXPECT_TRUE(Env->step(1).isOk());
  EXPECT_EQ(Env->episodeLength(), 2u);
}

TEST(Views, FailedRewardSwitchLeavesPreviousSpaceActive) {
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://chstone-v0/sha"; // Not runnable.
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "IrInstructionCount";
  auto Env = make("llvm-v0", Opts);
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  // Runtime metrics cannot be primed on a non-runnable benchmark: the
  // switch must fail without committing, leaving the env steppable.
  auto S = (*Env)->setRewardSpace("RuntimeO3");
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ((*Env)->rewardSpace(), "IrInstructionCount");
  EXPECT_TRUE((*Env)->step(0).isOk());
}

TEST(Views, AbsoluteRewardSpacePaysNothingAtReset) {
  // loop_tool's default reward is the absolute FLOPs measurement: reset()
  // must prime it without paying the initial measurement into the episode.
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://loop_tool-v0/16384";
  auto Env = make("loop_tool-v0", Opts);
  ASSERT_TRUE(Env.isOk()) << Env.status().toString();
  ASSERT_TRUE((*Env)->reset().isOk());
  EXPECT_DOUBLE_EQ((*Env)->episodeReward(), 0.0);
  auto R = (*Env)->step(3); // thread: reward = measured FLOPs.
  ASSERT_TRUE(R.isOk());
  EXPECT_GT(R->Reward, 0.0);
  EXPECT_DOUBLE_EQ((*Env)->episodeReward(), R->Reward);
}

TEST(Views, UnregisteringActiveRewardFailsStepWithCure) {
  auto Env = makeLlvm();
  RewardSpec Spec;
  Spec.Name = "Ephemeral";
  Spec.MetricObservation = "IrInstructionCount";
  ASSERT_TRUE(Env->reward().registerReward(Spec).isOk());
  ASSERT_TRUE(Env->setRewardSpace("Ephemeral").isOk());
  ASSERT_TRUE(Env->reset().isOk());
  ASSERT_TRUE(Env->reward().unregisterReward("Ephemeral").isOk());
  auto R = Env->step(0);
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::FailedPrecondition);
  EXPECT_NE(R.status().message().find("setRewardSpace"), std::string::npos);
  // The cure works.
  ASSERT_TRUE(Env->setRewardSpace("IrInstructionCount").isOk());
  EXPECT_TRUE(Env->step(0).isOk());
}

// -- Vectorized multi-space step ----------------------------------------------

TEST(Views, EnvPoolStepBatchCarriesRequestedSpaces) {
  runtime::EnvPoolOptions Opts;
  Opts.EnvId = "llvm-v0";
  Opts.Make.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.Make.ObservationSpace = "none";
  Opts.Make.RewardSpace = "none";
  Opts.NumWorkers = 2;
  auto Pool = runtime::EnvPool::create(Opts);
  ASSERT_TRUE(Pool.isOk()) << Pool.status().toString();
  ASSERT_TRUE((*Pool)->resetAll().isOk());

  auto Results = (*Pool)->stepBatch({{0}, {1}}, {"InstCount", "Autophase"},
                                    {"IrInstructionCount"});
  ASSERT_TRUE(Results.isOk()) << Results.status().toString();
  ASSERT_EQ(Results->size(), 2u);
  for (const core::StepResult &R : *Results) {
    ASSERT_EQ(R.Observations.size(), 2u);
    EXPECT_TRUE(R.Observations[0].second.asInt64List().isOk());
    EXPECT_TRUE(R.Observations[1].second.asInt64List().isOk());
    ASSERT_EQ(R.Rewards.size(), 1u);
    EXPECT_EQ(R.Rewards[0].first, "IrInstructionCount");
  }
}

} // namespace
