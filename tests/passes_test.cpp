//===- tests/passes_test.cpp - Optimization pass tests ---------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// Per-pass behavioural tests plus the property suite: any random pass
// pipeline must keep modules verifier-clean and semantics-preserving
// (differential testing against the interpreter, §III-B4).

#include "analysis/Rewards.h"
#include "datasets/CsmithGenerator.h"
#include "datasets/CuratedSuites.h"
#include "ir/Dominators.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "passes/PassManager.h"
#include "passes/PassRegistry.h"
#include "passes/Pipelines.h"

#include <gtest/gtest.h>

using namespace compiler_gym;
using namespace compiler_gym::ir;
using namespace compiler_gym::passes;

namespace {

std::unique_ptr<Module> parse(const std::string &Text) {
  auto M = parseModule(Text);
  EXPECT_TRUE(M.isOk()) << M.status().toString();
  return M.isOk() ? M.takeValue() : nullptr;
}

bool run(Module &M, const std::string &Pass) {
  auto Changed = runPass(M, Pass);
  EXPECT_TRUE(Changed.isOk()) << Changed.status().toString();
  EXPECT_TRUE(verifyModule(M).isOk())
      << "verifier failure after " << Pass << ":\n"
      << printModule(M);
  return Changed.isOk() && *Changed;
}

TEST(PassRegistry, ContainsCorePasses) {
  const PassRegistry &Reg = PassRegistry::instance();
  for (const char *Name :
       {"dce", "adce", "mem2reg", "gvn", "early-cse", "sccp", "instcombine",
        "simplifycfg", "licm", "loop-simplify", "loop-unroll<8>",
        "inline<100>", "reg2mem", "mergereturn", "jump-threading"})
    EXPECT_TRUE(Reg.contains(Name)) << Name;
  EXPECT_FALSE(Reg.contains("not-a-pass"));
  EXPECT_EQ(Reg.create("not-a-pass"), nullptr);
}

TEST(PassRegistry, GvnSinkIsQuarantined) {
  const PassRegistry &Reg = PassRegistry::instance();
  EXPECT_TRUE(Reg.contains("gvn-sink"));
  const auto &Actions = Reg.defaultActionNames();
  EXPECT_EQ(std::find(Actions.begin(), Actions.end(), "gvn-sink"),
            Actions.end());
  auto Pass = Reg.create("gvn-sink");
  ASSERT_NE(Pass, nullptr);
  EXPECT_FALSE(Pass->isDeterministic());
}

TEST(PassRegistry, ActionSpaceIsSortedAndStable) {
  const auto &Actions = PassRegistry::instance().defaultActionNames();
  EXPECT_TRUE(std::is_sorted(Actions.begin(), Actions.end()));
  EXPECT_GE(Actions.size(), 50u);
}

TEST(Passes, UnknownPassIsNotFound) {
  Module M;
  auto R = runPass(M, "nope");
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::NotFound);
}

TEST(Passes, ConstFoldFoldsChains) {
  auto M = parse(R"(module "t"
func @main() -> i64 {
entry:
  %a = add i64 i64 2, i64 3
  %b = mul i64 i64 %a, i64 4
  %c = sub i64 i64 %b, i64 20
  ret i64 %c
}
)");
  EXPECT_TRUE(run(*M, "constfold"));
  EXPECT_EQ(M->instructionCount(), 1u); // Just "ret i64 0".
}

TEST(Passes, ConstFoldPreservesTraps) {
  auto M = parse(R"(module "t"
func @main() -> i64 {
entry:
  %a = sdiv i64 i64 1, i64 0
  ret i64 %a
}
)");
  EXPECT_FALSE(run(*M, "constfold")); // Must not fold the trapping div.
  EXPECT_EQ(M->instructionCount(), 2u);
}

TEST(Passes, DceRemovesUnusedPureCode) {
  auto M = parse(R"(module "t"
func @main() -> i64 {
entry:
  %dead1 = add i64 i64 1, i64 2
  %dead2 = mul i64 i64 %dead1, i64 3
  store i64 7, ptr @g
  ret i64 0
}
global @g = words 1
)");
  EXPECT_TRUE(run(*M, "dce"));
  EXPECT_EQ(M->instructionCount(), 2u); // Store + ret survive.
}

TEST(Passes, AdceRemovesDeadPhiCycles) {
  auto M = parse(R"(module "t"
func @main() -> i64 {
entry:
  br label %loop
loop:
  %x = phi i64 [ 0, %entry ], [ %y, %loop ]
  %y = add i64 i64 %x, i64 1
  %c = icmp i1 lt i64 %y, i64 10
  condbr i1 %c, label %loop, label %exit
exit:
  ret i64 42
}
)");
  // %x/%y feed only each other and the (live) condition... make them dead:
  // the condition uses %y, so they are live. Instead check simple dce does
  // NOT remove them but adce keeps verifying.
  EXPECT_FALSE(run(*M, "dce"));
  size_t Before = M->instructionCount();
  run(*M, "adce");
  EXPECT_EQ(M->instructionCount(), Before); // All live here.
}

TEST(Passes, Mem2RegPromotesScalarSlots) {
  auto M = parse(R"(module "t"
func @main(i64 %n) -> i64 {
entry:
  %slot = alloca ptr words 1
  store i64 %n, ptr %slot
  %c = icmp i1 gt i64 %n, i64 0
  condbr i1 %c, label %then, label %done
then:
  %v = load i64, ptr %slot
  %v2 = mul i64 i64 %v, i64 2
  store i64 %v2, ptr %slot
  br label %done
done:
  %out = load i64, ptr %slot
  ret i64 %out
}
)");
  EXPECT_TRUE(run(*M, "mem2reg"));
  // No loads/stores/allocas remain; a phi appears in %done.
  size_t Memops = 0, Phis = 0;
  M->findFunction("main")->forEachInstruction(
      [&](BasicBlock &, Instruction &I) {
        if (I.opcode() == Opcode::Load || I.opcode() == Opcode::Store ||
            I.opcode() == Opcode::Alloca)
          ++Memops;
        if (I.opcode() == Opcode::Phi)
          ++Phis;
      });
  EXPECT_EQ(Memops, 0u);
  EXPECT_EQ(Phis, 1u);
}

TEST(Passes, Mem2RegSkipsEscapedSlots) {
  auto M = parse(R"(module "t"
func @main() -> i64 {
entry:
  %slot = alloca ptr words 1
  %escaped = ptrtoint i64 ptr %slot
  store i64 1, ptr %slot
  %v = load i64, ptr %slot
  %r = add i64 i64 %v, i64 %escaped
  ret i64 %r
}
)");
  run(*M, "mem2reg");
  bool HasAlloca = false;
  M->findFunction("main")->forEachInstruction(
      [&](BasicBlock &, Instruction &I) {
        HasAlloca |= I.opcode() == Opcode::Alloca;
      });
  EXPECT_TRUE(HasAlloca); // Escaped: must not be promoted.
}

TEST(Passes, SccpFoldsConstantBranches) {
  auto M = parse(R"(module "t"
func @main() -> i64 {
entry:
  %c = icmp i1 gt i64 10, i64 3
  condbr i1 %c, label %then, label %else
then:
  ret i64 1
else:
  ret i64 2
}
)");
  EXPECT_TRUE(run(*M, "sccp"));
  EXPECT_EQ(M->functions().front()->numBlocks(), 2u); // else removed.
}

TEST(Passes, SimplifyCfgMergesChains) {
  auto M = parse(R"(module "t"
func @main() -> i64 {
entry:
  br label %a
a:
  %x = add i64 i64 1, i64 2
  br label %b
b:
  ret i64 %x
}
)");
  EXPECT_TRUE(run(*M, "simplifycfg"));
  EXPECT_EQ(M->functions().front()->numBlocks(), 1u);
}

TEST(Passes, UnreachableElim) {
  auto M = parse(R"(module "t"
func @main() -> i64 {
entry:
  ret i64 0
orphan:
  ret i64 1
}
)");
  EXPECT_TRUE(run(*M, "unreachable-elim"));
  EXPECT_EQ(M->functions().front()->numBlocks(), 1u);
}

TEST(Passes, CseLocalDeduplicates) {
  auto M = parse(R"(module "t"
func @main(i64 %n) -> i64 {
entry:
  %a = add i64 i64 %n, i64 1
  %b = add i64 i64 %n, i64 1
  %r = mul i64 i64 %a, i64 %b
  ret i64 %r
}
)");
  EXPECT_TRUE(run(*M, "cse-local"));
  EXPECT_EQ(M->instructionCount(), 3u);
}

TEST(Passes, CseRespectsCommutativity) {
  auto M = parse(R"(module "t"
func @main(i64 %n, i64 %m) -> i64 {
entry:
  %a = add i64 i64 %n, i64 %m
  %b = add i64 i64 %m, i64 %n
  %r = mul i64 i64 %a, i64 %b
  ret i64 %r
}
)");
  EXPECT_TRUE(run(*M, "cse-local"));
  EXPECT_EQ(M->instructionCount(), 3u);
}

TEST(Passes, GvnWorksAcrossBlocks) {
  auto M = parse(R"(module "t"
func @main(i64 %n) -> i64 {
entry:
  %a = add i64 i64 %n, i64 5
  %c = icmp i1 gt i64 %n, i64 0
  condbr i1 %c, label %then, label %done
then:
  %b = add i64 i64 %n, i64 5
  store i64 %b, ptr @g
  br label %done
done:
  ret i64 %a
}
global @g = words 1
)");
  EXPECT_TRUE(run(*M, "gvn"));
  size_t Adds = 0;
  M->findFunction("main")->forEachInstruction(
      [&](BasicBlock &, Instruction &I) {
        Adds += I.opcode() == Opcode::Add;
      });
  EXPECT_EQ(Adds, 1u);
}

TEST(Passes, GvnDoesNotMergeAcrossSiblingBlocks) {
  // Identical expressions in sibling branches must NOT merge (neither
  // dominates the other).
  auto M = parse(R"(module "t"
func @main(i64 %n) -> i64 {
entry:
  %c = icmp i1 gt i64 %n, i64 0
  condbr i1 %c, label %a, label %b
a:
  %x = add i64 i64 %n, i64 7
  ret i64 %x
b:
  %y = add i64 i64 %n, i64 7
  ret i64 %y
}
)");
  run(*M, "gvn");
  size_t Adds = 0;
  M->findFunction("main")->forEachInstruction(
      [&](BasicBlock &, Instruction &I) {
        Adds += I.opcode() == Opcode::Add;
      });
  EXPECT_EQ(Adds, 2u);
}

TEST(Passes, StoreForwardAndDse) {
  auto M = parse(R"(module "t"
global @g = words 2
func @main() -> i64 {
entry:
  store i64 11, ptr @g
  %v = load i64, ptr @g
  ret i64 %v
}
)");
  EXPECT_TRUE(run(*M, "store-forward"));
  size_t Loads = 0;
  M->findFunction("main")->forEachInstruction(
      [&](BasicBlock &, Instruction &I) {
        Loads += I.opcode() == Opcode::Load;
      });
  EXPECT_EQ(Loads, 0u);
}

TEST(Passes, DseRemovesOverwrittenStores) {
  auto M = parse(R"(module "t"
global @g = words 2
func @main() -> i64 {
entry:
  store i64 1, ptr @g
  store i64 2, ptr @g
  ret i64 0
}
)");
  EXPECT_TRUE(run(*M, "dse-local"));
  EXPECT_EQ(M->instructionCount(), 2u);
}

TEST(Passes, DseKeepsStoresBeforeLoads) {
  auto M = parse(R"(module "t"
global @g = words 2
func @main() -> i64 {
entry:
  store i64 1, ptr @g
  %v = load i64, ptr @g
  store i64 2, ptr @g
  ret i64 %v
}
)");
  EXPECT_FALSE(run(*M, "dse-local"));
  EXPECT_EQ(M->instructionCount(), 4u);
}

TEST(Passes, StrengthReduceMulToShift) {
  auto M = parse(R"(module "t"
func @main(i64 %n) -> i64 {
entry:
  %a = mul i64 i64 %n, i64 8
  ret i64 %a
}
)");
  EXPECT_TRUE(run(*M, "strength-reduce"));
  EXPECT_EQ(M->findFunction("main")->entry()->front()->opcode(),
            Opcode::Shl);
}

TEST(Passes, InlinerRespectsThreshold) {
  const char *Text = R"(module "t"
func @small(i64 %x) -> i64 {
entry:
  %r = add i64 i64 %x, i64 1
  ret i64 %r
}
func @main() -> i64 {
entry:
  %r = call i64 func @small, i64 41
  ret i64 %r
}
)";
  {
    auto M = parse(Text);
    EXPECT_TRUE(run(*M, "inline<100>"));
    size_t Calls = 0;
    M->findFunction("main")->forEachInstruction(
        [&](BasicBlock &, Instruction &I) {
          Calls += I.opcode() == Opcode::Call;
        });
    EXPECT_EQ(Calls, 0u);
  }
  {
    auto M = parse(Text);
    // Threshold below callee size (2 instructions is fine, use a 1-inst
    // threshold by constructing a tiny limit): inline<10> still inlines a
    // 2-instruction callee, so verify no-inline via noinline attribute.
    M->findFunction("small")->setNoInline(true);
    EXPECT_FALSE(run(*M, "inline<100>"));
  }
}

TEST(Passes, InlinerSkipsRecursion) {
  auto M = parse(R"(module "t"
func @rec(i64 %n) -> i64 {
entry:
  %c = icmp i1 le i64 %n, i64 0
  condbr i1 %c, label %base, label %again
base:
  ret i64 0
again:
  %d = sub i64 i64 %n, i64 1
  %r = call i64 func @rec, i64 %d
  ret i64 %r
}
func @main() -> i64 {
entry:
  %r = call i64 func @rec, i64 3
  ret i64 %r
}
)");
  EXPECT_FALSE(run(*M, "inline<100>"));
}

TEST(Passes, LoopUnrollFullyUnrollsCountedLoop) {
  auto M = parse(R"(module "t"
global @g = words 8
func @main() -> i64 {
entry:
  br label %body
body:
  %i = phi i64 [ 0, %entry ], [ %inext, %body ]
  %acc = phi i64 [ 0, %entry ], [ %accnext, %body ]
  %accnext = add i64 i64 %acc, i64 %i
  %inext = add i64 i64 %i, i64 1
  %c = icmp i1 lt i64 %inext, i64 4
  condbr i1 %c, label %body, label %exit
exit:
  ret i64 %accnext
}
)");
  ir::InterpreterOptions IOpts;
  auto Before = interpret(*M, IOpts);
  ASSERT_TRUE(Before.isOk());
  EXPECT_TRUE(run(*M, "loop-unroll<8>"));
  auto After = interpret(*M, IOpts);
  ASSERT_TRUE(After.isOk());
  EXPECT_EQ(Before->ReturnInt, After->ReturnInt);
  EXPECT_EQ(After->ReturnInt, 0 + 1 + 2 + 3);
  // No backedge remains.
  ir::DominatorTree DT(*M->findFunction("main"));
  EXPECT_TRUE(ir::findNaturalLoops(*M->findFunction("main"), DT).empty());
}

TEST(Passes, LoopUnrollRespectsTripLimit) {
  auto M = parse(R"(module "t"
func @main() -> i64 {
entry:
  br label %body
body:
  %i = phi i64 [ 0, %entry ], [ %inext, %body ]
  %inext = add i64 i64 %i, i64 1
  %c = icmp i1 lt i64 %inext, i64 100
  condbr i1 %c, label %body, label %exit
exit:
  ret i64 %inext
}
)");
  EXPECT_FALSE(run(*M, "loop-unroll<8>")); // 100 > 8: refuse.
  EXPECT_TRUE(run(*M, "loop-unroll<128>"));
}

TEST(Passes, LoopSimplifyEnablesLicm) {
  // Loop without a preheader: entry conditionally enters the loop from
  // two places; licm alone must do nothing, loop-simplify then licm hoists.
  auto M = parse(R"(module "t"
func @main(i64 %n) -> i64 {
entry:
  %c0 = icmp i1 gt i64 %n, i64 0
  condbr i1 %c0, label %body, label %pre2
pre2:
  br label %body
body:
  %i = phi i64 [ 0, %entry ], [ 1, %pre2 ], [ %inext, %body ]
  %inv = mul i64 i64 %n, i64 7
  %inext = add i64 i64 %i, i64 %inv
  %c = icmp i1 lt i64 %inext, i64 1000
  condbr i1 %c, label %body, label %exit
exit:
  ret i64 %inext
}
)");
  EXPECT_FALSE(run(*M, "licm")); // No preheader: ordering dependency.
  EXPECT_TRUE(run(*M, "loop-simplify"));
  EXPECT_TRUE(run(*M, "licm"));
  // The invariant mul must now be outside the loop body.
  BasicBlock *Body = M->findFunction("main")->findBlock("body");
  ASSERT_NE(Body, nullptr);
  bool MulInBody = false;
  for (const auto &I : Body->instructions())
    MulInBody |= I->opcode() == Opcode::Mul;
  EXPECT_FALSE(MulInBody);
}

TEST(Passes, LoopDeleteRemovesDeadLoops) {
  auto M = parse(R"(module "t"
func @main() -> i64 {
entry:
  br label %pre
pre:
  br label %body
body:
  %i = phi i64 [ 0, %pre ], [ %inext, %body ]
  %inext = add i64 i64 %i, i64 1
  %c = icmp i1 lt i64 %inext, i64 50
  condbr i1 %c, label %body, label %exit
exit:
  ret i64 7
}
)");
  EXPECT_TRUE(run(*M, "loop-delete"));
  ir::DominatorTree DT(*M->findFunction("main"));
  EXPECT_TRUE(ir::findNaturalLoops(*M->findFunction("main"), DT).empty());
  auto R = interpret(*M);
  ASSERT_TRUE(R.isOk());
  EXPECT_EQ(R->ReturnInt, 7);
}

TEST(Passes, MergeReturnUnifiesExits) {
  auto M = parse(R"(module "t"
func @main(i64 %n) -> i64 {
entry:
  %c = icmp i1 gt i64 %n, i64 0
  condbr i1 %c, label %a, label %b
a:
  ret i64 1
b:
  ret i64 2
}
)");
  EXPECT_TRUE(run(*M, "mergereturn"));
  size_t Rets = 0;
  M->findFunction("main")->forEachInstruction(
      [&](BasicBlock &, Instruction &I) {
        Rets += I.opcode() == Opcode::Ret;
      });
  EXPECT_EQ(Rets, 1u);
}

TEST(Passes, Reg2MemLowerSelectGrowCode) {
  datasets::ProgramStyle Style =
      datasets::styleForDataset("benchmark://csmith-v0");
  auto M = datasets::generateProgram(99, Style, "m");
  ASSERT_TRUE(run(*M, "mem2reg"));
  size_t AfterMem2Reg = M->instructionCount();
  if (run(*M, "reg2mem")) {
    EXPECT_GT(M->instructionCount(), AfterMem2Reg);
  }
}

TEST(Passes, GvnSinkIsNondeterministicAcrossClones) {
  // The reproduction of the paper's -gvn-sink bug: running the pass on two
  // structurally identical clones may produce different output because it
  // orders blocks by pointer value. With ASLR and heap layout differences
  // this usually differs, but is not guaranteed within a single process;
  // assert only that outputs stay semantically valid and the pass reports
  // nondeterminism.
  auto Pass = PassRegistry::instance().create("gvn-sink");
  ASSERT_NE(Pass, nullptr);
  EXPECT_FALSE(Pass->isDeterministic());
  datasets::ProgramStyle Style =
      datasets::styleForDataset("benchmark://csmith-v0");
  auto M = datasets::generateProgram(5, Style, "m");
  auto Clone = M->clone();
  Pass->runOnModule(*M);
  Pass->runOnModule(*Clone);
  EXPECT_TRUE(verifyModule(*M).isOk());
  EXPECT_TRUE(verifyModule(*Clone).isOk());
}

TEST(Pipelines, EveryPipelinePassIsRegistered) {
  // Guards against pipeline/registry drift (a pipeline naming an
  // unregistered pass fails at runtime deep inside the GCC env).
  for (const std::string &Level : optimizationLevels()) {
    auto P = pipelineForLevel(Level);
    ASSERT_TRUE(P.isOk()) << Level;
    for (const std::string &Name : *P)
      EXPECT_TRUE(PassRegistry::instance().contains(Name))
          << Level << " references unknown pass " << Name;
  }
}

TEST(Pipelines, AllLevelsExist) {
  for (const std::string &Level : optimizationLevels()) {
    auto P = pipelineForLevel(Level);
    EXPECT_TRUE(P.isOk()) << Level;
  }
  EXPECT_FALSE(pipelineForLevel("-O9").isOk());
}

TEST(Pipelines, OzShrinksGeneratedPrograms) {
  datasets::ProgramStyle Style =
      datasets::styleForDataset("benchmark://csmith-v0");
  for (uint64_t Seed : {11ull, 22ull, 33ull}) {
    auto M = datasets::generateProgram(Seed, Style, "m");
    size_t Before = M->instructionCount();
    ASSERT_TRUE(runOptimizationLevel(*M, "-Oz").isOk());
    EXPECT_TRUE(verifyModule(*M).isOk());
    EXPECT_LT(M->instructionCount(), Before);
  }
}

// -- Property suite: random pipelines preserve semantics ---------------------

struct PipelineCase {
  uint64_t ProgramSeed;
  uint64_t PipelineSeed;
};

class RandomPipelineProperty : public ::testing::TestWithParam<PipelineCase> {
};

TEST_P(RandomPipelineProperty, VerifiesAndPreservesSemantics) {
  const PipelineCase &C = GetParam();
  datasets::ProgramStyle Style = datasets::styleForDataset(
      C.ProgramSeed % 2 ? "benchmark://npb-v0" : "benchmark://csmith-v0");
  auto Reference = datasets::generateProgram(C.ProgramSeed, Style, "m");
  auto M = Reference->clone();

  const auto &Actions = PassRegistry::instance().defaultActionNames();
  Rng Gen(C.PipelineSeed);
  ir::InterpreterOptions IOpts;
  IOpts.Args = {static_cast<int64_t>(C.ProgramSeed % 7)};

  for (int Step = 0; Step < 20; ++Step) {
    const std::string &Pass = Actions[Gen.bounded(Actions.size())];
    auto Changed = runPass(*M, Pass);
    ASSERT_TRUE(Changed.isOk()) << Pass;
    ASSERT_TRUE(verifyModule(*M).isOk()) << "after " << Pass;
    analysis::ValidationResult V =
        analysis::validateSemantics(*Reference, *M, IOpts);
    ASSERT_TRUE(V.Ok) << "after " << Pass << ": " << V.Error;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, RandomPipelineProperty,
    ::testing::Values(PipelineCase{101, 1}, PipelineCase{102, 2},
                      PipelineCase{103, 3}, PipelineCase{104, 4},
                      PipelineCase{105, 5}, PipelineCase{106, 6},
                      PipelineCase{107, 7}, PipelineCase{108, 8},
                      PipelineCase{109, 9}, PipelineCase{110, 10}));

} // namespace
