//===- tests/telemetry_test.cpp - Telemetry subsystem ----------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The unified telemetry subsystem: MetricsRegistry counters/gauges/
// histograms under concurrency, Prometheus/JSON export, the span tracer
// (nesting, sampling, Chrome trace export), trace-context propagation
// through the step RPC so client and service spans stitch into one trace,
// and the log-line tagging format.

#include "telemetry/MetricsRegistry.h"
#include "telemetry/Trace.h"

#include "core/Registry.h"
#include "envs/llvm/LlvmSession.h"
#include "runtime/EnvPool.h"
#include "util/Logging.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>

using namespace compiler_gym;
using namespace compiler_gym::telemetry;

namespace {

// -- Counters / gauges ---------------------------------------------------------

TEST(MetricsCounter, ConcurrentIncrementsAreExact) {
  Counter C;
  constexpr int NumThreads = 8;
  constexpr uint64_t IncsPerThread = 20000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&C] {
      for (uint64_t I = 0; I < IncsPerThread; ++I)
        C.inc();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C.value(), NumThreads * IncsPerThread);
}

TEST(MetricsCounter, SnapshotDuringWritesIsMonotone) {
  // value() merged mid-traffic never exceeds the writes issued so far and
  // never goes backwards (the property stats scrapers rely on). Runs under
  // the TSan job too, which is the real assertion here.
  Counter C;
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    while (!Stop.load(std::memory_order_relaxed))
      C.inc();
  });
  uint64_t Prev = 0;
  for (int I = 0; I < 1000; ++I) {
    uint64_t V = C.value();
    EXPECT_GE(V, Prev);
    Prev = V;
  }
  Stop.store(true);
  Writer.join();
}

TEST(MetricsGauge, SetAndAdd) {
  Gauge G;
  G.set(7);
  EXPECT_EQ(G.value(), 7);
  G.add(-3);
  EXPECT_EQ(G.value(), 4);
}

// -- Histogram -----------------------------------------------------------------

TEST(MetricsHistogram, BucketBoundaries) {
  Histogram H;
  // Bucket I covers (2^(I-1), 2^I] microseconds; values at the bound land
  // in the lower bucket, values one past it in the next.
  H.observeUs(0);    // -> bucket 0 (<= 1us)
  H.observeUs(1);    // -> bucket 0
  H.observeUs(2);    // -> bucket 1 (<= 2us)
  H.observeUs(3);    // -> bucket 2 (<= 4us)
  H.observeUs(4);    // -> bucket 2
  H.observeUs(5);    // -> bucket 3 (<= 8us)
  H.observeUs(1024); // -> bucket 10
  H.observeUs(1025); // -> bucket 11
  H.observeUs(1e12); // far past the last finite bound -> +Inf bucket
  auto Counts = H.bucketCounts();
  EXPECT_EQ(Counts[0], 2u);
  EXPECT_EQ(Counts[1], 1u);
  EXPECT_EQ(Counts[2], 2u);
  EXPECT_EQ(Counts[3], 1u);
  EXPECT_EQ(Counts[10], 1u);
  EXPECT_EQ(Counts[11], 1u);
  EXPECT_EQ(Counts[Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(H.count(), 9u);
  EXPECT_DOUBLE_EQ(H.sumUs(), 0 + 1 + 2 + 3 + 4 + 5 + 1024 + 1025 + 1e12);

  EXPECT_EQ(Histogram::bucketUpperBoundUs(0), 1u);
  EXPECT_EQ(Histogram::bucketUpperBoundUs(10), 1024u);
  EXPECT_EQ(Histogram::bucketUpperBoundUs(Histogram::kBuckets - 1),
            UINT64_MAX);
}

TEST(MetricsHistogram, ConcurrentObservesAreExact) {
  Histogram H;
  constexpr int NumThreads = 4;
  constexpr int ObsPerThread = 10000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&H] {
      for (int I = 0; I < ObsPerThread; ++I)
        H.observeUs(static_cast<double>(I % 100));
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(H.count(), static_cast<uint64_t>(NumThreads) * ObsPerThread);
}

// -- Registry ------------------------------------------------------------------

TEST(MetricsRegistryTest, SeriesIdentityAndStableRefs) {
  MetricsRegistry R;
  Counter &A = R.counter("test_total", {{"k", "a"}}, "help");
  Counter &B = R.counter("test_total", {{"k", "b"}});
  Counter &A2 = R.counter("test_total", {{"k", "a"}});
  EXPECT_EQ(&A, &A2); // Same (name, labels) -> same series.
  EXPECT_NE(&A, &B);  // Different labels -> distinct series.
  A.inc(3);
  B.inc(5);
  MetricsSnapshot Snap = R.snapshot();
  ASSERT_EQ(Snap.Counters.size(), 2u);
  EXPECT_EQ(Snap.Counters[0].Value, 3u);
  EXPECT_EQ(Snap.Counters[1].Value, 5u);
}

TEST(MetricsRegistryTest, DisabledRegistrySilencesOwnedMetrics) {
  MetricsRegistry R;
  Counter &C = R.counter("gated_total");
  Histogram &H = R.histogram("gated_us");
  C.inc();
  H.observeUs(5);
  R.setEnabled(false);
  C.inc(100);
  H.observeUs(5);
  R.setEnabled(true);
  EXPECT_EQ(C.value(), 1u);
  EXPECT_EQ(H.count(), 1u);
}

TEST(MetricsRegistryTest, PrometheusRender) {
  MetricsRegistry R;
  R.counter("cg_test_requests_total", {{"kind", "step"}}, "Requests").inc(4);
  R.gauge("cg_test_live", {}, "Live sessions").set(2);
  Histogram &H = R.histogram("cg_test_latency_us", {}, "Latency");
  H.observeUs(1);
  H.observeUs(3);
  std::string Text = R.renderPrometheus();
  EXPECT_NE(Text.find("# HELP cg_test_requests_total Requests"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE cg_test_requests_total counter"),
            std::string::npos);
  EXPECT_NE(Text.find("cg_test_requests_total{kind=\"step\"} 4"),
            std::string::npos);
  EXPECT_NE(Text.find("cg_test_live 2"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE cg_test_latency_us histogram"),
            std::string::npos);
  // Cumulative buckets: the 1us sample counts in every le >= 1.
  EXPECT_NE(Text.find("cg_test_latency_us_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(Text.find("cg_test_latency_us_bucket{le=\"4\"} 2"),
            std::string::npos);
  EXPECT_NE(Text.find("cg_test_latency_us_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(Text.find("cg_test_latency_us_count 2"), std::string::npos);
}

TEST(MetricsRegistryTest, JsonRender) {
  MetricsRegistry R;
  R.counter("c_total", {{"a", "b"}}).inc(9);
  R.histogram("h_us").observeUs(2);
  std::string Json = R.renderJson();
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"c_total\""), std::string::npos);
  EXPECT_NE(Json.find("\"a\":\"b\""), std::string::npos);
  EXPECT_NE(Json.find("\"value\":9"), std::string::npos);
  EXPECT_NE(Json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(Json.find("\"count\":1"), std::string::npos);
}

// -- Tracer --------------------------------------------------------------------

/// Restores the global tracer to its default (disabled, sample-all,
/// empty) state on scope exit so tests cannot leak tracing into each
/// other.
struct TracerReset {
  TracerReset() { reset(); }
  ~TracerReset() { reset(); }
  static void reset() {
    Tracer &T = Tracer::global();
    T.setEnabled(false);
    T.setSampleEveryN(1);
    T.clear();
  }
};

const SpanRecord *findSpan(const std::vector<SpanRecord> &Spans,
                           const std::string &Name) {
  auto It = std::find_if(Spans.begin(), Spans.end(),
                         [&](const SpanRecord &S) { return S.Name == Name; });
  return It == Spans.end() ? nullptr : &*It;
}

TEST(Trace, NestedSpansShareTraceAndParentChain) {
  TracerReset Guard;
  Tracer::global().setEnabled(true);
  {
    SpanScope Root("root", "test");
    ASSERT_TRUE(Root.active());
    TraceContext Ctx = currentTraceContext();
    EXPECT_EQ(Ctx.TraceId, Root.traceId());
    EXPECT_EQ(Ctx.SpanId, Root.spanId());
    {
      SpanScope Child("child", "test");
      ASSERT_TRUE(Child.active());
      EXPECT_EQ(Child.traceId(), Root.traceId());
    }
  }
  // Context restored after the scopes close.
  EXPECT_EQ(currentTraceContext().TraceId, 0u);

  std::vector<SpanRecord> Spans = Tracer::global().snapshotSpans();
  ASSERT_EQ(Spans.size(), 2u);
  const SpanRecord *Root = findSpan(Spans, "root");
  const SpanRecord *Child = findSpan(Spans, "child");
  ASSERT_NE(Root, nullptr);
  ASSERT_NE(Child, nullptr);
  EXPECT_EQ(Root->ParentId, 0u);
  EXPECT_EQ(Child->ParentId, Root->SpanId);
  EXPECT_EQ(Child->TraceId, Root->TraceId);
}

TEST(Trace, DisabledTracerRecordsNothing) {
  TracerReset Guard;
  {
    SpanScope S("never", "test");
    EXPECT_FALSE(S.active());
  }
  EXPECT_EQ(Tracer::global().spanCount(), 0u);
  EXPECT_EQ(currentTraceContext().TraceId, 0u);
}

TEST(Trace, SamplingSuppressesWholeTraces) {
  TracerReset Guard;
  Tracer &T = Tracer::global();
  T.setEnabled(true);
  T.setSampleEveryN(2);
  for (int I = 0; I < 10; ++I) {
    SpanScope Root("root", "test");
    // Children of an unsampled root must be suppressed too, so sampled
    // traces are always complete.
    SpanScope Child("child", "test");
    EXPECT_EQ(Child.active(), Root.active());
  }
  std::vector<SpanRecord> Spans = T.snapshotSpans();
  size_t Roots = 0, Children = 0;
  for (const SpanRecord &S : Spans)
    (S.Name == "root" ? Roots : Children)++;
  EXPECT_EQ(Roots, 5u);
  EXPECT_EQ(Children, 5u);
}

TEST(Trace, BindingAdoptsWireContext) {
  TracerReset Guard;
  Tracer::global().setEnabled(true);
  constexpr uint64_t WireTrace = 0xABCD;
  constexpr uint64_t WireSpan = 0x1234;
  {
    TraceBinding Bind(WireTrace, WireSpan);
    SpanScope S("service.work", "test");
    ASSERT_TRUE(S.active());
    EXPECT_EQ(S.traceId(), WireTrace);
  }
  EXPECT_EQ(currentTraceContext().TraceId, 0u);
  std::vector<SpanRecord> Spans = Tracer::global().snapshotSpans();
  ASSERT_EQ(Spans.size(), 1u);
  EXPECT_EQ(Spans[0].TraceId, WireTrace);
  EXPECT_EQ(Spans[0].ParentId, WireSpan);
}

TEST(Trace, BindingWithZeroTraceSuppresses) {
  TracerReset Guard;
  Tracer::global().setEnabled(true);
  {
    // A request from a non-tracing client must not start a disconnected
    // service-side trace.
    TraceBinding Bind(0, 0);
    SpanScope S("service.work", "test");
    EXPECT_FALSE(S.active());
  }
  EXPECT_EQ(Tracer::global().spanCount(), 0u);
}

TEST(Trace, CapacityBoundsBufferAndCountsDrops) {
  TracerReset Guard;
  Tracer &T = Tracer::global();
  T.setEnabled(true);
  T.setCapacity(4);
  uint64_t DroppedBefore = T.droppedSpans();
  for (int I = 0; I < 10; ++I)
    SpanScope S("s", "test");
  EXPECT_EQ(T.spanCount(), 4u);
  EXPECT_EQ(T.droppedSpans() - DroppedBefore, 6u);
  T.setCapacity(size_t{1} << 18);
}

TEST(Trace, ChromeTraceExportRoundTrip) {
  TracerReset Guard;
  Tracer::global().setEnabled(true);
  uint64_t TraceId, SpanId;
  {
    SpanScope Root("outer", "client");
    SpanScope Child("inner", "service");
    TraceId = Root.traceId();
    SpanId = Root.spanId();
  }
  std::string Json = Tracer::global().exportChromeTrace();
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"outer\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"inner\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat\":\"service\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  // Ids ride in args as hex strings; the child's parent is the root span.
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "0x%llx",
           static_cast<unsigned long long>(TraceId));
  EXPECT_NE(Json.find(std::string("\"trace\":\"") + Buf + "\""),
            std::string::npos);
  snprintf(Buf, sizeof(Buf), "0x%llx", static_cast<unsigned long long>(SpanId));
  EXPECT_NE(Json.find(std::string("\"parent\":\"") + Buf + "\""),
            std::string::npos);
}

// -- Log tagging ---------------------------------------------------------------

TEST(Logging, FormatLine) {
  EXPECT_EQ(formatLogLine(LogLevel::Info, "env", 3, 0x1f2, "replaying"),
            "[compiler_gym INFO env id=3 trace=0x1f2] replaying");
  // Id 0 and trace 0 are omitted; no component falls back to the legacy
  // format.
  EXPECT_EQ(formatLogLine(LogLevel::Warning, "broker", 0, 0, "shard down"),
            "[compiler_gym WARN broker] shard down");
  EXPECT_EQ(formatLogLine(LogLevel::Error, nullptr, 0, 0, "boom"),
            "[compiler_gym ERROR] boom");
}

TEST(Logging, TraceIdProviderLinksLogsToActiveSpan) {
  TracerReset Guard;
  Tracer::global().setEnabled(true);
  SpanScope S("scope", "test");
  ASSERT_TRUE(S.active());
  // The telemetry layer installed its provider in Tracer's constructor;
  // an active span's trace id must show up in tagged lines.
  char Buf[32];
  snprintf(Buf, sizeof(Buf), "0x%llx",
           static_cast<unsigned long long>(S.traceId()));
  EXPECT_EQ(formatLogLine(LogLevel::Info, "env", 1, S.traceId(), "x"),
            std::string("[compiler_gym INFO env id=1 trace=") + Buf + "] x");
}

// -- End-to-end: spans and metrics through a real step RPC ---------------------

core::MakeOptions plainLlvm(const std::string &Benchmark) {
  core::MakeOptions Opts;
  Opts.Benchmark = Benchmark;
  Opts.ObservationSpace = "Autophase";
  Opts.RewardSpace = "none";
  return Opts;
}

TEST(TraceE2E, ClientAndServiceSpansStitchThroughStepRpc) {
  TracerReset Guard;
  Tracer &T = Tracer::global();

  auto Env = core::make("llvm-v0", plainLlvm("benchmark://cbench-v1/crc32"));
  ASSERT_TRUE(Env.isOk()) << Env.status().toString();
  ASSERT_TRUE((*Env)->reset().isOk());

  T.setEnabled(true);
  T.clear();
  auto Step = (*Env)->step({0}, {"Autophase"});
  T.setEnabled(false);
  ASSERT_TRUE(Step.isOk()) << Step.status().toString();

  std::vector<SpanRecord> Spans = T.snapshotSpans();
  const SpanRecord *EnvStep = findSpan(Spans, "env.step");
  const SpanRecord *Rpc = findSpan(Spans, "rpc:step");
  const SpanRecord *Service = findSpan(Spans, "service:step");
  ASSERT_NE(EnvStep, nullptr);
  ASSERT_NE(Rpc, nullptr);
  ASSERT_NE(Service, nullptr);

  // One trace across client and service threads, stitched through the
  // envelope's propagated (trace, span) ids.
  EXPECT_EQ(EnvStep->ParentId, 0u);
  EXPECT_EQ(Rpc->TraceId, EnvStep->TraceId);
  EXPECT_EQ(Rpc->ParentId, EnvStep->SpanId);
  EXPECT_EQ(Service->TraceId, EnvStep->TraceId);
  EXPECT_EQ(Service->ParentId, Rpc->SpanId);
  EXPECT_NE(Service->ThreadId, Rpc->ThreadId); // Dispatcher thread.

  // The service-side lifecycle is visible inside the same trace: action
  // application, per-space observation, and reply encoding.
  for (const char *Name :
       {"session.apply_actions", "observe:Autophase", "encode.reply"}) {
    const SpanRecord *S = findSpan(Spans, Name);
    ASSERT_NE(S, nullptr) << Name;
    EXPECT_EQ(S->TraceId, EnvStep->TraceId) << Name;
  }
  // Applying action 0 ran a pass under the apply span.
  bool SawPass = false;
  for (const SpanRecord &S : Spans)
    SawPass |= S.Name.rfind("pass:", 0) == 0 && S.TraceId == EnvStep->TraceId;
  EXPECT_TRUE(SawPass);
}

TEST(TraceE2E, PoolStepProducesStitchedTraceAndRegistryMetrics) {
  using runtime::EnvPool;
  using runtime::EnvPoolOptions;
  using runtime::PoolStats;
  TracerReset Guard;

  EnvPoolOptions Opts;
  Opts.EnvId = "llvm-v0";
  Opts.Make.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.Make.ObservationSpace = "Autophase";
  Opts.Make.RewardSpace = "IrInstructionCount";
  Opts.NumWorkers = 2;
  Opts.Broker.MonitorIntervalMs = 0;
  auto Pool = EnvPool::create(Opts);
  ASSERT_TRUE(Pool.isOk()) << Pool.status().toString();
  ASSERT_TRUE((*Pool)->resetAll().isOk());

  // stats() is documented safe concurrently with a running batch; hammer
  // it from another thread while the batch runs (the TSan job turns any
  // unsynchronized recovery-counter read into a failure).
  std::atomic<bool> Stop{false};
  std::thread Reader([&] {
    while (!Stop.load(std::memory_order_relaxed)) {
      PoolStats S = (*Pool)->stats();
      (void)S;
    }
  });
  Tracer::global().setEnabled(true);
  auto Results = (*Pool)->stepBatch({{0, 1}, {1, 2}});
  Tracer::global().setEnabled(false);
  Stop.store(true);
  Reader.join();
  ASSERT_TRUE(Results.isOk()) << Results.status().toString();

  // The vectorized step is one trace: the coordinator's pool.step_batch
  // root, each worker's env.step bound to it across the thread-pool hop,
  // and the service spans stitched below through the envelope ids.
  std::vector<SpanRecord> Spans = Tracer::global().snapshotSpans();
  const SpanRecord *Batch = findSpan(Spans, "pool.step_batch");
  ASSERT_NE(Batch, nullptr);
  EXPECT_EQ(Batch->ParentId, 0u);
  size_t WorkerSteps = 0, ServiceSteps = 0;
  for (const SpanRecord &S : Spans) {
    if (S.Name == "env.step") {
      EXPECT_EQ(S.TraceId, Batch->TraceId);
      EXPECT_EQ(S.ParentId, Batch->SpanId);
      ++WorkerSteps;
    }
    if (S.Name == "service:step") {
      EXPECT_EQ(S.TraceId, Batch->TraceId);
      ++ServiceSteps;
    }
  }
  EXPECT_EQ(WorkerSteps, 2u);
  EXPECT_EQ(ServiceSteps, 2u);

  // The acceptance-criteria metric families are live after real steps.
  std::string Text = telemetry::MetricsRegistry::global().renderPrometheus();
  for (const char *Family :
       {"cg_pool_steps_total", "cg_client_rpc_latency_us",
        "cg_service_rpc_latency_us", "cg_service_rpcs_total",
        "cg_wire_bytes_total", "cg_obs_cache_events_total",
        "cg_service_observation_replies_total", "cg_feature_requests_total",
        "cg_broker_shard_restarts_total"})
    EXPECT_NE(Text.find(Family), std::string::npos) << Family;
}

} // namespace
