//===- tests/chaos_test.cpp - Deterministic chaos harness ------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The seeded chaos soak and its invariants: episodes run under fault plans
// must be byte-equal to the fault-free reference, every injected failure
// must surface typed (no silent drops), deadlines must not overshoot
// beyond a poll interval, wedged shards must be cleared by the broker
// watchdog with sessions resuming from snapshot (zero replay), and fault
// schedules must be draw-stable under unrelated plan edits.

#include "core/CompilerEnv.h"
#include "core/Registry.h"
#include "datasets/DatasetRegistry.h"
#include "envs/llvm/LlvmSession.h"
#include "fault/ChaosTransport.h"
#include "fault/FaultRegistry.h"
#include "gateway/Gateway.h"
#include "net/SocketTransport.h"
#include "service/CompilerService.h"
#include "service/Serialization.h"
#include "service/ServiceClient.h"
#include "telemetry/MetricsRegistry.h"
#include "util/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <unistd.h>

using namespace compiler_gym;
using namespace compiler_gym::fault;

namespace {

constexpr const char *Crc32 = "benchmark://cbench-v1/crc32";

/// Clears the global registry on scope exit so a failing test cannot leak
/// an armed plan into its neighbors.
struct RegistryReset {
  ~RegistryReset() { FaultRegistry::global().clear(); }
};

datasets::Benchmark testBenchmark() {
  auto B = datasets::DatasetRegistry::instance().resolve(Crc32);
  EXPECT_TRUE(B.isOk());
  return *B;
}

telemetry::Counter &replayedActionsTotal() {
  return telemetry::MetricsRegistry::global().counter(
      "cg_env_replayed_actions_total", {},
      "Actions replayed into fresh sessions during recovery");
}

/// The fixed soak workload: deterministic action sequence, long enough to
/// cross several fault windows.
const std::vector<int> SoakActions = {0, 3, 1, 4, 2, 0, 3, 1};

struct EpisodeResult {
  std::string StateLine;
  std::string IrHash;
};

/// Drives one full episode on \p Env: reset, the soak workload (every
/// step must come back Ok — injected failures may only surface as *typed*
/// errors that the recovery machinery absorbs), final state + IR hash.
EpisodeResult runEpisode(core::CompilerEnv &Env) {
  EpisodeResult Out;
  auto R = Env.reset();
  EXPECT_TRUE(R.isOk()) << R.status().toString();
  if (!R.isOk())
    return Out;
  for (int A : SoakActions) {
    auto S = Env.step(A);
    EXPECT_TRUE(S.isOk()) << "action " << A << ": " << S.status().toString();
    if (!S.isOk())
      return Out;
  }
  auto Hash = Env.observation()["IrHash"];
  EXPECT_TRUE(Hash.isOk()) << Hash.status().toString();
  if (Hash.isOk())
    Out.IrHash = Hash->raw().Str;
  Out.StateLine = Env.state().serialize();
  return Out;
}

EpisodeResult runLocalEpisode() {
  core::MakeOptions Opts;
  Opts.Benchmark = Crc32;
  Opts.ObservationSpace = "Autophase";
  Opts.RewardSpace = "IrInstructionCount";
  auto Env = core::make("llvm-v0", Opts);
  EXPECT_TRUE(Env.isOk()) << Env.status().toString();
  if (!Env.isOk())
    return {};
  return runEpisode(**Env);
}

/// Echoes the request bytes back as the reply (draw-stability probes).
struct EchoTransport : service::Transport {
  StatusOr<std::string> roundTrip(const std::string &Bytes, int) override {
    return Bytes;
  }
};

net::NetAddress uniqueListenAddress(const char *Tag) {
  static std::atomic<int> Counter{0};
  net::NetAddress Addr;
  Addr.Kind = net::NetAddress::Family::Unix;
  Addr.Path = "/tmp/cg_chaos_test_" + std::to_string(::getpid()) + "_" + Tag +
              "_" + std::to_string(Counter.fetch_add(1)) + ".sock";
  return Addr;
}

std::unique_ptr<gateway::Gateway> serveGateway(gateway::GatewayOptions Opts,
                                               const char *Tag) {
  envs::registerLlvmEnvironment();
  Opts.Listen = uniqueListenAddress(Tag);
  auto Gw = gateway::Gateway::serve(std::move(Opts));
  EXPECT_TRUE(Gw.isOk()) << Gw.status().toString();
  return Gw.takeValue();
}

StatusOr<std::unique_ptr<core::CompilerEnv>>
connectEnv(gateway::Gateway &Gw, const std::string &Token = "") {
  core::MakeOptions MO;
  MO.Benchmark = Crc32;
  MO.ObservationSpace = "Autophase";
  MO.RewardSpace = "IrInstructionCount";
  auto Opts = core::resolveMakeOptions("llvm-v0", MO);
  if (!Opts.isOk())
    return Opts.status();
  Opts->Client.AuthToken = Token;
  return core::CompilerEnv::connect(
      *Opts, std::make_shared<net::SocketTransport>(Gw.boundAddress()));
}

} // namespace

// -- Registry semantics -------------------------------------------------------

TEST(FaultRegistryTest, HitWindowsAndFireCapsAreHonored) {
  RegistryReset RR;
  FaultRegistry &Reg = FaultRegistry::global();
  FaultPlanSpec Plan;
  Plan.Rules.push_back({.Point = "unit.w",
                        .Kind = FaultKind::Error,
                        .AfterHits = 2,
                        .MaxFires = 3});
  Reg.install(Plan);
  std::vector<bool> Fired;
  for (int I = 0; I < 10; ++I)
    Fired.push_back(bool(Reg.evaluate("unit.w", nullptr)));
  // P=1.0: eligible hits fire deterministically — hits 3..5 and no more.
  EXPECT_EQ(Fired, (std::vector<bool>{false, false, true, true, true, false,
                                      false, false, false, false}));
  EXPECT_EQ(Reg.hits("unit.w"), 10u);
  EXPECT_EQ(Reg.fires("unit.w"), 3u);
  EXPECT_EQ(Reg.totalFires(), 3u);
  Reg.clear();
  EXPECT_FALSE(bool(CG_FAULT_POINT("unit.w", nullptr)));
}

TEST(FaultRegistryTest, ErrorRulesCarryTypedStatus) {
  RegistryReset RR;
  FaultPlanSpec Plan;
  Plan.Rules.push_back({.Point = "unit.e",
                        .Kind = FaultKind::Error,
                        .MaxFires = 1,
                        .Code = StatusCode::Internal,
                        .Message = "wired through"});
  FaultRegistry::global().install(Plan);
  FaultAction A = FaultRegistry::global().evaluate("unit.e", nullptr);
  ASSERT_TRUE(A.isError());
  EXPECT_EQ(A.Error.code(), StatusCode::Internal);
  EXPECT_EQ(A.Error.message(), "wired through");
}

// -- Draw stability (the PR 8 guarantee, generalized) -------------------------

TEST(ChaosDrawStability, UnrelatedRuleTrafficDoesNotShiftSchedules) {
  RegistryReset RR;
  FaultRegistry &Reg = FaultRegistry::global();
  FaultPlanSpec Plan;
  Plan.Seed = 777;
  // Rule 0 is disabled (P=0), rule 2 is always-on (P=1): neither consumes
  // RNG draws, so hammering them must not shift rule 1's schedule.
  Plan.Rules.push_back({.Point = "unit.off", .Probability = 0.0});
  Plan.Rules.push_back({.Point = "unit.x", .Probability = 0.5});
  Plan.Rules.push_back({.Point = "unit.on", .Probability = 1.0});
  Reg.install(Plan);
  std::vector<bool> Base;
  for (int I = 0; I < 200; ++I)
    Base.push_back(bool(Reg.evaluate("unit.x", nullptr)));
  // Same plan, fresh streams — but now interleave heavy traffic on the
  // degenerate-probability rules between every probe.
  Reg.install(Plan);
  std::vector<bool> Interleaved;
  for (int I = 0; I < 200; ++I) {
    for (int J = 0; J < 3; ++J) {
      EXPECT_FALSE(bool(Reg.evaluate("unit.off", nullptr)));
      EXPECT_TRUE(bool(Reg.evaluate("unit.on", nullptr)));
    }
    Interleaved.push_back(bool(Reg.evaluate("unit.x", nullptr)));
  }
  EXPECT_EQ(Base, Interleaved);
  EXPECT_GT(Reg.fires("unit.x"), 0u);
  EXPECT_EQ(Reg.fires("unit.off"), 0u);
}

TEST(ChaosDrawStability, FlakyTransportStreamIsUnaffectedByRegistryPlans) {
  RegistryReset RR;
  service::TransportFaults TF;
  TF.DropProbability = 0.3;
  TF.GarbageProbability = 0.2;
  TF.Seed = 4242;
  auto Pattern = [&TF] {
    service::FlakyTransport T(std::make_shared<EchoTransport>(), TF);
    std::vector<int> Out;
    for (int I = 0; I < 100; ++I) {
      auto R = T.roundTrip("abcdefgh", 100);
      Out.push_back(!R.isOk() ? 0 : (*R == "abcdefgh" ? 1 : 2));
    }
    return Out;
  };
  std::vector<int> Clean = Pattern();
  FaultPlanSpec Plan;
  Plan.Rules.push_back({.Point = "unit.q", .Probability = 0.5});
  FaultRegistry::global().install(Plan);
  std::vector<int> Armed = Pattern();
  EXPECT_EQ(Clean, Armed);
}

// -- ChaosTransport -----------------------------------------------------------

TEST(ChaosTransportTest, InjectsTypedFaultsThenPassesThrough) {
  RegistryReset RR;
  FaultPlanSpec Plan;
  Plan.Rules.push_back({.Point = "transport.round_trip",
                        .Kind = FaultKind::Error,
                        .MaxFires = 1,
                        .Code = StatusCode::Unavailable,
                        .Message = "injected reset"});
  FaultRegistry::global().install(Plan);
  ChaosTransport T(std::make_shared<EchoTransport>());
  auto R1 = T.roundTrip("payload", 100);
  ASSERT_FALSE(R1.isOk());
  EXPECT_EQ(R1.status().code(), StatusCode::Unavailable);
  auto R2 = T.roundTrip("payload", 100);
  ASSERT_TRUE(R2.isOk());
  EXPECT_EQ(*R2, "payload");
}

TEST(ChaosTransportTest, CorruptRulesGarbleTheReplyBytes) {
  RegistryReset RR;
  FaultPlanSpec Plan;
  Plan.Rules.push_back({.Point = "transport.reply",
                        .Kind = FaultKind::Corrupt,
                        .MaxFires = 1});
  FaultRegistry::global().install(Plan);
  ChaosTransport T(std::make_shared<EchoTransport>());
  auto R = T.roundTrip("payload", 100);
  ASSERT_TRUE(R.isOk());
  EXPECT_NE(*R, "payload");
  EXPECT_EQ(R->size(), std::string("payload").size());
}

// -- The soak -----------------------------------------------------------------

TEST(ChaosSoak, SeededServicePlansAreByteEqualToFaultFreeReference) {
  RegistryReset RR;
  FaultRegistry::global().clear();
  EpisodeResult Ref = runLocalEpisode();
  ASSERT_FALSE(Ref.StateLine.empty());
  ASSERT_FALSE(Ref.IrHash.empty());

  for (uint64_t Seed : {11u, 22u, 33u}) {
    FaultPlanSpec Plan;
    Plan.Seed = Seed;
    // Recoverable typed errors sprayed across every service-side layer,
    // plus one hard crash: the env's retry/recovery machinery must absorb
    // all of it without changing a single byte of the episode.
    Plan.Rules.push_back({.Point = "service.handle",
                          .Kind = FaultKind::Error,
                          .Probability = 0.15,
                          .MaxFires = 4});
    Plan.Rules.push_back({.Point = "service.apply_actions",
                          .Kind = FaultKind::Error,
                          .Probability = 0.10,
                          .AfterHits = 2,
                          .MaxFires = 2});
    Plan.Rules.push_back({.Point = "passes.run",
                          .Kind = FaultKind::Error,
                          .Probability = 0.05,
                          .MaxFires = 2});
    Plan.Rules.push_back({.Point = "snapshot.restore",
                          .Kind = FaultKind::Error,
                          .Probability = 0.25,
                          .MaxFires = 2});
    Plan.Rules.push_back({.Point = "service.handle",
                          .Kind = FaultKind::Crash,
                          .AfterHits = 12,
                          .MaxFires = 1});
    FaultRegistry::global().install(Plan);
    EpisodeResult Chaos = runLocalEpisode();
    uint64_t Fires = FaultRegistry::global().totalFires();
    FaultRegistry::global().clear();
    EXPECT_GT(Fires, 0u) << "seed " << Seed << " injected nothing";
    EXPECT_EQ(Chaos.StateLine, Ref.StateLine) << "seed " << Seed;
    EXPECT_EQ(Chaos.IrHash, Ref.IrHash) << "seed " << Seed;
  }
}

TEST(ChaosSoak, TransportFaultsAreTransparentOverChaosChannel) {
  RegistryReset RR;
  FaultRegistry::global().clear();
  EpisodeResult Ref = runLocalEpisode();
  ASSERT_FALSE(Ref.StateLine.empty());

  core::MakeOptions MO;
  MO.Benchmark = Crc32;
  MO.ObservationSpace = "Autophase";
  MO.RewardSpace = "IrInstructionCount";
  auto Opts = core::resolveMakeOptions("llvm-v0", MO);
  ASSERT_TRUE(Opts.isOk());
  auto Service = std::make_shared<service::CompilerService>();
  auto Chan = std::make_shared<ChaosTransport>(
      std::make_shared<service::QueueTransport>(
          [Service](const std::string &B) { return Service->handle(B); }));

  FaultPlanSpec Plan;
  Plan.Seed = 99;
  // Request-direction resets retry cleanly; reply-direction errors after
  // execution exercise the dedup window (the retried RequestId must get
  // the cached outcome, never a re-execution).
  Plan.Rules.push_back({.Point = "transport.round_trip",
                        .Kind = FaultKind::Error,
                        .Probability = 0.15,
                        .MaxFires = 5});
  Plan.Rules.push_back({.Point = "transport.reply",
                        .Kind = FaultKind::Error,
                        .Probability = 0.10,
                        .MaxFires = 3});
  FaultRegistry::global().install(Plan);
  auto Env = core::CompilerEnv::connect(*Opts, Chan);
  ASSERT_TRUE(Env.isOk()) << Env.status().toString();
  EpisodeResult Chaos = runEpisode(**Env);
  uint64_t Fires = FaultRegistry::global().totalFires();
  FaultRegistry::global().clear();
  EXPECT_GT(Fires, 0u);
  EXPECT_EQ(Chaos.StateLine, Ref.StateLine);
  EXPECT_EQ(Chaos.IrHash, Ref.IrHash);
}

TEST(ChaosSoak, MultiTenantGatewayEpisodesSurviveLinkAndServiceFaults) {
  RegistryReset RR;
  FaultRegistry::global().clear();
  EpisodeResult Ref = runLocalEpisode();
  ASSERT_FALSE(Ref.StateLine.empty());

  gateway::GatewayOptions GO;
  GO.NumShards = 2;
  GO.Tenants = {{"alice", "alice-token"}, {"bob", "bob-token"}};
  auto Gw = serveGateway(std::move(GO), "soak");
  ASSERT_TRUE(Gw);
  auto Alice = connectEnv(*Gw, "alice-token");
  auto Bob = connectEnv(*Gw, "bob-token");
  ASSERT_TRUE(Alice.isOk()) << Alice.status().toString();
  ASSERT_TRUE(Bob.isOk()) << Bob.status().toString();

  FaultPlanSpec Plan;
  Plan.Seed = 44;
  // Gateway→shard link errors (fire before dispatch — the client's
  // idempotent retry re-sends the same RequestId) plus service-side
  // dispatch errors, across both tenants' traffic.
  Plan.Rules.push_back({.Point = "gateway.backend_call",
                        .Kind = FaultKind::Error,
                        .Probability = 0.20,
                        .MaxFires = 4});
  Plan.Rules.push_back({.Point = "service.handle",
                        .Kind = FaultKind::Error,
                        .Probability = 0.10,
                        .MaxFires = 3});
  FaultRegistry::global().install(Plan);
  // Interleave the two tenants' episodes so faults land across both
  // sessions' traffic, not one tenant's warm-up.
  ASSERT_TRUE((*Alice)->reset().isOk());
  ASSERT_TRUE((*Bob)->reset().isOk());
  for (int A : SoakActions) {
    auto RA = (*Alice)->step(A);
    auto RB = (*Bob)->step(A);
    EXPECT_TRUE(RA.isOk()) << RA.status().toString();
    EXPECT_TRUE(RB.isOk()) << RB.status().toString();
  }
  EpisodeResult OutA, OutB;
  auto HA = (*Alice)->observation()["IrHash"];
  auto HB = (*Bob)->observation()["IrHash"];
  ASSERT_TRUE(HA.isOk()) << HA.status().toString();
  ASSERT_TRUE(HB.isOk()) << HB.status().toString();
  OutA = {(*Alice)->state().serialize(), HA->raw().Str};
  OutB = {(*Bob)->state().serialize(), HB->raw().Str};
  uint64_t Fires = FaultRegistry::global().totalFires();
  FaultRegistry::global().clear();
  EXPECT_GT(Fires, 0u);
  EXPECT_EQ(OutA.StateLine, Ref.StateLine);
  EXPECT_EQ(OutA.IrHash, Ref.IrHash);
  EXPECT_EQ(OutB.StateLine, Ref.StateLine);
  EXPECT_EQ(OutB.IrHash, Ref.IrHash);
}

// -- Deadline propagation -----------------------------------------------------

TEST(ChaosDeadline, CancelAwareDelayRespectsBudgetAndRollsBack) {
  RegistryReset RR;
  envs::registerLlvmEnvironment();
  auto Service = std::make_shared<service::CompilerService>();
  service::ClientOptions CO;
  CO.TimeoutMs = 120;
  CO.MaxRetries = 0;
  service::ServiceClient Client(Service, CO);
  service::StartSessionRequest Start;
  Start.CompilerName = "llvm";
  Start.Bench = testBenchmark();
  auto Sess = Client.startSession(Start);
  ASSERT_TRUE(Sess.isOk()) << Sess.status().toString();

  FaultPlanSpec Plan;
  Plan.Rules.push_back({.Point = "passes.run",
                        .Kind = FaultKind::Delay,
                        .MaxFires = 1,
                        .DelayMs = 600});
  FaultRegistry::global().install(Plan);
  service::StepRequest Step;
  Step.SessionId = Sess->SessionId;
  service::Action A;
  A.Index = 0;
  Step.Actions = {A};
  Stopwatch Timer;
  auto R = Client.step(Step);
  double TookMs = Timer.elapsedMs();
  FaultRegistry::global().clear();
  // Typed DeadlineExceeded, and the 600ms injected stall must NOT have
  // run to completion: the cancel token cut it at the ~120ms budget (one
  // poll interval of slack, plus scheduler noise).
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::DeadlineExceeded);
  EXPECT_LT(TookMs, 400.0);
  // The session rolled back to its last committed state and stays
  // serviceable: the same step now succeeds.
  auto R2 = Client.step(Step);
  EXPECT_TRUE(R2.isOk()) << R2.status().toString();
}

TEST(ChaosDeadline, ExpiredQueuedGatewayOpsAreShedTyped) {
  RegistryReset RR;
  gateway::GatewayOptions GO;
  GO.NumShards = 1;
  auto Gw = serveGateway(std::move(GO), "shed");
  ASSERT_TRUE(Gw);
  net::SocketTransport T(Gw->boundAddress());

  service::RequestEnvelope Start;
  Start.Kind = service::RequestKind::StartSession;
  Start.Start.CompilerName = "llvm";
  Start.Start.Bench = testBenchmark();
  auto Raw = T.roundTrip(service::encodeRequest(Start), 10000);
  ASSERT_TRUE(Raw.isOk()) << Raw.status().toString();
  auto StartReply = service::decodeReply(*Raw);
  ASSERT_TRUE(StartReply.isOk());
  ASSERT_EQ(StartReply->Code, StatusCode::Ok);

  // Freeze dispatch, park a step with a 30ms budget in the queue, and let
  // it expire before dispatch resumes: the gateway must shed it with a
  // typed DeadlineExceeded, never silently drop it or burn a backend call.
  Gw->pauseDispatch();
  service::RequestEnvelope Step;
  Step.Kind = service::RequestKind::Step;
  Step.Step.SessionId = StartReply->Start.SessionId;
  service::Action A;
  A.Index = 0;
  Step.Step.Actions = {A};
  Step.DeadlineMs = 30;
  StatusOr<std::string> ShedRaw = unavailable("not sent");
  std::thread Caller(
      [&] { ShedRaw = T.roundTrip(service::encodeRequest(Step), 10000); });
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  Gw->resumeDispatch();
  Caller.join();
  ASSERT_TRUE(ShedRaw.isOk()) << ShedRaw.status().toString();
  auto ShedReply = service::decodeReply(*ShedRaw);
  ASSERT_TRUE(ShedReply.isOk());
  EXPECT_EQ(ShedReply->Code, StatusCode::DeadlineExceeded);
  EXPECT_GE(Gw->shedExpired(), 1u);
}

// -- Hung-shard watchdog ------------------------------------------------------

TEST(ChaosWatchdog, WedgedShardIsForceRestartedAndResumesFromSnapshot) {
  RegistryReset RR;
  gateway::GatewayOptions GO;
  GO.NumShards = 1;
  GO.MonitorIntervalMs = 10;
  GO.StallWindowMs = 200;
  auto Gw = serveGateway(std::move(GO), "watchdog");
  ASSERT_TRUE(Gw);

  // Fault-free reference for the byte-equality check afterwards.
  auto RefEnv = connectEnv(*Gw);
  ASSERT_TRUE(RefEnv.isOk()) << RefEnv.status().toString();
  ASSERT_TRUE((*RefEnv)->reset().isOk());
  for (int Act : {0, 1, 2})
    ASSERT_TRUE((*RefEnv)->step(Act).isOk());
  auto RefHash = (*RefEnv)->observation()["IrHash"];
  ASSERT_TRUE(RefHash.isOk());

  auto Env = connectEnv(*Gw);
  ASSERT_TRUE(Env.isOk()) << Env.status().toString();
  ASSERT_TRUE((*Env)->reset().isOk());
  // One committed step publishes a snapshot — the zero-replay resume
  // target after the wedge.
  ASSERT_TRUE((*Env)->step(0).isOk());

  uint64_t ReplayedBefore = replayedActionsTotal().value();
  FaultPlanSpec Plan;
  // A non-cooperative 1.2s stall inside pass execution: no cancel-token
  // polls, so no heartbeat progress — only the watchdog can clear it.
  Plan.Rules.push_back({.Point = "passes.run",
                        .Kind = FaultKind::Delay,
                        .MaxFires = 1,
                        .DelayMs = 1200,
                        .CancelAware = false});
  FaultRegistry::global().install(Plan);
  auto R = (*Env)->step(1);
  FaultRegistry::global().clear();
  // The step must come back Ok: the wedged shard was force-restarted by
  // the watchdog and the env re-established its session transparently.
  EXPECT_TRUE(R.isOk()) << R.status().toString();
  EXPECT_GE(Gw->broker().hungRestarts(), 1u);
  EXPECT_EQ(Gw->broker().shardRestarts(), 0u)
      << "wedge must be counted as a hung restart, not a crash restart";
  // Resume came from the content-addressed snapshot: zero actions
  // replayed.
  EXPECT_EQ(replayedActionsTotal().value(), ReplayedBefore);

  ASSERT_TRUE((*Env)->step(2).isOk());
  auto Hash = (*Env)->observation()["IrHash"];
  ASSERT_TRUE(Hash.isOk());
  EXPECT_EQ(Hash->raw().Str, RefHash->raw().Str);
  EXPECT_EQ((*Env)->state().Actions, (*RefEnv)->state().Actions);
}
