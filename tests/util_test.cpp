//===- tests/util_test.cpp - Foundation utility tests ----------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "util/Rng.h"
#include "util/Stats.h"
#include "util/Status.h"
#include "util/StringUtils.h"
#include "util/ThreadPool.h"
#include "util/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>

using namespace compiler_gym;

namespace {

// -- Status ---------------------------------------------------------------------

TEST(Status, OkAndFailureBasics) {
  Status Ok;
  EXPECT_TRUE(Ok.isOk());
  EXPECT_EQ(Ok.toString(), "OK");

  Status Err = notFound("missing thing");
  EXPECT_FALSE(Err.isOk());
  EXPECT_EQ(Err.code(), StatusCode::NotFound);
  EXPECT_EQ(Err.toString(), "NOT_FOUND: missing thing");
}

TEST(Status, AllCodesHaveNames) {
  for (int Code = 0; Code <= static_cast<int>(StatusCode::Aborted); ++Code)
    EXPECT_STRNE(statusCodeName(static_cast<StatusCode>(Code)), "UNKNOWN");
}

StatusOr<int> parsePositive(int X) {
  if (X <= 0)
    return invalidArgument("not positive");
  return X;
}

Status usesAssignOrReturn(int X, int &Out) {
  CG_ASSIGN_OR_RETURN(int Value, parsePositive(X));
  CG_ASSIGN_OR_RETURN(int Doubled, parsePositive(Value * 2));
  Out = Doubled;
  return Status::ok();
}

TEST(Status, AssignOrReturnPropagates) {
  int Out = 0;
  EXPECT_TRUE(usesAssignOrReturn(21, Out).isOk());
  EXPECT_EQ(Out, 42);
  Status Err = usesAssignOrReturn(-1, Out);
  ASSERT_FALSE(Err.isOk());
  EXPECT_EQ(Err.code(), StatusCode::InvalidArgument);
}

TEST(StatusOr, TakeValueMoves) {
  StatusOr<std::string> S(std::string("payload"));
  ASSERT_TRUE(S.isOk());
  std::string Out = S.takeValue();
  EXPECT_EQ(Out, "payload");
}

// -- Rng ------------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  bool Differs = false;
  Rng A2(42);
  for (int I = 0; I < 100; ++I)
    Differs |= A2.next() != C.next();
  EXPECT_TRUE(Differs);
}

TEST(Rng, BoundedStaysInRange) {
  Rng Gen(7);
  for (int I = 0; I < 10000; ++I)
    EXPECT_LT(Gen.bounded(13), 13u);
  for (int I = 0; I < 1000; ++I) {
    int64_t V = Gen.range(-5, 5);
    EXPECT_GE(V, -5);
    EXPECT_LE(V, 5);
  }
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Rng Gen(11);
  std::vector<int> Counts(8, 0);
  const int N = 80000;
  for (int I = 0; I < N; ++I)
    ++Counts[Gen.bounded(8)];
  for (int C : Counts) {
    EXPECT_GT(C, N / 8 * 0.9);
    EXPECT_LT(C, N / 8 * 1.1);
  }
}

TEST(Rng, GaussianMoments) {
  Rng Gen(5);
  double Sum = 0, SumSq = 0;
  const int N = 50000;
  for (int I = 0; I < N; ++I) {
    double X = Gen.gaussian();
    Sum += X;
    SumSq += X * X;
  }
  EXPECT_NEAR(Sum / N, 0.0, 0.02);
  EXPECT_NEAR(SumSq / N, 1.0, 0.03);
}

TEST(Rng, WeightedIndexFollowsWeights) {
  Rng Gen(3);
  std::vector<double> Weights = {1.0, 0.0, 3.0};
  int Counts[3] = {0, 0, 0};
  for (int I = 0; I < 40000; ++I)
    ++Counts[Gen.weightedIndex(Weights)];
  EXPECT_EQ(Counts[1], 0);
  EXPECT_NEAR(static_cast<double>(Counts[2]) / Counts[0], 3.0, 0.25);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng Gen(9);
  std::vector<int> V = {1, 2, 3, 4, 5, 6, 7};
  std::vector<int> Orig = V;
  Gen.shuffle(V);
  std::multiset<int> A(V.begin(), V.end()), B(Orig.begin(), Orig.end());
  EXPECT_EQ(A, B);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng A(1);
  Rng Child = A.split();
  bool Differs = false;
  for (int I = 0; I < 50; ++I)
    Differs |= A.next() != Child.next();
  EXPECT_TRUE(Differs);
}

// -- Stats ----------------------------------------------------------------------

TEST(Stats, Percentiles) {
  std::vector<double> V = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  EXPECT_DOUBLE_EQ(percentile(V, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(V, 100), 10.0);
  EXPECT_DOUBLE_EQ(percentile(V, 50), 5.5);
  EXPECT_DOUBLE_EQ(percentile({}, 50), 0.0);
  EXPECT_DOUBLE_EQ(percentile({3.0}, 99), 3.0);
}

TEST(Stats, MeanStddevGeomean) {
  EXPECT_DOUBLE_EQ(mean({2, 4, 6}), 4.0);
  EXPECT_NEAR(stddev({2, 4, 6}), std::sqrt(8.0 / 3.0), 1e-12);
  EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(geomean({}), 1.0);
  // Non-positive values are floored, not NaN.
  EXPECT_GT(geomean({0.0, 1.0}), 0.0);
}

TEST(Stats, LatencySummary) {
  LatencySummary S = summarizeLatencies({1, 2, 3, 4, 100});
  EXPECT_EQ(S.Count, 5u);
  EXPECT_DOUBLE_EQ(S.P50, 3.0);
  EXPECT_GT(S.P99, 4.0);
  EXPECT_DOUBLE_EQ(S.Mean, 22.0);
}

TEST(Stats, RunningStatMatchesBatch) {
  RunningStat R;
  std::vector<double> V = {1.5, -2.0, 7.25, 0.0, 3.5};
  for (double X : V)
    R.add(X);
  EXPECT_EQ(R.count(), V.size());
  EXPECT_NEAR(R.mean(), mean(V), 1e-12);
  EXPECT_NEAR(R.stddev(), stddev(V), 1e-9);
  EXPECT_DOUBLE_EQ(R.min(), -2.0);
  EXPECT_DOUBLE_EQ(R.max(), 7.25);
}

TEST(Stats, GaussianFilterSmoothsAndPreservesConstants) {
  std::vector<double> Flat(20, 5.0);
  std::vector<double> Smoothed = gaussianFilter1d(Flat, 2.0);
  for (double X : Smoothed)
    EXPECT_NEAR(X, 5.0, 1e-9);
  // A spike is spread out.
  std::vector<double> Spike(21, 0.0);
  Spike[10] = 10.0;
  std::vector<double> Out = gaussianFilter1d(Spike, 2.0);
  EXPECT_LT(Out[10], 10.0);
  EXPECT_GT(Out[8], 0.0);
}

TEST(Stats, EmpiricalCdf) {
  std::vector<double> Sorted = {1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(empiricalCdf(Sorted, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(empiricalCdf(Sorted, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(empiricalCdf(Sorted, 9.0), 1.0);
}

// -- Strings ---------------------------------------------------------------------

TEST(StringUtils, SplitJoinTrim) {
  EXPECT_EQ(splitString("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(splitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(joinStrings({"x", "y"}, "--"), "x--y");
  EXPECT_EQ(trimString("  hi \n"), "hi");
  EXPECT_EQ(trimString(" \t "), "");
}

// -- ThreadPool -------------------------------------------------------------------

TEST(ThreadPoolTest, RunsAllJobs) {
  ThreadPool Pool(4);
  std::atomic<int> Counter{0};
  for (int I = 0; I < 100; ++I)
    Pool.submit([&Counter] { Counter.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 100);
}

TEST(ThreadPoolTest, FuturesComplete) {
  ThreadPool Pool(2);
  std::atomic<int> Value{0};
  auto F = Pool.submit([&Value] { Value.store(7); });
  F.wait();
  EXPECT_EQ(Value.load(), 7);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool Pool(2);
  std::atomic<int> Counter{0};
  Pool.submit([&] { Counter.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 1);
  Pool.submit([&] { Counter.fetch_add(1); });
  Pool.wait();
  EXPECT_EQ(Counter.load(), 2);
}

// -- Timer -----------------------------------------------------------------------

TEST(Timer, StopwatchAdvances) {
  Stopwatch Watch;
  volatile double Sink = 0;
  for (int I = 0; I < 100000; ++I)
    Sink += I;
  EXPECT_GT(Watch.elapsedUs(), 0.0);
  double Before = Watch.elapsedMs();
  Watch.restart();
  EXPECT_LE(Watch.elapsedMs(), Before + 1.0);
}

TEST(Timer, ScopedLatencySampleAppends) {
  std::vector<double> Sink;
  {
    ScopedLatencySample Sample(Sink);
  }
  ASSERT_EQ(Sink.size(), 1u);
  EXPECT_GE(Sink[0], 0.0);
}

} // namespace
