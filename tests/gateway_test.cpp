//===- tests/gateway_test.cpp - Multi-tenant gateway -----------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The service gateway end to end: tenant auth, admission control, rate
// limiting, queue backpressure, weighted-fair dispatch, transparent
// snapshot restore on shard loss, drain/scale-out — and the acceptance
// criterion that a remote episode over a loopback socket is byte-identical
// to an in-process one.

#include "core/Registry.h"
#include "datasets/DatasetRegistry.h"
#include "envs/llvm/LlvmSession.h"
#include "gateway/Gateway.h"
#include "net/SocketTransport.h"
#include "service/Serialization.h"
#include "service/ServiceClient.h"
#include "telemetry/Trace.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string_view>
#include <thread>
#include <unistd.h>

using namespace compiler_gym;
using namespace compiler_gym::gateway;
using namespace compiler_gym::net;
using namespace compiler_gym::service;

namespace {

constexpr const char *Crc32 = "benchmark://cbench-v1/crc32";

NetAddress uniqueListenAddress(const char *Tag) {
  static std::atomic<int> Counter{0};
  NetAddress Addr;
  Addr.Kind = NetAddress::Family::Unix;
  Addr.Path = "/tmp/cg_gw_test_" + std::to_string(::getpid()) + "_" + Tag +
              "_" + std::to_string(Counter.fetch_add(1)) + ".sock";
  return Addr;
}

std::unique_ptr<Gateway> serveGateway(GatewayOptions Opts, const char *Tag) {
  envs::registerLlvmEnvironment();
  Opts.Listen = uniqueListenAddress(Tag);
  auto Gw = Gateway::serve(std::move(Opts));
  EXPECT_TRUE(Gw.isOk()) << Gw.status().toString();
  return Gw.takeValue();
}

/// A dialed typed client for \p Gw authenticating as \p Token.
std::unique_ptr<ServiceClient> dialClient(Gateway &Gw,
                                          const std::string &Token,
                                          ClientOptions Opts = {}) {
  Opts.AuthToken = Token;
  return std::make_unique<ServiceClient>(
      nullptr, std::make_shared<SocketTransport>(Gw.boundAddress()), Opts);
}

/// A remote CompilerEnv connected through \p Gw.
StatusOr<std::unique_ptr<core::CompilerEnv>>
connectEnv(Gateway &Gw, const std::string &Token,
           const std::string &RewardSpace = "IrInstructionCount") {
  core::MakeOptions MO;
  MO.Benchmark = Crc32;
  MO.ObservationSpace = "Autophase";
  MO.RewardSpace = RewardSpace;
  auto Opts = core::resolveMakeOptions("llvm-v0", MO);
  if (!Opts.isOk())
    return Opts.status();
  Opts->Client.AuthToken = Token;
  return core::CompilerEnv::connect(
      *Opts, std::make_shared<SocketTransport>(Gw.boundAddress()));
}

/// Raw framed RPC, bypassing ServiceClient's retry machinery — the only
/// way to observe flow-control rejections (ServiceClient transparently
/// retries typed backpressure).
StatusOr<ReplyEnvelope> rawCall(Transport &T, RequestEnvelope Req,
                                int TimeoutMs = 10000) {
  CG_ASSIGN_OR_RETURN(std::string Raw,
                      T.roundTrip(encodeRequest(Req), TimeoutMs));
  return decodeReply(Raw);
}

RequestEnvelope rawStart(const std::string &Token) {
  RequestEnvelope Req;
  Req.Kind = RequestKind::StartSession;
  Req.AuthToken = Token;
  Req.Start.CompilerName = "llvm";
  auto B = datasets::DatasetRegistry::instance().resolve(Crc32);
  EXPECT_TRUE(B.isOk());
  Req.Start.Bench = *B;
  return Req;
}

RequestEnvelope rawStep(const std::string &Token, uint64_t SessionId,
                        int Action = 0) {
  RequestEnvelope Req;
  Req.Kind = RequestKind::Step;
  Req.AuthToken = Token;
  Req.Step.SessionId = SessionId;
  service::Action A;
  A.Index = Action;
  Req.Step.Actions = {A};
  return Req;
}

/// Restores the global tracer to its default state on scope exit.
struct TracerReset {
  TracerReset() { reset(); }
  ~TracerReset() { reset(); }
  static void reset() {
    telemetry::Tracer &T = telemetry::Tracer::global();
    T.setEnabled(false);
    T.setSampleEveryN(1);
    T.clear();
  }
};

// -- Auth / admission ---------------------------------------------------------

TEST(Gateway, RejectsUnknownTenantToken) {
  GatewayOptions Opts;
  Opts.NumShards = 1;
  Opts.Tenants = {{"alice", "alice-token"}};
  auto Gw = serveGateway(std::move(Opts), "auth");
  auto Good = dialClient(*Gw, "alice-token");
  EXPECT_TRUE(Good->heartbeat().isOk());
  auto Bad = dialClient(*Gw, "wrong-token");
  Status S = Bad->heartbeat();
  ASSERT_FALSE(S.isOk());
  EXPECT_EQ(S.code(), StatusCode::FailedPrecondition);
  EXPECT_NE(S.message().find("unknown tenant token"), std::string::npos);
}

TEST(Gateway, EmptyTenantTableAdmitsDefaultToken) {
  GatewayOptions Opts;
  Opts.NumShards = 1;
  auto Gw = serveGateway(std::move(Opts), "anon");
  auto Client = dialClient(*Gw, "");
  EXPECT_TRUE(Client->heartbeat().isOk());
}

TEST(Gateway, EnforcesPerTenantSessionLimit) {
  GatewayOptions Opts;
  Opts.NumShards = 1;
  TenantConfig T{"small", "tok"};
  T.MaxSessions = 1;
  Opts.Tenants = {T};
  auto Gw = serveGateway(std::move(Opts), "admission");

  SocketTransport Raw(Gw->boundAddress());
  auto First = rawCall(Raw, rawStart("tok"));
  ASSERT_TRUE(First.isOk()) << First.status().toString();
  ASSERT_EQ(First->Code, StatusCode::Ok);
  EXPECT_EQ(Gw->sessionCount(), 1u);

  auto Second = rawCall(Raw, rawStart("tok"));
  ASSERT_TRUE(Second.isOk());
  EXPECT_EQ(Second->Code, StatusCode::Unavailable);
  EXPECT_GT(Second->RetryAfterMs, 0u); // Typed backpressure, not a drop.
  EXPECT_NE(Second->ErrorMessage.find("session limit"), std::string::npos);

  // Ending the first session frees the slot.
  RequestEnvelope End;
  End.Kind = RequestKind::EndSession;
  End.AuthToken = "tok";
  End.End.SessionId = First->Start.SessionId;
  ASSERT_TRUE(rawCall(Raw, End).isOk());
  auto Third = rawCall(Raw, rawStart("tok"));
  ASSERT_TRUE(Third.isOk());
  EXPECT_EQ(Third->Code, StatusCode::Ok);
}

TEST(Gateway, RateLimitsStepsWithRetryHint) {
  GatewayOptions Opts;
  Opts.NumShards = 1;
  TenantConfig T{"metered", "tok"};
  T.StepsPerSec = 5.0;
  T.Burst = 2.0;
  Opts.Tenants = {T};
  auto Gw = serveGateway(std::move(Opts), "rate");

  SocketTransport Raw(Gw->boundAddress());
  auto Start = rawCall(Raw, rawStart("tok"));
  ASSERT_TRUE(Start.isOk());
  ASSERT_EQ(Start->Code, StatusCode::Ok);
  uint64_t Session = Start->Start.SessionId;

  // Fire steps far faster than 5/s: the burst drains, then rejections
  // must carry a computed retry-after.
  int Rejected = 0;
  uint32_t LastHint = 0;
  for (int I = 0; I < 6; ++I) {
    auto R = rawCall(Raw, rawStep("tok", Session));
    ASSERT_TRUE(R.isOk()) << R.status().toString();
    if (R->Code == StatusCode::Unavailable) {
      ++Rejected;
      LastHint = R->RetryAfterMs;
      EXPECT_NE(R->ErrorMessage.find("rate limit"), std::string::npos);
    } else {
      ASSERT_EQ(R->Code, StatusCode::Ok);
    }
  }
  EXPECT_GE(Rejected, 3);
  EXPECT_GT(LastHint, 0u);
}

// -- Queueing / fairness ------------------------------------------------------

TEST(Gateway, FullQueueRepliesWithBackpressureNotSilence) {
  GatewayOptions Opts;
  Opts.NumShards = 1;
  Opts.MaxQueuePerShard = 2;
  Opts.QueueRetryAfterMs = 7;
  auto Gw = serveGateway(std::move(Opts), "queue");

  SocketTransport Raw(Gw->boundAddress());
  auto Start = rawCall(Raw, rawStart(""));
  ASSERT_TRUE(Start.isOk());
  ASSERT_EQ(Start->Code, StatusCode::Ok);
  uint64_t Session = Start->Start.SessionId;

  // Freeze dispatch so queued ops stay queued, then oversubscribe the
  // 2-slot queue with 4 concurrent steps on 4 connections.
  Gw->pauseDispatch();
  constexpr int N = 4;
  std::atomic<int> Ok{0}, QueueFull{0}, Other{0};
  std::vector<std::thread> Threads;
  for (int I = 0; I < N; ++I)
    Threads.emplace_back([&Gw, Session, &Ok, &QueueFull, &Other] {
      SocketTransport Mine(Gw->boundAddress());
      auto R = rawCall(Mine, rawStep("", Session), /*TimeoutMs=*/15000);
      if (!R.isOk()) {
        ++Other;
        return;
      }
      if (R->Code == StatusCode::Ok)
        ++Ok;
      else if (R->Code == StatusCode::Unavailable &&
               R->ErrorMessage.find("queue is full") != std::string::npos) {
        EXPECT_EQ(R->RetryAfterMs, 7u);
        ++QueueFull;
      } else
        ++Other;
    });
  // Wait until the overflow rejections have come back (they return while
  // dispatch is still frozen), then release the queued ops.
  for (int I = 0; I < 500 && QueueFull.load() < N - 2; ++I)
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  Gw->resumeDispatch();
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Ok.load(), 2);
  EXPECT_EQ(QueueFull.load(), 2);
  EXPECT_EQ(Other.load(), 0);
}

TEST(Gateway, WeightedRoundRobinKeepsStarvedTenantMoving) {
  GatewayOptions Opts;
  Opts.NumShards = 1;
  Opts.Tenants = {{"bulk", "bulk-tok"}, {"light", "light-tok"}};
  auto Gw = serveGateway(std::move(Opts), "fair");

  SocketTransport BulkRaw(Gw->boundAddress());
  SocketTransport LightRaw(Gw->boundAddress());
  auto BulkStart = rawCall(BulkRaw, rawStart("bulk-tok"));
  auto LightStart = rawCall(LightRaw, rawStart("light-tok"));
  ASSERT_TRUE(BulkStart.isOk());
  ASSERT_TRUE(LightStart.isOk());
  ASSERT_EQ(BulkStart->Code, StatusCode::Ok);
  ASSERT_EQ(LightStart->Code, StatusCode::Ok);

  // Load the queue with 8 bulk steps and 2 light steps while dispatch is
  // frozen, so the dispatcher sees both backlogs at once.
  Gw->pauseDispatch();
  // A deep bulk backlog keeps the dispatcher busy for tens of milliseconds
  // after the light tenant finishes, so the dispatched-count snapshot below
  // is robust to scheduling delay on the capturing thread.
  constexpr int BulkOps = 24, LightOps = 2;
  std::atomic<int> LightDone{0};
  std::atomic<uint64_t> BulkDispatchedWhenLightFinished{UINT64_MAX};
  std::vector<std::thread> Threads;
  for (int I = 0; I < BulkOps; ++I)
    Threads.emplace_back([&Gw, &BulkStart] {
      SocketTransport Mine(Gw->boundAddress());
      auto R = rawCall(Mine, rawStep("bulk-tok", BulkStart->Start.SessionId));
      EXPECT_TRUE(R.isOk() && R->Code == StatusCode::Ok);
    });
  for (int I = 0; I < LightOps; ++I)
    Threads.emplace_back([&Gw, &LightStart, &LightDone,
                          &BulkDispatchedWhenLightFinished] {
      SocketTransport Mine(Gw->boundAddress());
      auto R =
          rawCall(Mine, rawStep("light-tok", LightStart->Start.SessionId));
      EXPECT_TRUE(R.isOk() && R->Code == StatusCode::Ok);
      if (LightDone.fetch_add(1) + 1 == LightOps)
        BulkDispatchedWhenLightFinished.store(Gw->dispatchedFor("bulk"));
    });
  // Every request must be sitting in its queue before dispatch resumes,
  // or the race (not the scheduler) decides the interleaving.
  for (int Spin = 0; Gw->queuedTotal() < BulkOps + LightOps && Spin < 2000;
       ++Spin)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_EQ(Gw->queuedTotal(), static_cast<size_t>(BulkOps + LightOps));
  Gw->resumeDispatch();
  for (auto &T : Threads)
    T.join();

  // Round-robin interleaves the two backlogs, so the light tenant's last
  // op completed while most of the bulk backlog was still queued. (Counts
  // include each tenant's StartSession dispatch.)
  uint64_t BulkAtLightDone = BulkDispatchedWhenLightFinished.load();
  ASSERT_NE(BulkAtLightDone, UINT64_MAX);
  EXPECT_LT(BulkAtLightDone, 1u + BulkOps);
  EXPECT_EQ(Gw->dispatchedFor("bulk"), 1u + BulkOps);
  EXPECT_EQ(Gw->dispatchedFor("light"), 1u + LightOps);
}

// -- End-to-end episodes ------------------------------------------------------

TEST(Gateway, RemoteEpisodeIsIdenticalToInProcess) {
  // Control: a plain in-process env.
  core::MakeOptions MO;
  MO.Benchmark = Crc32;
  MO.ObservationSpace = "Autophase";
  MO.RewardSpace = "IrInstructionCount";
  auto Control = core::make("llvm-v0", MO);
  ASSERT_TRUE(Control.isOk()) << Control.status().toString();

  GatewayOptions Opts;
  Opts.NumShards = 2;
  Opts.Tenants = {{"t", "tok"}};
  auto Gw = serveGateway(std::move(Opts), "e2e");
  auto Remote = connectEnv(*Gw, "tok");
  ASSERT_TRUE(Remote.isOk()) << Remote.status().toString();

  auto CtlObs = (*Control)->reset();
  auto RemObs = (*Remote)->reset();
  ASSERT_TRUE(CtlObs.isOk());
  ASSERT_TRUE(RemObs.isOk()) << RemObs.status().toString();
  EXPECT_EQ(CtlObs->Ints, RemObs->Ints);

  // Repeats on purpose: a re-applied pass often changes nothing, which is
  // exactly what the delta handshake compresses.
  const std::vector<int> Actions = {0, 1, 1, 2, 0, 0, 3, 2, 1, 0};
  for (int A : Actions) {
    auto Ctl = (*Control)->step(A);
    auto Rem = (*Remote)->step(A);
    ASSERT_TRUE(Ctl.isOk()) << Ctl.status().toString();
    ASSERT_TRUE(Rem.isOk()) << Rem.status().toString();
    EXPECT_EQ(Ctl->Obs.Ints, Rem->Obs.Ints) << "action " << A;
    EXPECT_DOUBLE_EQ(Ctl->Reward, Rem->Reward) << "action " << A;
  }
  EXPECT_DOUBLE_EQ((*Control)->episodeReward(), (*Remote)->episodeReward());
  // The wire-delta handshake worked through the gateway's byte-for-byte
  // reply forwarding.
  EXPECT_GT((*Remote)->deltaRepliesReceived(), 0u);
  EXPECT_EQ((*Control)->deltaRepliesReceived(),
            (*Remote)->deltaRepliesReceived());
}

TEST(Gateway, RemoteTraceStitchesThroughGateway) {
  TracerReset Guard;
  GatewayOptions Opts;
  Opts.NumShards = 1;
  auto Gw = serveGateway(std::move(Opts), "trace");
  auto Env = connectEnv(*Gw, "");
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());

  telemetry::Tracer::global().setEnabled(true);
  uint64_t RootTrace = 0;
  {
    telemetry::SpanScope Root("episode", "test");
    ASSERT_TRUE(Root.active());
    RootTrace = Root.traceId();
    ASSERT_TRUE((*Env)->step(0).isOk());
  }
  // Client, gateway and shards share this process, so one snapshot holds
  // both halves of the stitched trace: the client's rpc span and the
  // backend's service span, on the same trace id, correlated through the
  // envelope ids the gateway preserved.
  auto Spans = telemetry::Tracer::global().snapshotSpans();
  bool SawClientRpc = false, SawServiceStep = false;
  for (const auto &S : Spans) {
    if (S.TraceId != RootTrace)
      continue;
    // S.Cat is a const char* — compare contents, not literal addresses.
    if (S.Name == "rpc:step" && std::string_view(S.Cat) == "client")
      SawClientRpc = true;
    if (S.Name == "service:step" && std::string_view(S.Cat) == "service")
      SawServiceStep = true;
  }
  EXPECT_TRUE(SawClientRpc);
  EXPECT_TRUE(SawServiceStep);
}

// -- Shard loss, drain, scale-out ---------------------------------------------

TEST(Gateway, TransparentlyRestoresSessionAfterShardRestart) {
  GatewayOptions Opts;
  Opts.NumShards = 1;
  auto Gw = serveGateway(std::move(Opts), "restore");
  auto Env = connectEnv(*Gw, "");
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  ASSERT_TRUE((*Env)->step(0).isOk());
  ASSERT_TRUE((*Env)->step(1).isOk());

  // Kill every backend session (the shard restarts in place, as after a
  // crash + monitor sweep). The gateway must restore from the snapshot
  // store without the client noticing.
  Gw->broker().shardService(0)->restart();
  auto R = (*Env)->step(2);
  ASSERT_TRUE(R.isOk()) << R.status().toString();
  EXPECT_GE(Gw->restores(), 1u);
  EXPECT_EQ((*Env)->serviceRecoveries(), 0u); // Invisible to the client.

  // The restored trajectory matches an uninterrupted control episode.
  core::MakeOptions MO;
  MO.Benchmark = Crc32;
  MO.ObservationSpace = "Autophase";
  MO.RewardSpace = "IrInstructionCount";
  auto Control = core::make("llvm-v0", MO);
  ASSERT_TRUE(Control.isOk());
  ASSERT_TRUE((*Control)->reset().isOk());
  for (int A : {0, 1, 2})
    ASSERT_TRUE((*Control)->step(A).isOk());
  EXPECT_DOUBLE_EQ((*Env)->episodeReward(), (*Control)->episodeReward());
}

TEST(Gateway, SurvivesCrashyShardsMidEpisode) {
  core::MakeOptions MO;
  MO.Benchmark = Crc32;
  MO.ObservationSpace = "Autophase";
  MO.RewardSpace = "IrInstructionCount";
  auto Control = core::make("llvm-v0", MO);
  ASSERT_TRUE(Control.isOk());
  ASSERT_TRUE((*Control)->reset().isOk());

  GatewayOptions Opts;
  Opts.NumShards = 1;
  Opts.ShardFaults.CrashAfterOps = 6;
  Opts.MonitorIntervalMs = 2; // Restart crashed shards promptly.
  auto Gw = serveGateway(std::move(Opts), "crashy");
  auto Env = connectEnv(*Gw, "");
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  for (int Step = 0; Step < 10; ++Step) {
    auto R = (*Env)->step(Step % 4);
    ASSERT_TRUE(R.isOk()) << "step " << Step << ": "
                          << R.status().toString();
    auto C = (*Control)->step(Step % 4);
    ASSERT_TRUE(C.isOk());
    EXPECT_EQ(C->Obs.Ints, R->Obs.Ints) << "step " << Step;
  }
  EXPECT_DOUBLE_EQ((*Env)->episodeReward(), (*Control)->episodeReward());
  // The episode crossed at least one crash, healed by the gateway's
  // transparent restore and/or the env's own re-establishment.
  EXPECT_GE(Gw->broker().shardRestarts(), 1u);
}

TEST(Gateway, DrainMigratesLiveSessionMidEpisode) {
  GatewayOptions Opts;
  Opts.NumShards = 2;
  auto Gw = serveGateway(std::move(Opts), "drain");
  auto Env = connectEnv(*Gw, "");
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  ASSERT_TRUE((*Env)->step(0).isOk());
  ASSERT_TRUE((*Env)->step(1).isOk());

  // The session landed on one of the two shards; drain until it moves.
  size_t Moved = Gw->drainShard(0);
  if (Moved == 0) {
    Gw->undrainShard(0);
    Moved = Gw->drainShard(1);
  }
  EXPECT_EQ(Moved, 1u);
  EXPECT_GE(Gw->migrations(), 1u);

  // The episode continues on the new shard, mid-flight, same trajectory.
  for (int A : {2, 3, 0})
    ASSERT_TRUE((*Env)->step(A).isOk());
  core::MakeOptions MO;
  MO.Benchmark = Crc32;
  MO.ObservationSpace = "Autophase";
  MO.RewardSpace = "IrInstructionCount";
  auto Control = core::make("llvm-v0", MO);
  ASSERT_TRUE(Control.isOk());
  ASSERT_TRUE((*Control)->reset().isOk());
  for (int A : {0, 1, 2, 3, 0})
    ASSERT_TRUE((*Control)->step(A).isOk());
  EXPECT_DOUBLE_EQ((*Env)->episodeReward(), (*Control)->episodeReward());
}

TEST(Gateway, AddShardGrowsTheFleetLive) {
  GatewayOptions Opts;
  Opts.NumShards = 1;
  auto Gw = serveGateway(std::move(Opts), "scale");
  ASSERT_EQ(Gw->numShards(), 1u);
  auto A = connectEnv(*Gw, "");
  ASSERT_TRUE(A.isOk());
  ASSERT_TRUE((*A)->reset().isOk());

  size_t NewShard = Gw->addShard();
  EXPECT_EQ(NewShard, 1u);
  EXPECT_EQ(Gw->numShards(), 2u);

  // Drain the old shard: the live session moves to the new one, and new
  // sessions land there too.
  EXPECT_EQ(Gw->drainShard(0), 1u);
  auto B = connectEnv(*Gw, "");
  ASSERT_TRUE(B.isOk());
  ASSERT_TRUE((*B)->reset().isOk());
  ASSERT_TRUE((*A)->step(0).isOk());
  ASSERT_TRUE((*B)->step(0).isOk());
  EXPECT_EQ(Gw->sessionCount(), 2u);
}

// -- Concurrency (TSan acceptance) --------------------------------------------

TEST(Gateway, ConcurrentTenantsWithDrainAndScaleOut) {
  GatewayOptions Opts;
  Opts.NumShards = 2;
  Opts.Tenants = {{"a", "a-tok"}, {"b", "b-tok"}, {"c", "c-tok"}};
  auto Gw = serveGateway(std::move(Opts), "load");

  constexpr int EnvsPerTenant = 2, Steps = 6;
  std::atomic<int> Failures{0};
  std::vector<std::thread> Threads;
  for (const char *Token : {"a-tok", "b-tok", "c-tok"})
    for (int E = 0; E < EnvsPerTenant; ++E)
      Threads.emplace_back([&Gw, Token, &Failures] {
        auto Env = connectEnv(*Gw, Token, /*RewardSpace=*/"none");
        if (!Env.isOk() || !(*Env)->reset().isOk()) {
          ++Failures;
          return;
        }
        for (int I = 0; I < Steps; ++I)
          if (!(*Env)->step(I % 5).isOk()) {
            ++Failures;
            return;
          }
      });
  // Reshape the fleet while the episodes run.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  Gw->addShard();
  Gw->drainShard(0);
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Failures.load(), 0);
  EXPECT_GE(Gw->numShards(), 3u);
}

} // namespace
