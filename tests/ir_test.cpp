//===- tests/ir_test.cpp - IR core unit tests ------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "datasets/CsmithGenerator.h"
#include "datasets/CuratedSuites.h"
#include "datasets/StressGenerator.h"
#include "ir/Dominators.h"
#include "ir/IRBuilder.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace compiler_gym;
using namespace compiler_gym::ir;

namespace {

TEST(Type, NamesRoundTrip) {
  for (Type Ty : {Type::Void, Type::I1, Type::I32, Type::I64, Type::F64,
                  Type::Ptr, Type::Label}) {
    Type Parsed;
    ASSERT_TRUE(typeFromName(typeName(Ty), Parsed));
    EXPECT_EQ(Parsed, Ty);
  }
  Type Out;
  EXPECT_FALSE(typeFromName("i128", Out));
}

TEST(Type, Predicates) {
  EXPECT_TRUE(isIntegerType(Type::I1));
  EXPECT_TRUE(isIntegerType(Type::I64));
  EXPECT_FALSE(isIntegerType(Type::F64));
  EXPECT_TRUE(isFirstClassType(Type::Ptr));
  EXPECT_FALSE(isFirstClassType(Type::Void));
  EXPECT_FALSE(isFirstClassType(Type::Label));
  EXPECT_EQ(integerBitWidth(Type::I32), 32);
}

TEST(Opcode, NamesRoundTrip) {
  for (int I = 0; I < NumOpcodes; ++I) {
    Opcode Op = static_cast<Opcode>(I);
    Opcode Parsed;
    ASSERT_TRUE(opcodeFromName(opcodeName(Op), Parsed)) << opcodeName(Op);
    EXPECT_EQ(Parsed, Op);
  }
  Opcode Out;
  EXPECT_FALSE(opcodeFromName("frobnicate", Out));
}

TEST(Module, ConstantsAreUniqued) {
  Module M;
  EXPECT_EQ(M.getConstInt(Type::I64, 42), M.getConstInt(Type::I64, 42));
  EXPECT_NE(M.getConstInt(Type::I64, 42), M.getConstInt(Type::I32, 42));
  EXPECT_NE(M.getConstInt(Type::I64, 42), M.getConstInt(Type::I64, 43));
  EXPECT_EQ(M.getConstFloat(1.5), M.getConstFloat(1.5));
  EXPECT_EQ(M.getTrue()->intValue(), 1);
  EXPECT_EQ(M.getFalse()->intValue(), 0);
}

TEST(Module, I32ConstantsCanonicalizeToWidth) {
  Module M;
  // Value stored truncated: 2^32 + 7 == 7 as i32.
  EXPECT_EQ(M.getConstInt(Type::I32, (1ll << 32) + 7),
            M.getConstInt(Type::I32, 7));
}

TEST(Module, FindAndEraseFunction) {
  Module M;
  Function *F = M.createFunction("f", Type::Void);
  EXPECT_EQ(M.findFunction("f"), F);
  EXPECT_EQ(M.findFunction("g"), nullptr);
  M.eraseFunction(F);
  EXPECT_EQ(M.findFunction("f"), nullptr);
}

/// Builds: main() { if (n > 3) r = n * 2 else r = n + 1; ret r }.
std::unique_ptr<Module> buildDiamond() {
  auto M = std::make_unique<Module>("diamond");
  Function *F = M->createFunction("main", Type::I64);
  Argument *N = F->addArgument(Type::I64, "n");
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Then = F->createBlock("then");
  BasicBlock *Else = F->createBlock("else");
  BasicBlock *Merge = F->createBlock("merge");
  IRBuilder B(Entry);
  Instruction *Cmp = B.createICmp(Pred::GT, N, M->getConstInt(Type::I64, 3));
  B.createCondBr(Cmp, Then, Else);
  B.setInsertPoint(Then);
  Instruction *Mul = B.createMul(N, M->getConstInt(Type::I64, 2));
  B.createBr(Merge);
  B.setInsertPoint(Else);
  Instruction *Add = B.createAdd(N, M->getConstInt(Type::I64, 1));
  B.createBr(Merge);
  B.setInsertPoint(Merge);
  Instruction *Phi = B.createPhi(Type::I64);
  Phi->addIncoming(Mul, Then);
  Phi->addIncoming(Add, Else);
  B.createRet(Phi);
  return M;
}

TEST(IRBuilder, DiamondVerifies) {
  auto M = buildDiamond();
  EXPECT_TRUE(verifyModule(*M).isOk());
  EXPECT_EQ(M->instructionCount(), 8u);
}

TEST(Module, CloneIsDeepAndIdentical) {
  auto M = buildDiamond();
  auto Clone = M->clone();
  EXPECT_EQ(printModule(*M), printModule(*Clone));
  EXPECT_EQ(M->hash(), Clone->hash());
  // Mutating the clone does not affect the original. (Flip a predicate
  // rather than erasing: the icmp still has users, and printing a module
  // with a dangling operand is undefined behaviour — it tripped the
  // Constant type assertions in Debug builds.)
  Clone->findFunction("main")->entry()->front()->setPred(Pred::GE);
  EXPECT_NE(printModule(*M), printModule(*Clone));
}

TEST(Module, HashDetectsAnyChange) {
  auto M = buildDiamond();
  StateHash Before = M->hash();
  Function *F = M->findFunction("main");
  Instruction *Cmp = F->entry()->front();
  Cmp->setPred(Pred::GE);
  EXPECT_NE(M->hash(), Before);
}

TEST(StateHash, HexRoundTrip) {
  StateHash H = hashBytes("hello world");
  StateHash Parsed;
  ASSERT_TRUE(StateHash::fromHex(H.hex(), Parsed));
  EXPECT_EQ(Parsed, H);
  EXPECT_FALSE(StateHash::fromHex("xyz", Parsed));
  EXPECT_FALSE(StateHash::fromHex(std::string(40, 'g'), Parsed));
  EXPECT_NE(hashBytes("a").hex(), hashBytes("b").hex());
}

TEST(Function, ReplaceAllUsesWith) {
  auto M = buildDiamond();
  Function *F = M->findFunction("main");
  Argument *N = F->arg(0);
  Constant *Seven = M->getConstInt(Type::I64, 7);
  size_t Rewritten = F->replaceAllUsesWith(N, Seven);
  EXPECT_EQ(Rewritten, 3u); // icmp, mul, add.
  EXPECT_FALSE(F->hasUses(N));
}

TEST(Function, UseCounts) {
  auto M = buildDiamond();
  Function *F = M->findFunction("main");
  auto Counts = F->computeUseCounts();
  EXPECT_EQ(Counts.at(F->arg(0)), 3u);
}

TEST(BasicBlock, PredecessorsAndSuccessors) {
  auto M = buildDiamond();
  Function *F = M->findFunction("main");
  BasicBlock *Entry = F->findBlock("entry");
  BasicBlock *Merge = F->findBlock("merge");
  ASSERT_NE(Entry, nullptr);
  ASSERT_NE(Merge, nullptr);
  EXPECT_EQ(Entry->successors().size(), 2u);
  EXPECT_TRUE(Entry->predecessors().empty());
  EXPECT_EQ(Merge->predecessors().size(), 2u);
  EXPECT_EQ(Merge->firstNonPhi(), 1u);
}

// -- Printer / parser ---------------------------------------------------------

TEST(Parser, RoundTripsHandWrittenModule) {
  auto M = buildDiamond();
  std::string Text = printModule(*M);
  auto Parsed = parseModule(Text);
  ASSERT_TRUE(Parsed.isOk()) << Parsed.status().toString();
  EXPECT_EQ(printModule(**Parsed), Text);
  EXPECT_TRUE(verifyModule(**Parsed).isOk());
}

TEST(Parser, AcceptsForwardFunctionReferences) {
  const char *Text = R"(module "fwd"
func @caller() -> i64 {
entry:
  %r = call i64 func @callee, i64 1
  ret i64 %r
}
func @callee(i64 %x) -> i64 {
entry:
  ret i64 %x
}
)";
  auto Parsed = parseModule(Text);
  ASSERT_TRUE(Parsed.isOk()) << Parsed.status().toString();
  EXPECT_TRUE(verifyModule(**Parsed).isOk());
}

TEST(Parser, ReportsLineNumbersOnErrors) {
  auto R = parseModule("module \"x\"\nfunc @f() -> i64 {\nentry:\n  %a = "
                       "bogus i64 i64 1\n}\n");
  ASSERT_FALSE(R.isOk());
  EXPECT_NE(R.status().message().find("line 4"), std::string::npos);
}

TEST(Parser, RejectsMalformedInputs) {
  EXPECT_FALSE(parseModule("garbage top level").isOk());
  EXPECT_FALSE(parseModule("func @f() -> i64 {\nentry:\n  ret i64 %undef\n}")
                   .isOk());
  {
    // A truncated operand list parses (arity is a verifier concern)...
    auto Parsed = parseModule(
        "func @f() -> i64 {\nentry:\n  %a = add i64 i64 1\n  ret i64 "
        "%a\n}");
    ASSERT_TRUE(Parsed.isOk());
    // ...and the verifier rejects it.
    EXPECT_FALSE(verifyModule(**Parsed).isOk());
  }
  EXPECT_FALSE(
      parseModule("func @f() -> i64 {\n  ret i64 0\n}").isOk()); // No label.
  EXPECT_FALSE(parseModule("func @f() -> i64 {\nentry:\n  %a = add i64 i64 "
                           "1, i64 2\n  %a = add i64 i64 1, i64 2\n}")
                   .isOk()); // Duplicate name.
}

TEST(Parser, UnterminatedFunctionFails) {
  EXPECT_FALSE(parseModule("func @f() -> i64 {\nentry:\n  ret i64 0\n").isOk());
}

struct RoundTripCase {
  uint64_t Seed;
  const char *StyleName;
};

class GeneratorRoundTrip : public ::testing::TestWithParam<RoundTripCase> {};

TEST_P(GeneratorRoundTrip, PrintParsePrintIsStable) {
  const RoundTripCase &C = GetParam();
  std::unique_ptr<Module> M;
  if (std::string(C.StyleName) == "stress") {
    M = datasets::generateStressProgram(C.Seed, 1, "m");
  } else {
    datasets::ProgramStyle Style = datasets::styleForDataset(C.StyleName);
    M = datasets::generateProgram(C.Seed, Style, "m");
  }
  ASSERT_TRUE(verifyModule(*M).isOk());
  std::string Text = printModule(*M);
  auto Parsed = parseModule(Text);
  ASSERT_TRUE(Parsed.isOk()) << Parsed.status().toString();
  EXPECT_EQ(printModule(**Parsed), Text);
  EXPECT_TRUE(verifyModule(**Parsed).isOk());
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GeneratorRoundTrip,
    ::testing::Values(
        RoundTripCase{1, "benchmark://csmith-v0"},
        RoundTripCase{2, "benchmark://csmith-v0"},
        RoundTripCase{3, "benchmark://npb-v0"},
        RoundTripCase{4, "benchmark://github-v0"},
        RoundTripCase{5, "benchmark://linux-v0"},
        RoundTripCase{6, "benchmark://blas-v0"},
        RoundTripCase{7, "benchmark://tensorflow-v0"},
        RoundTripCase{8, "benchmark://poj104-v1"},
        RoundTripCase{9, "stress"}, RoundTripCase{10, "stress"},
        RoundTripCase{11, "benchmark://chstone-v0"},
        RoundTripCase{12, "benchmark://clgen-v0"}));

// -- Verifier ------------------------------------------------------------------

TEST(Verifier, CatchesMissingTerminator) {
  Module M;
  Function *F = M.createFunction("f", Type::Void);
  BasicBlock *BB = F->createBlock("entry");
  IRBuilder B(BB);
  B.createAlloca(1);
  EXPECT_FALSE(verifyFunction(*F).isOk());
}

TEST(Verifier, CatchesTypeErrors) {
  Module M;
  Function *F = M.createFunction("f", Type::Void);
  BasicBlock *BB = F->createBlock("entry");
  // add with mismatched operand types, built by hand.
  auto Bad = std::make_unique<Instruction>(
      Opcode::Add, Type::I64,
      std::vector<Value *>{M.getConstInt(Type::I64, 1),
                           M.getConstInt(Type::I32, 2)});
  BB->append(std::move(Bad));
  IRBuilder B(BB);
  B.createRet();
  EXPECT_FALSE(verifyFunction(*F).isOk());
}

TEST(Verifier, CatchesUseBeforeDef) {
  Module M;
  Function *F = M.createFunction("f", Type::I64);
  BasicBlock *BB = F->createBlock("entry");
  auto UseFirst = std::make_unique<Instruction>(Opcode::Add, Type::I64);
  Instruction *Use = BB->append(std::move(UseFirst));
  IRBuilder B(BB);
  Instruction *Def = B.createAdd(M.getConstInt(Type::I64, 1),
                                 M.getConstInt(Type::I64, 2));
  Use->operands().push_back(Def); // Use precedes def.
  Use->operands().push_back(Def);
  B.createRet(Use);
  EXPECT_FALSE(verifyFunction(*F).isOk());
}

TEST(Verifier, CatchesPhiPredMismatch) {
  auto M = buildDiamond();
  Function *F = M->findFunction("main");
  BasicBlock *Merge = F->findBlock("merge");
  Instruction *Phi = Merge->front();
  Phi->removeIncoming(0); // Now one incoming for two predecessors.
  EXPECT_FALSE(verifyFunction(*F).isOk());
}

TEST(Verifier, CatchesCallArityMismatch) {
  Module M;
  Function *Callee = M.createFunction("callee", Type::I64);
  Callee->addArgument(Type::I64, "x");
  BasicBlock *CB = Callee->createBlock("entry");
  IRBuilder CBuild(CB);
  CBuild.createRet(M.getConstInt(Type::I64, 0));

  Function *F = M.createFunction("f", Type::Void);
  BasicBlock *BB = F->createBlock("entry");
  auto Call = std::make_unique<Instruction>(
      Opcode::Call, Type::I64,
      std::vector<Value *>{M.getFunctionRef(Callee)}); // Zero args.
  BB->append(std::move(Call));
  IRBuilder B(BB);
  B.createRet();
  // Call-signature checks need module context to resolve the symbolic ref.
  EXPECT_FALSE(verifyFunction(*F, &M).isOk());
}

// -- Dominators ------------------------------------------------------------------

TEST(Dominators, DiamondDominance) {
  auto M = buildDiamond();
  Function *F = M->findFunction("main");
  DominatorTree DT(*F);
  BasicBlock *Entry = F->findBlock("entry");
  BasicBlock *Then = F->findBlock("then");
  BasicBlock *Else = F->findBlock("else");
  BasicBlock *Merge = F->findBlock("merge");
  EXPECT_TRUE(DT.dominates(Entry, Merge));
  EXPECT_TRUE(DT.dominates(Entry, Then));
  EXPECT_FALSE(DT.dominates(Then, Merge));
  EXPECT_FALSE(DT.dominates(Then, Else));
  EXPECT_TRUE(DT.dominates(Merge, Merge));
  EXPECT_EQ(DT.idom(Merge), Entry);
  EXPECT_EQ(DT.idom(Entry), nullptr);
  EXPECT_EQ(DT.reversePostorder().size(), 4u);
  EXPECT_EQ(DT.reversePostorder().front(), Entry);
}

TEST(Dominators, FindsNaturalLoop) {
  // entry -> header; header -> body|exit; body -> header.
  Module M;
  Function *F = M.createFunction("f", Type::Void);
  BasicBlock *Entry = F->createBlock("entry");
  BasicBlock *Header = F->createBlock("header");
  BasicBlock *Body = F->createBlock("body");
  BasicBlock *Exit = F->createBlock("exit");
  IRBuilder B(Entry);
  B.createBr(Header);
  B.setInsertPoint(Header);
  Instruction *Cmp = B.createICmp(Pred::LT, M.getConstInt(Type::I64, 0),
                                  M.getConstInt(Type::I64, 1));
  B.createCondBr(Cmp, Body, Exit);
  B.setInsertPoint(Body);
  B.createBr(Header);
  B.setInsertPoint(Exit);
  B.createRet();

  DominatorTree DT(*F);
  std::vector<NaturalLoop> Loops = findNaturalLoops(*F, DT);
  ASSERT_EQ(Loops.size(), 1u);
  EXPECT_EQ(Loops[0].Header, Header);
  EXPECT_EQ(Loops[0].Blocks.size(), 2u);
  EXPECT_TRUE(Loops[0].contains(Body));
  EXPECT_FALSE(Loops[0].contains(Exit));
  ASSERT_EQ(Loops[0].Latches.size(), 1u);
  EXPECT_EQ(Loops[0].Latches[0], Body);
}

TEST(Dominators, UnreachableBlocksHandled) {
  auto M = buildDiamond();
  Function *F = M->findFunction("main");
  BasicBlock *Orphan = F->createBlock("orphan");
  IRBuilder B(Orphan);
  B.createRet(M->getConstInt(Type::I64, 0));
  DominatorTree DT(*F);
  EXPECT_FALSE(DT.isReachable(Orphan));
  EXPECT_TRUE(DT.dominates(F->findBlock("entry"), Orphan)); // Vacuous.
  EXPECT_FALSE(DT.dominates(Orphan, F->findBlock("merge")));
}

} // namespace
