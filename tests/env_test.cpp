//===- tests/env_test.cpp - End-to-end environment tests -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The Listing-1 loop and every frontend feature over the real RPC stack:
// make/reset/step/observe, rewards, batching, laziness, fork, state
// serialization, and writeIr.

#include "core/Registry.h"
#include "core/Wrappers.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

using namespace compiler_gym;
using namespace compiler_gym::core;

namespace {

std::unique_ptr<CompilerEnv> makeLlvm(const std::string &Benchmark =
                                          "benchmark://cbench-v1/crc32") {
  MakeOptions Opts;
  Opts.Benchmark = Benchmark;
  Opts.ObservationSpace = "Autophase";
  Opts.RewardSpace = "IrInstructionCount";
  auto Env = make("llvm-v0", Opts);
  EXPECT_TRUE(Env.isOk()) << Env.status().toString();
  return Env.takeValue();
}

TEST(Env, MakeUnknownEnvFails) {
  auto Env = make("not-an-env-v0");
  ASSERT_FALSE(Env.isOk());
  EXPECT_EQ(Env.status().code(), StatusCode::NotFound);
}

TEST(Env, ResetReturnsAutophaseObservation) {
  auto Env = makeLlvm();
  auto Obs = Env->reset();
  ASSERT_TRUE(Obs.isOk()) << Obs.status().toString();
  EXPECT_EQ(Obs->Ints.size(), 56u);
}

TEST(Env, StepBeforeResetFails) {
  auto Env = makeLlvm();
  auto R = Env->step(0);
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::FailedPrecondition);
}

TEST(Env, ActionSpaceIsTheDefaultPassList) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  EXPECT_GT(Env->actionSpace().size(), 40u);
  // Quarantined nondeterministic pass must not be an action.
  for (const std::string &Name : Env->actionSpace().ActionNames)
    EXPECT_NE(Name, "gvn-sink");
}

TEST(Env, ListingOneInteractionLoop) {
  auto Env = makeLlvm("benchmark://cbench-v1/qsort");
  ASSERT_TRUE(Env->reset().isOk());
  Rng Gen(7);
  double Cumulative = 0.0;
  for (int I = 0; I < 50; ++I) {
    int Action = static_cast<int>(Gen.bounded(Env->actionSpace().size()));
    auto R = Env->step(Action);
    ASSERT_TRUE(R.isOk()) << R.status().toString();
    Cumulative += R->Reward;
    EXPECT_FALSE(R->Done); // Phase ordering has no terminal state.
  }
  EXPECT_NEAR(Cumulative, Env->episodeReward(), 1e-9);
  EXPECT_EQ(Env->episodeLength(), 50u);
}

TEST(Env, RewardIsInstructionCountDelta) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  auto Before = Env->observation()["IrInstructionCount"];
  ASSERT_TRUE(Before.isOk());
  // mem2reg strictly shrinks -O0-style code.
  int Mem2Reg = -1;
  const auto &Names = Env->actionSpace().ActionNames;
  for (size_t I = 0; I < Names.size(); ++I)
    if (Names[I] == "mem2reg")
      Mem2Reg = static_cast<int>(I);
  ASSERT_GE(Mem2Reg, 0);
  auto R = Env->step(Mem2Reg);
  ASSERT_TRUE(R.isOk());
  auto After = Env->observation()["IrInstructionCount"];
  ASSERT_TRUE(After.isOk());
  EXPECT_GT(R->Reward, 0.0);
  EXPECT_EQ(static_cast<int64_t>(R->Reward),
            *Before->asInt64() - *After->asInt64());
}

TEST(Env, BatchedStepMatchesSequentialFinalState) {
  auto EnvA = makeLlvm();
  auto EnvB = makeLlvm();
  ASSERT_TRUE(EnvA->reset().isOk());
  ASSERT_TRUE(EnvB->reset().isOk());
  std::vector<int> Actions = {0, 5, 9, 2, 14};
  for (int A : Actions)
    ASSERT_TRUE(EnvA->step(A).isOk());
  ASSERT_TRUE(EnvB->step(Actions).isOk()); // One batched RPC.
  auto HashA = EnvA->observation()["IrHash"];
  auto HashB = EnvB->observation()["IrHash"];
  ASSERT_TRUE(HashA.isOk());
  ASSERT_TRUE(HashB.isOk());
  EXPECT_EQ(*HashA->asString(), *HashB->asString());
  // Batched used fewer RPCs.
  EXPECT_LT(EnvB->client().rpcCount(), EnvA->client().rpcCount());
}

TEST(Env, LazyObservationSpaces) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  for (const char *Space : {"Ir", "InstCount", "Autophase", "Inst2vec",
                            "Programl", "IrInstructionCount",
                            "ObjectTextSizeBytes"}) {
    auto Obs = Env->observation()[Space];
    EXPECT_TRUE(Obs.isOk()) << Space << ": " << Obs.status().toString();
  }
  auto Bad = Env->observation()["NotASpace"];
  ASSERT_FALSE(Bad.isOk());
  EXPECT_EQ(Bad.status().code(), StatusCode::NotFound);
}

TEST(Env, ForkProducesIndependentCopies) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  ASSERT_TRUE(Env->step(3).isOk());

  auto Forked = Env->fork();
  ASSERT_TRUE(Forked.isOk()) << Forked.status().toString();
  auto HashBase = Env->observation()["IrHash"];
  auto HashFork = (*Forked)->observation()["IrHash"];
  ASSERT_TRUE(HashBase.isOk());
  ASSERT_TRUE(HashFork.isOk());
  EXPECT_EQ(HashBase->raw().Str, HashFork->raw().Str);

  // Stepping the fork must not disturb the original.
  int Mem2Reg = -1;
  const auto &Names = Env->actionSpace().ActionNames;
  for (size_t I = 0; I < Names.size(); ++I)
    if (Names[I] == "mem2reg")
      Mem2Reg = static_cast<int>(I);
  ASSERT_TRUE((*Forked)->step(Mem2Reg).isOk());
  auto HashBase2 = Env->observation()["IrHash"];
  auto HashFork2 = (*Forked)->observation()["IrHash"];
  EXPECT_EQ(HashBase->raw().Str, HashBase2->raw().Str);
  EXPECT_NE(HashFork2->raw().Str, HashBase2->raw().Str);
}

TEST(Env, ForkInheritsEpisodeState) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  ASSERT_TRUE(Env->step(1).isOk());
  ASSERT_TRUE(Env->step(2).isOk());
  auto Forked = Env->fork();
  ASSERT_TRUE(Forked.isOk());
  EXPECT_EQ((*Forked)->state().Actions, Env->state().Actions);
  EXPECT_DOUBLE_EQ((*Forked)->episodeReward(), Env->episodeReward());
}

TEST(Env, StateSerializationRoundTrips) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  ASSERT_TRUE(Env->step(std::vector<int>{4, 8, 15}).isOk());
  EnvState State = Env->state();
  auto Restored = EnvState::deserialize(State.serialize());
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
  EXPECT_EQ(*Restored, State);
}

TEST(Env, WriteIrProducesParsableText) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  std::string Path = ::testing::TempDir() + "/cg_env_test_out.ir";
  ASSERT_TRUE(Env->writeIr(Path).isOk());
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::string First;
  std::getline(In, First);
  EXPECT_EQ(First.rfind("module", 0), 0u);
  std::remove(Path.c_str());
}

TEST(Env, RuntimeRewardOnlyForRunnableBenchmarks) {
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://chstone-v0/sha"; // Not runnable.
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "none";
  auto Env = make("llvm-v0", Opts);
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  auto Runtime = (*Env)->observation()["Runtime"];
  ASSERT_FALSE(Runtime.isOk());
  EXPECT_EQ(Runtime.status().code(), StatusCode::FailedPrecondition);

  auto Runnable = makeLlvm("benchmark://cbench-v1/crc32");
  ASSERT_TRUE(Runnable->reset().isOk());
  auto Seconds = Runnable->observation()["Runtime"];
  ASSERT_TRUE(Seconds.isOk()) << Seconds.status().toString();
  EXPECT_GT(*Seconds->asDouble(), 0.0);
}

TEST(Env, ScaledRewardReachesOneAtOzParity) {
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/bitcount";
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "IrInstructionCountOz";
  auto Env = make("llvm-v0", Opts);
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  // Apply the -Oz pipeline manually through actions; cumulative scaled
  // reward should approach ~1.0 (parity with -Oz).
  const auto &Names = (*Env)->actionSpace().ActionNames;
  auto indexOf = [&](const std::string &Name) {
    for (size_t I = 0; I < Names.size(); ++I)
      if (Names[I] == Name)
        return static_cast<int>(I);
    return -1;
  };
  for (int Round = 0; Round < 3; ++Round)
    for (const char *Pass :
         {"mem2reg", "instcombine", "simplifycfg", "sccp", "early-cse",
          "gvn", "loop-simplify", "licm", "loop-delete", "dse-local",
          "store-forward", "redundant-load-elim", "adce", "phi-simplify",
          "simplifycfg", "global-dce"}) {
      int Idx = indexOf(Pass);
      ASSERT_GE(Idx, 0) << Pass;
      ASSERT_TRUE((*Env)->step(Idx).isOk());
    }
  EXPECT_GT((*Env)->episodeReward(), 0.9);
}

TEST(Env, MultiSpaceStepIsOneRpc) {
  auto Env = makeLlvm();
  ASSERT_TRUE(Env->reset().isOk());
  uint64_t Before = Env->client().rpcCount();
  // Three observation spaces plus two reward spaces (the active one and an
  // explicit scaled one) all ride the single step RPC.
  auto R = Env->step({0}, {"InstCount", "Autophase", "IrInstructionCount"},
                     {"IrInstructionCount", "IrInstructionCountOz"});
  ASSERT_TRUE(R.isOk()) << R.status().toString();
  EXPECT_EQ(Env->client().rpcCount(), Before + 1);

  ASSERT_EQ(R->Observations.size(), 3u);
  EXPECT_EQ(R->Observations[0].first, "InstCount");
  EXPECT_TRUE(R->Observations[0].second.asInt64List().isOk());
  EXPECT_EQ(R->Observations[1].first, "Autophase");
  EXPECT_EQ(R->Observations[1].second.asInt64List()->size(), 56u);
  EXPECT_EQ(R->Observations[2].first, "IrInstructionCount");
  EXPECT_TRUE(R->Observations[2].second.asInt64().isOk());
  ASSERT_EQ(R->Rewards.size(), 2u);
  EXPECT_EQ(R->Rewards[0].first, "IrInstructionCount");
  // The active reward space and its explicit request settle identically.
  EXPECT_DOUBLE_EQ(R->Rewards[0].second, R->Reward);

  // Post-step view queries of the requested spaces are cache hits: zero
  // additional RPCs.
  uint64_t AfterStep = Env->client().rpcCount();
  ASSERT_TRUE(Env->observation()["Autophase"].isOk());
  ASSERT_TRUE(Env->observation()["IrInstructionCount"].isOk());
  EXPECT_EQ(Env->client().rpcCount(), AfterStep);
}

TEST(Env, SequentialObservesCostMoreRpcsThanMultiSpaceStep) {
  auto EnvA = makeLlvm();
  auto EnvB = makeLlvm();
  ASSERT_TRUE(EnvA->reset().isOk());
  ASSERT_TRUE(EnvB->reset().isOk());
  const std::vector<std::string> Spaces = {"InstCount", "Autophase", "Ir"};
  uint64_t BeforeA = EnvA->client().rpcCount();
  ASSERT_TRUE(EnvA->step({0}, Spaces).isOk());
  uint64_t CostA = EnvA->client().rpcCount() - BeforeA;

  uint64_t BeforeB = EnvB->client().rpcCount();
  ASSERT_TRUE(EnvB->step(0).isOk());
  for (const std::string &S : Spaces)
    ASSERT_TRUE(EnvB->rawObservations({S}).isOk());
  uint64_t CostB = EnvB->client().rpcCount() - BeforeB;
  EXPECT_EQ(CostA, 1u);
  EXPECT_EQ(CostB, 1u + Spaces.size());
}

TEST(Env, RegisteredDerivedRewardDrivesFullEpisode) {
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "none";
  auto EnvOr = make("llvm-v0", Opts);
  ASSERT_TRUE(EnvOr.isOk());
  CompilerEnv &Env = **EnvOr;

  // A user reward: fraction of the episode-initial instruction count
  // removed by each step. Registered entirely client-side.
  RewardSpec Spec;
  Spec.Name = "InstCountFractionRemoved";
  Spec.MetricObservation = "IrInstructionCount";
  Spec.Combiner = [](double Current, double Previous, double Initial,
                     double) { return (Previous - Current) / Initial; };
  ASSERT_TRUE(Env.reward().registerReward(Spec).isOk());
  ASSERT_TRUE(Env.setRewardSpace("InstCountFractionRemoved").isOk());

  ASSERT_TRUE(Env.reset().isOk());
  auto Initial = Env.observation()["IrInstructionCount"];
  ASSERT_TRUE(Initial.isOk());

  int Mem2Reg = -1;
  const auto &Names = Env.actionSpace().ActionNames;
  for (size_t I = 0; I < Names.size(); ++I)
    if (Names[I] == "mem2reg")
      Mem2Reg = static_cast<int>(I);
  ASSERT_GE(Mem2Reg, 0);

  double Cumulative = 0.0;
  for (int S = 0; S < 10; ++S) {
    auto R = Env.step(S == 0 ? Mem2Reg : S);
    ASSERT_TRUE(R.isOk()) << R.status().toString();
    Cumulative += R->Reward;
  }
  EXPECT_NEAR(Cumulative, Env.episodeReward(), 1e-9);
  // Cumulative telescopes to (initial - final) / initial.
  auto Final = Env.observation()["IrInstructionCount"];
  ASSERT_TRUE(Final.isOk());
  double Expected =
      static_cast<double>(*Initial->asInt64() - *Final->asInt64()) /
      static_cast<double>(*Initial->asInt64());
  EXPECT_NEAR(Env.episodeReward(), Expected, 1e-9);
  EXPECT_GT(Env.episodeReward(), 0.0); // mem2reg shrank the module.
}

TEST(Env, SetRewardSpaceMidEpisodeReprimesBaseline) {
  auto Env = makeLlvm(); // Active: IrInstructionCount (delta).
  ASSERT_TRUE(Env->reset().isOk());
  int Mem2Reg = -1;
  const auto &Names = Env->actionSpace().ActionNames;
  for (size_t I = 0; I < Names.size(); ++I)
    if (Names[I] == "mem2reg")
      Mem2Reg = static_cast<int>(I);
  ASSERT_TRUE(Env->step(Mem2Reg).isOk());

  // Switch to a metric with a very different magnitude mid-episode. The
  // switch must re-prime from a fresh ObjectTextSizeBytes observation —
  // without it, the next delta would be computed against the *instruction
  // count* metric's last value.
  ASSERT_TRUE(Env->setRewardSpace("ObjectTextSizeBytes").isOk());
  auto SizeNow = Env->observation()["ObjectTextSizeBytes"];
  ASSERT_TRUE(SizeNow.isOk());

  // A pass that does not change this module's code: reward must be ~0, not
  // the (instcount - textsize) garbage the unprimed path would pay.
  auto R = Env->step(Mem2Reg); // Second mem2reg is a no-op.
  ASSERT_TRUE(R.isOk());
  auto SizeAfter = Env->observation()["ObjectTextSizeBytes"];
  double Expected = static_cast<double>(*SizeNow->asInt64()) -
                    static_cast<double>(*SizeAfter->asInt64());
  EXPECT_DOUBLE_EQ(R->Reward, Expected);

  // Switching back to a previously-used space re-primes it too.
  ASSERT_TRUE(Env->setRewardSpace("IrInstructionCount").isOk());
  auto R2 = Env->step(Mem2Reg);
  ASSERT_TRUE(R2.isOk());
  EXPECT_DOUBLE_EQ(R2->Reward, 0.0); // No change since the re-prime.
}

TEST(Env, BenchmarkGetterReportsAppliedNotPendingUri) {
  auto Env = makeLlvm("benchmark://cbench-v1/crc32");
  ASSERT_TRUE(Env->reset().isOk());
  EXPECT_EQ(Env->benchmark(), "benchmark://cbench-v1/crc32");

  Env->setBenchmark("benchmark://cbench-v1/sha");
  // The switch is pending until reset(): the getter keeps reporting the
  // URI this episode actually runs on.
  EXPECT_EQ(Env->benchmark(), "benchmark://cbench-v1/crc32");
  EXPECT_EQ(Env->pendingBenchmark(), "benchmark://cbench-v1/sha");
  EXPECT_EQ(Env->state().BenchmarkUri, "benchmark://cbench-v1/crc32");

  ASSERT_TRUE(Env->reset().isOk());
  EXPECT_EQ(Env->benchmark(), "benchmark://cbench-v1/sha");
  EXPECT_EQ(Env->pendingBenchmark(), "benchmark://cbench-v1/sha");
}

TEST(Env, EnvStateLegacyFiveFieldLineStillParses) {
  auto Restored = EnvState::deserialize(
      "llvm-v0|benchmark://cbench-v1/qsort|IrInstructionCount|1.5|4,8,15");
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
  EXPECT_EQ(Restored->ObservationSpace, "");
  EXPECT_EQ(Restored->RewardSpace, "IrInstructionCount");
  EXPECT_DOUBLE_EQ(Restored->CumulativeReward, 1.5);
  EXPECT_EQ(Restored->Actions, (std::vector<int>{4, 8, 15}));
}

TEST(Env, EnvStateRoundTripsAllSixFields) {
  EnvState State;
  State.EnvId = "llvm-v0";
  State.BenchmarkUri = "benchmark://cbench-v1/crc32";
  State.RewardSpace = "IrInstructionCount";
  State.ObservationSpace = "Autophase";
  State.Actions = {3, 1, 4, 1, 5};
  State.CumulativeReward = -2.25;
  auto Restored = EnvState::deserialize(State.serialize());
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
  EXPECT_EQ(*Restored, State);
  // An empty action history round-trips too (a fresh episode).
  State.Actions.clear();
  State.CumulativeReward = 0.0;
  Restored = EnvState::deserialize(State.serialize());
  ASSERT_TRUE(Restored.isOk()) << Restored.status().toString();
  EXPECT_EQ(*Restored, State);
}

TEST(Env, EnvStateRejectsMalformedLines) {
  EXPECT_FALSE(EnvState::deserialize("only|three|fields").isOk());
  EXPECT_FALSE(EnvState::deserialize(
                   "llvm-v0|benchmark://x/y|IrInstructionCount|Autophase|1.0|"
                   "x,y")
                   .isOk());
}

TEST(Wrappers, TimeLimitEndsEpisode) {
  auto Env = makeLlvm();
  TimeLimit Limited(std::move(Env), 3);
  ASSERT_TRUE(Limited.reset().isOk());
  ASSERT_FALSE(Limited.step(0)->Done);
  ASSERT_FALSE(Limited.step(1)->Done);
  EXPECT_TRUE(Limited.step(2)->Done);
}

TEST(Wrappers, ActionSubsetRemapsActions) {
  auto Env = makeLlvm();
  CompilerEnv *Raw = Env.get();
  ASSERT_TRUE(Env->reset().isOk());
  ActionSubset Subset(std::move(Env), {7, 2, 11});
  EXPECT_EQ(Subset.actionSpace().size(), 3u);
  ASSERT_TRUE(Subset.step(0).isOk());
  EXPECT_EQ(Raw->state().Actions, (std::vector<int>{7}));
  auto Bad = Subset.step(3);
  ASSERT_FALSE(Bad.isOk());
  EXPECT_EQ(Bad.status().code(), StatusCode::OutOfRange);
}

TEST(Wrappers, ObservationHistogramAppendsCounts) {
  auto Env = makeLlvm();
  size_t NumActions = 0;
  {
    ASSERT_TRUE(Env->reset().isOk());
    NumActions = Env->actionSpace().size();
  }
  ObservationHistogram WithHist(std::move(Env));
  auto Obs = WithHist.reset();
  ASSERT_TRUE(Obs.isOk());
  EXPECT_EQ(Obs->Ints.size(), 56u + NumActions);
  auto R = WithHist.step(0);
  ASSERT_TRUE(R.isOk());
  ASSERT_EQ(R->Obs.Ints.size(), 56u + NumActions);
  EXPECT_EQ(R->Obs.Ints[56], 100); // 100% of actions are action 0.
}

TEST(Wrappers, CycleOverBenchmarksRotates) {
  auto Wrapped = makeLlvm();
  CompilerEnv *Raw = Wrapped.get();
  CycleOverBenchmarks Cycle(
      std::move(Wrapped),
      {"benchmark://cbench-v1/crc32", "benchmark://cbench-v1/sha"},
      [](Env &E, const std::string &Uri) {
        static_cast<CompilerEnv &>(E).setBenchmark(Uri);
      });
  ASSERT_TRUE(Cycle.reset().isOk());
  EXPECT_EQ(Raw->benchmark(), "benchmark://cbench-v1/crc32");
  ASSERT_TRUE(Cycle.reset().isOk());
  EXPECT_EQ(Raw->benchmark(), "benchmark://cbench-v1/sha");
  ASSERT_TRUE(Cycle.reset().isOk());
  EXPECT_EQ(Raw->benchmark(), "benchmark://cbench-v1/crc32");
}

} // namespace
