//===- tests/analysis_manager_test.cpp - Invalidation correctness -*-C++-*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
// The differential invalidation suite: for every registered pass and a
// corpus of generated programs, running the pass under the AnalysisManager
// must leave every cached analysis (dominators, loops, feature vectors)
// byte-equal to a from-scratch recomputation. Plus the preservation-lie
// detector, pass-instance reuse, and the incremental feature cache.

#include "analysis/Autophase.h"
#include "analysis/FeatureCache.h"
#include "analysis/InstCount.h"
#include "analysis/Inst2vec.h"
#include "analysis/ProGraML.h"
#include "datasets/CsmithGenerator.h"
#include "datasets/CuratedSuites.h"
#include "datasets/DatasetRegistry.h"
#include "envs/llvm/LlvmSession.h"
#include "ir/Dominators.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "passes/PassManager.h"
#include "passes/Utils.h"
#include "passes/PassRegistry.h"

#include <gtest/gtest.h>

using namespace compiler_gym;
using namespace compiler_gym::ir;
using namespace compiler_gym::passes;

namespace {

std::unique_ptr<Module> parse(const std::string &Text) {
  auto M = parseModule(Text);
  EXPECT_TRUE(M.isOk()) << M.status().toString();
  return M.isOk() ? M.takeValue() : nullptr;
}

const char *TwoFunctionModule = R"(module "t"
func @helper(i64 %x) -> i64 {
entry:
  %slot = alloca ptr words 1
  store i64 %x, ptr %slot
  %v = load i64, ptr %slot
  %r = mul i64 i64 %v, i64 3
  ret i64 %r
}
func @main(i64 %n) -> i64 {
entry:
  %dead = add i64 i64 %n, i64 1
  %c = icmp i1 gt i64 %n, i64 0
  condbr i1 %c, label %then, label %done
then:
  %a = add i64 i64 %n, i64 5
  br label %done
done:
  %p = phi i64 [ 0, %entry ], [ %a, %then ]
  ret i64 %p
}
)";

TEST(PreservedAnalyses, MaskSemantics) {
  EXPECT_TRUE(PreservedAnalyses::all().preserves(AK_All));
  EXPECT_FALSE(PreservedAnalyses::none().preserves(AK_DomTree));
  PreservedAnalyses P = PreservedAnalyses::cfg();
  EXPECT_TRUE(P.preserves(AK_DomTree | AK_Loops));
  EXPECT_FALSE(P.preserves(AK_Features));
  EXPECT_FALSE(P.preserves(AK_Layout));
  EXPECT_EQ(P.abandoned(), AK_Features | AK_Layout);
  // Layout-only transforms keep counts and CFG analyses warm.
  PreservedAnalyses L = PreservedAnalyses::allButLayout();
  EXPECT_TRUE(L.preserves(AK_DomTree | AK_Loops | AK_Features));
  EXPECT_FALSE(L.preserves(AK_Layout));
  EXPECT_EQ(L.abandoned(), AK_Layout);
  P.intersect(PreservedAnalyses::none());
  EXPECT_EQ(P.abandoned(), AK_All);
  PreservedAnalyses Q = PreservedAnalyses::none().preserve(AK_Loops);
  EXPECT_TRUE(Q.preserves(AK_Loops));
  EXPECT_FALSE(Q.preserves(AK_DomTree));
}

TEST(AnalysisManager, CachesDomTreeAndLoops) {
  auto M = parse(TwoFunctionModule);
  Function *F = M->findFunction("main");
  AnalysisManager AM;
  const DominatorTree &DT1 = AM.domTree(*F);
  const DominatorTree &DT2 = AM.domTree(*F);
  EXPECT_EQ(&DT1, &DT2);
  EXPECT_EQ(AM.stats().DomTreeComputes, 1u);
  EXPECT_EQ(AM.stats().DomTreeHits, 1u);
  (void)AM.loops(*F);
  (void)AM.loops(*F);
  EXPECT_EQ(AM.stats().LoopComputes, 1u);
  EXPECT_EQ(AM.stats().LoopHits, 1u);

  // Feature-only invalidation keeps CFG analyses warm.
  AM.invalidate(*F, PreservedAnalyses::cfg());
  EXPECT_TRUE(AM.isCached(*F, AK_DomTree));
  EXPECT_TRUE(AM.isCached(*F, AK_Loops));
  // Full invalidation drops them.
  AM.invalidate(*F, PreservedAnalyses::none());
  EXPECT_FALSE(AM.isCached(*F, AK_DomTree));
  EXPECT_FALSE(AM.isCached(*F, AK_Loops));
  (void)AM.domTree(*F);
  EXPECT_EQ(AM.stats().DomTreeComputes, 2u);
}

TEST(FeatureCache, MatchesFromScratchAndRecountsOnlyDirty) {
  auto M = parse(TwoFunctionModule);
  analysis::FeatureCache Cache;
  EXPECT_EQ(Cache.instCount(*M), analysis::instCount(*M));
  EXPECT_EQ(Cache.autophase(*M), analysis::autophase(*M));
  uint64_t AfterCold = Cache.functionRecomputes();
  EXPECT_EQ(AfterCold, 4u); // 2 functions x 2 feature kinds.

  // Unchanged module: pure cache hits.
  EXPECT_EQ(Cache.instCount(*M), analysis::instCount(*M));
  EXPECT_EQ(Cache.functionRecomputes(), AfterCold);

  // Dirty one function: exactly one per-kind recount.
  Cache.invalidateFunction(M->findFunction("main"));
  EXPECT_EQ(Cache.instCount(*M), analysis::instCount(*M));
  EXPECT_EQ(Cache.functionRecomputes(), AfterCold + 1);
  EXPECT_EQ(Cache.autophase(*M), analysis::autophase(*M));
  EXPECT_EQ(Cache.functionRecomputes(), AfterCold + 2);
}

TEST(FeatureCache, SelfHealsOnFunctionSetChanges) {
  auto M = parse(TwoFunctionModule);
  analysis::FeatureCache Cache;
  (void)Cache.instCount(*M);
  Function *Helper = M->findFunction("helper");
  // Drop the call-free helper without telling the cache.
  M->eraseFunction(Helper);
  EXPECT_EQ(Cache.instCount(*M), analysis::instCount(*M));
  EXPECT_EQ(Cache.autophase(*M), analysis::autophase(*M));
}

TEST(PassManager, ReusesPassInstancesAcrossRunsAndRounds) {
  auto M = parse(TwoFunctionModule);
  PassManager PM(*M);
  ASSERT_TRUE(PM.run("dce").isOk());
  ASSERT_TRUE(PM.run("dce").isOk());
  ASSERT_TRUE(PM.run("instcombine").isOk());
  EXPECT_EQ(PM.stats().PassInstancesCreated, 2u);
  EXPECT_EQ(PM.stats().PassesRun, 3u);

  // Fixpoint iteration re-runs the pipeline but never re-creates passes.
  ASSERT_TRUE(
      PM.runToFixpoint({"mem2reg", "instcombine", "simplifycfg"}, 4).isOk());
  EXPECT_EQ(PM.stats().PassInstancesCreated, 4u); // +mem2reg, +simplifycfg.
}

TEST(PassManager, UnknownPassIsNotFound) {
  auto M = parse(TwoFunctionModule);
  PassManager PM(*M);
  auto R = PM.run("nope");
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::NotFound);
}

/// A pass that changes the CFG (merges a trivial chain) but claims it
/// preserved everything — the lie the debug checker must catch.
class LyingPass : public FunctionPass {
public:
  std::string name() const override { return "lying-pass"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    // Cut an edge by rewriting the entry terminator to branch to itself...
    // too destructive; instead delete a non-terminator instruction, which
    // invalidates feature vectors, while claiming even features survived.
    for (const auto &BB : F.blocks()) {
      for (size_t I = 0; I < BB->size(); ++I) {
        Instruction *Inst = BB->instructions()[I].get();
        if (Inst->isTerminator() || F.hasUses(Inst) ||
            Inst->hasSideEffects())
          continue;
        BB->erase(I);
        return PassResult::make(true, PreservedAnalyses::all()); // The lie.
      }
    }
    return PassResult::make(false, PreservedAnalyses::all());
  }
};

/// Lies about the dominator tree specifically: merges a linear block chain
/// (CFG change) while claiming full preservation.
class CfgLyingPass : public FunctionPass {
public:
  std::string name() const override { return "cfg-lying-pass"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    // Append an unreachable block: idoms are unaffected but the block is
    // new, so a fresh dominator tree sees different reachability... not a
    // lie the checker must catch via idom; instead split: create a block
    // and redirect the entry terminator through it.
    if (F.numBlocks() == 0 || !F.entry()->terminator())
      return PassResult::make(false, PreservedAnalyses::all());
    Instruction *Term = F.entry()->terminator();
    if (Term->opcode() != Opcode::Br && Term->opcode() != Opcode::CondBr)
      return PassResult::make(false, PreservedAnalyses::all());
    BasicBlock *Target = nullptr;
    for (BasicBlock *Succ : F.entry()->successors()) {
      Target = Succ;
      break;
    }
    if (!Target)
      return PassResult::make(false, PreservedAnalyses::all());
    BasicBlock *Tramp = F.createBlock("tramp");
    auto Br = std::make_unique<Instruction>(Opcode::Br, Type::Void,
                                            std::vector<Value *>{Target});
    Tramp->append(std::move(Br));
    Term->replaceSuccessor(Target, Tramp);
    replacePhiIncomingBlock(*Target, F.entry(), Tramp);
    return PassResult::make(true, PreservedAnalyses::all()); // The lie.
  }
};

TEST(PassManager, CatchesFeaturePreservationLie) {
  auto M = parse(TwoFunctionModule);
  PassManager PM(*M);
  PM.setVerifyPreservation(true);
  // Warm the feature cache so the checker has something to compare.
  (void)PM.analysisManager().features().instCount(*M);
  LyingPass Liar;
  auto R = PM.run(Liar);
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::Internal);
  EXPECT_NE(R.status().toString().find("lying-pass"), std::string::npos);
}

TEST(PassManager, CatchesDomTreePreservationLie) {
  auto M = parse(TwoFunctionModule);
  PassManager PM(*M);
  PM.setVerifyPreservation(true);
  for (const auto &F : M->functions())
    (void)PM.analysisManager().domTree(*F);
  CfgLyingPass Liar;
  auto R = PM.run(Liar);
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::Internal);
}

/// Claims loop info survived (preserve(AK_Loops) alone, so the dominator
/// tree is dropped) while rerouting a back edge — the cached loops must be
/// verified even without a cached tree.
class LoopsLyingPass : public FunctionPass {
public:
  std::string name() const override { return "loops-lying-pass"; }

  PassResult runOnFunction(Function &F, AnalysisManager &) override {
    BasicBlock *Body = F.findBlock("body");
    if (!Body || !Body->terminator())
      return PassResult::make(false, PreservedAnalyses::all());
    BasicBlock *Tramp = F.createBlock("latch.tramp");
    auto Br = std::make_unique<Instruction>(Opcode::Br, Type::Void,
                                            std::vector<Value *>{Body});
    Tramp->append(std::move(Br));
    Body->terminator()->replaceSuccessor(Body, Tramp);
    replacePhiIncomingBlock(*Body, Body, Tramp);
    return PassResult::make(
        true, PreservedAnalyses::none().preserve(AK_Loops)); // The lie.
  }
};

TEST(PassManager, CatchesLoopsOnlyPreservationLie) {
  auto M = parse(R"(module "t"
func @main() -> i64 {
entry:
  br label %body
body:
  %i = phi i64 [ 0, %entry ], [ %inext, %body ]
  %inext = add i64 i64 %i, i64 1
  %c = icmp i1 lt i64 %inext, i64 50
  condbr i1 %c, label %body, label %exit
exit:
  ret i64 7
}
)");
  PassManager PM(*M);
  PM.setVerifyPreservation(true);
  ASSERT_EQ(PM.analysisManager().loops(*M->findFunction("main")).size(), 1u);
  LoopsLyingPass Liar;
  auto R = PM.run(Liar);
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::Internal);
  EXPECT_NE(R.status().toString().find("loop info"), std::string::npos);
}

TEST(PassManager, ModulePassWithoutExplicitInvalidationIsConservative) {
  // A module-scoped pass that only returns a PassResult (no AM calls)
  // must still invalidate: the manager applies its PreservedAnalyses
  // module-wide when InvalidationApplied is unset.
  class NaiveModulePass : public Pass {
  public:
    std::string name() const override { return "naive-module-pass"; }
    PassResult run(Module &M, AnalysisManager &) override {
      // Delete the first deletable instruction anywhere in the module.
      for (const auto &F : M.functions()) {
        for (const auto &BB : F->blocks()) {
          for (size_t I = 0; I < BB->size(); ++I) {
            Instruction *Inst = BB->instructions()[I].get();
            if (Inst->isTerminator() || F->hasUses(Inst) ||
                Inst->hasSideEffects())
              continue;
            BB->erase(I);
            return PassResult::make(true, PreservedAnalyses::cfg());
          }
        }
      }
      return PassResult::make(false, PreservedAnalyses::all());
    }
  };

  auto M = parse(TwoFunctionModule);
  PassManager PM(*M);
  PM.setVerifyPreservation(true);
  (void)PM.analysisManager().features().instCount(*M);
  NaiveModulePass P;
  auto R = PM.run(P); // Honest PA, no explicit invalidation: must be OK.
  ASSERT_TRUE(R.isOk()) << R.status().toString();
  ASSERT_TRUE(*R);
  EXPECT_EQ(PM.analysisManager().features().instCount(*M),
            analysis::instCount(*M));
}

TEST(PassManager, HonestPassSurvivesVerification) {
  auto M = parse(TwoFunctionModule);
  PassManager PM(*M);
  PM.setVerifyPreservation(true);
  for (const auto &F : M->functions()) {
    (void)PM.analysisManager().domTree(*F);
    (void)PM.analysisManager().loops(*F);
  }
  (void)PM.analysisManager().features().instCount(*M);
  ASSERT_TRUE(PM.runPipeline({"mem2reg", "instcombine", "simplifycfg",
                              "gvn", "sccp", "adce"})
                  .isOk());
}

// -- The differential suite: every registered pass x corpus module ----------

struct DiffCase {
  uint64_t ProgramSeed;
  const char *Dataset;
};

class DifferentialInvalidation : public ::testing::TestWithParam<DiffCase> {};

TEST_P(DifferentialInvalidation, CachedAnalysesEqualFromScratch) {
  const DiffCase &C = GetParam();
  datasets::ProgramStyle Style = datasets::styleForDataset(C.Dataset);

  for (const std::string &Name : PassRegistry::instance().allNames()) {
    auto M = datasets::generateProgram(C.ProgramSeed, Style, "m");
    ASSERT_NE(M, nullptr);
    PassManager PM(*M);
    // The built-in checker verifies preserved *cached* analyses right
    // after the run; warm every analysis first so nothing escapes it.
    PM.setVerifyPreservation(true);
    AnalysisManager &AM = PM.analysisManager();
    for (const auto &F : M->functions()) {
      if (F->empty())
        continue;
      (void)AM.domTree(*F);
      (void)AM.loops(*F);
    }
    (void)AM.features().instCount(*M);
    (void)AM.features().autophase(*M);
    (void)AM.features().inst2vec(*M);
    (void)AM.features().programl(*M);

    auto Changed = PM.run(Name);
    ASSERT_TRUE(Changed.isOk())
        << "pass '" << Name << "': " << Changed.status().toString();
    ASSERT_TRUE(verifyModule(*M).isOk()) << "after " << Name;

    // Incrementally-maintained observations must be byte-equal to a
    // from-scratch recomputation of the mutated module.
    EXPECT_EQ(AM.features().instCount(*M), analysis::instCount(*M))
        << "InstCount diverged after " << Name;
    EXPECT_EQ(AM.features().autophase(*M), analysis::autophase(*M))
        << "Autophase diverged after " << Name;
    EXPECT_EQ(AM.features().inst2vec(*M), analysis::inst2vec(*M))
        << "Inst2vec diverged after " << Name;
    analysis::ProgramGraph FromCache;
    ASSERT_TRUE(analysis::deserializeGraph(AM.features().programl(*M),
                                           FromCache))
        << "Programl bytes undecodable after " << Name;
    EXPECT_TRUE(FromCache == analysis::buildProgramGraph(*M))
        << "Programl diverged after " << Name;

    // And the cached CFG analyses must match fresh ones.
    for (const auto &F : M->functions()) {
      if (F->empty())
        continue;
      const DominatorTree &Cached = AM.domTree(*F);
      DominatorTree Fresh(*F);
      EXPECT_EQ(Cached.reversePostorder(), Fresh.reversePostorder())
          << "RPO diverged after " << Name << " in " << F->name();
      for (const auto &BB : F->blocks()) {
        EXPECT_EQ(Cached.idom(BB.get()), Fresh.idom(BB.get()))
            << "idom diverged after " << Name << " in " << F->name();
        EXPECT_EQ(Cached.isReachable(BB.get()), Fresh.isReachable(BB.get()))
            << "reachability diverged after " << Name << " in " << F->name();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DifferentialInvalidation,
    ::testing::Values(DiffCase{201, "benchmark://csmith-v0"},
                      DiffCase{202, "benchmark://csmith-v0"},
                      DiffCase{203, "benchmark://npb-v0"},
                      DiffCase{204, "benchmark://npb-v0"}));

// -- Session-level composition ----------------------------------------------

TEST(LlvmSessionCaching, MemoizesObservationsPerEpoch) {
  auto B = datasets::DatasetRegistry::instance().resolve(
      "benchmark://cbench-v1/crc32");
  ASSERT_TRUE(B.isOk());
  envs::LlvmSession Session;
  auto Spaces = Session.getActionSpaces();
  ASSERT_FALSE(Spaces.empty());
  ASSERT_TRUE(Session.init(Spaces[0], *B).isOk());

  service::ObservationSpaceInfo InstCountSpace;
  for (const auto &O : Session.getObservationSpaces())
    if (O.Name == "InstCount")
      InstCountSpace = O;

  service::Observation O1, O2;
  ASSERT_TRUE(Session.computeObservation(InstCountSpace, O1).isOk());
  EXPECT_EQ(Session.observationMemoHits(), 0u);
  ASSERT_TRUE(Session.computeObservation(InstCountSpace, O2).isOk());
  EXPECT_EQ(Session.observationMemoHits(), 1u);
  EXPECT_EQ(O1.Ints, O2.Ints);
  EXPECT_EQ(O1.Ints, analysis::instCount(*Session.module()));

  // The state key is cached per epoch and changes when the module does.
  uint64_t Key1 = Session.stateKey();
  EXPECT_EQ(Key1, Session.stateKey());
  const auto &Actions = Spaces[0].ActionNames;
  int Mem2Reg = -1;
  for (size_t I = 0; I < Actions.size(); ++I)
    if (Actions[I] == "mem2reg")
      Mem2Reg = static_cast<int>(I);
  ASSERT_GE(Mem2Reg, 0);
  service::Action A;
  A.Index = Mem2Reg;
  bool End = false, SpaceChanged = false;
  ASSERT_TRUE(Session.applyAction(A, End, SpaceChanged).isOk());
  service::Observation O3;
  ASSERT_TRUE(Session.computeObservation(InstCountSpace, O3).isOk());
  EXPECT_EQ(Session.observationMemoHits(), 1u); // New epoch: recomputed.
  EXPECT_EQ(O3.Ints, analysis::instCount(*Session.module()));
  EXPECT_NE(Session.stateKey(), Key1);

  // The session pass manager reuses instances and carries analyses.
  ASSERT_NE(Session.passManager(), nullptr);
  EXPECT_EQ(Session.passManager()->stats().PassesRun, 1u);
}

TEST(LlvmSessionCaching, ForkGetsIndependentCaches) {
  auto B = datasets::DatasetRegistry::instance().resolve(
      "benchmark://cbench-v1/crc32");
  ASSERT_TRUE(B.isOk());
  envs::LlvmSession Session;
  auto Spaces = Session.getActionSpaces();
  ASSERT_TRUE(Session.init(Spaces[0], *B).isOk());
  uint64_t Key = Session.stateKey();

  auto Forked = Session.fork();
  ASSERT_TRUE(Forked.isOk());
  auto *Clone = static_cast<envs::LlvmSession *>(Forked->get());
  EXPECT_EQ(Clone->stateKey(), Key); // Same state, independent module.
  EXPECT_NE(Clone->module(), Session.module());
  EXPECT_NE(Clone->passManager(), Session.passManager());
}

} // namespace
