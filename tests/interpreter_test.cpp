//===- tests/interpreter_test.cpp - Interpreter semantics ------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "ir/Interpreter.h"
#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace compiler_gym;
using namespace compiler_gym::ir;

namespace {

ExecutionResult runText(const std::string &Text,
                        std::vector<int64_t> Args = {}) {
  auto M = parseModule(Text);
  EXPECT_TRUE(M.isOk()) << M.status().toString();
  if (!M.isOk())
    return ExecutionResult{};
  InterpreterOptions Opts;
  Opts.Args = std::move(Args);
  auto R = interpret(**M, Opts);
  EXPECT_TRUE(R.isOk()) << R.status().toString();
  if (!R.isOk())
    return ExecutionResult{};
  return *R;
}

std::string binop(const std::string &Op, const std::string &Ty,
                  const std::string &A, const std::string &B) {
  return "module \"t\"\nfunc @main() -> " + Ty + " {\nentry:\n  %r = " + Op +
         " " + Ty + " " + Ty + " " + A + ", " + Ty + " " + B +
         "\n  ret " + Ty + " %r\n}\n";
}

struct ArithCase {
  const char *Op;
  int64_t Lhs, Rhs, Expected;
};

class IntArith : public ::testing::TestWithParam<ArithCase> {};

TEST_P(IntArith, Evaluates) {
  const ArithCase &C = GetParam();
  ExecutionResult R = runText(binop(C.Op, "i64", std::to_string(C.Lhs),
                                    std::to_string(C.Rhs)));
  ASSERT_TRUE(R.Completed) << R.TrapReason;
  EXPECT_EQ(R.ReturnInt, C.Expected) << C.Op;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, IntArith,
    ::testing::Values(ArithCase{"add", 40, 2, 42},
                      ArithCase{"add", -1, 1, 0},
                      ArithCase{"sub", 10, 42, -32},
                      ArithCase{"mul", -6, 7, -42},
                      ArithCase{"sdiv", 42, 5, 8},
                      ArithCase{"sdiv", -42, 5, -8},
                      ArithCase{"srem", 42, 5, 2},
                      ArithCase{"srem", -42, 5, -2},
                      ArithCase{"and", 0b1100, 0b1010, 0b1000},
                      ArithCase{"or", 0b1100, 0b1010, 0b1110},
                      ArithCase{"xor", 0b1100, 0b1010, 0b0110},
                      ArithCase{"shl", 3, 4, 48},
                      ArithCase{"lshr", -1, 60, 15},
                      ArithCase{"ashr", -16, 2, -4}));

TEST(Interpreter, FloatArithmetic) {
  ExecutionResult R = runText(binop("fmul", "f64", "2.5", "4.0"));
  ASSERT_TRUE(R.Completed);
  EXPECT_DOUBLE_EQ(R.ReturnFloat, 10.0);
  R = runText(binop("fdiv", "f64", "1.0", "0.0"));
  ASSERT_TRUE(R.Completed); // Float division by zero is defined as 0.
  EXPECT_DOUBLE_EQ(R.ReturnFloat, 0.0);
}

TEST(Interpreter, ComparisonsAndSelect) {
  ExecutionResult R = runText(
      "module \"t\"\nfunc @main() -> i64 {\nentry:\n"
      "  %c = icmp i1 lt i64 3, i64 5\n"
      "  %r = select i64 i1 %c, i64 100, i64 200\n"
      "  ret i64 %r\n}\n");
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ReturnInt, 100);
}

TEST(Interpreter, LoopComputesTriangularNumber) {
  // sum 1..10 via rotated loop.
  ExecutionResult R = runText(R"(module "t"
func @main() -> i64 {
entry:
  br label %body
body:
  %i = phi i64 [ 1, %entry ], [ %inext, %body ]
  %acc = phi i64 [ 0, %entry ], [ %accnext, %body ]
  %accnext = add i64 i64 %acc, i64 %i
  %inext = add i64 i64 %i, i64 1
  %c = icmp i1 le i64 %inext, i64 10
  condbr i1 %c, label %body, label %exit
exit:
  ret i64 %accnext
}
)");
  ASSERT_TRUE(R.Completed) << R.TrapReason;
  EXPECT_EQ(R.ReturnInt, 55);
}

TEST(Interpreter, RecursionComputesFactorial) {
  ExecutionResult R = runText(R"(module "t"
func @fact(i64 %n) -> i64 {
entry:
  %c = icmp i1 le i64 %n, i64 1
  condbr i1 %c, label %base, label %rec
base:
  ret i64 1
rec:
  %dec = sub i64 i64 %n, i64 1
  %sub = call i64 func @fact, i64 %dec
  %r = mul i64 i64 %n, i64 %sub
  ret i64 %r
}
func @main(i64 %n) -> i64 {
entry:
  %r = call i64 func @fact, i64 %n
  ret i64 %r
}
)",
                              {6});
  ASSERT_TRUE(R.Completed) << R.TrapReason;
  EXPECT_EQ(R.ReturnInt, 720);
}

TEST(Interpreter, MemoryRoundTrip) {
  ExecutionResult R = runText(R"(module "t"
global @g = words 8
func @main() -> i64 {
entry:
  %p = gep ptr ptr @g, i64 3
  store i64 1234, ptr %p
  %v = load i64, ptr %p
  ret i64 %v
}
)");
  ASSERT_TRUE(R.Completed) << R.TrapReason;
  EXPECT_EQ(R.ReturnInt, 1234);
}

TEST(Interpreter, AllocaIsolatesFrames) {
  ExecutionResult R = runText(R"(module "t"
func @leaf() -> i64 {
entry:
  %p = alloca ptr words 1
  store i64 77, ptr %p
  %v = load i64, ptr %p
  ret i64 %v
}
func @main() -> i64 {
entry:
  %a = call i64 func @leaf
  %b = call i64 func @leaf
  %r = add i64 i64 %a, i64 %b
  ret i64 %r
}
)");
  ASSERT_TRUE(R.Completed) << R.TrapReason;
  EXPECT_EQ(R.ReturnInt, 154);
}

// -- Traps ----------------------------------------------------------------------

TEST(Interpreter, TrapsOnDivisionByZero) {
  ExecutionResult R = runText(binop("sdiv", "i64", "1", "0"));
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.TrapReason.find("division by zero"), std::string::npos);
}

TEST(Interpreter, TrapsOnOutOfBounds) {
  ExecutionResult R = runText(R"(module "t"
func @main() -> i64 {
entry:
  %p = inttoptr ptr i64 99999999
  %v = load i64, ptr %p
  ret i64 %v
}
)");
  EXPECT_FALSE(R.Completed);
  EXPECT_NE(R.TrapReason.find("out of bounds"), std::string::npos);
}

TEST(Interpreter, TrapsOnNullStore) {
  ExecutionResult R = runText(R"(module "t"
func @main() -> i64 {
entry:
  %p = inttoptr ptr i64 0
  store i64 1, ptr %p
  ret i64 0
}
)");
  EXPECT_FALSE(R.Completed);
}

TEST(Interpreter, FuelLimitStopsInfiniteLoops) {
  auto M = parseModule(R"(module "t"
func @main() -> i64 {
entry:
  br label %spin
spin:
  br label %spin
}
)");
  ASSERT_TRUE(M.isOk());
  InterpreterOptions Opts;
  Opts.MaxInstructions = 1000;
  auto R = interpret(**M, Opts);
  ASSERT_TRUE(R.isOk());
  EXPECT_FALSE(R->Completed);
  EXPECT_NE(R->TrapReason.find("fuel"), std::string::npos);
  EXPECT_LE(R->InstructionsExecuted, 1002u);
}

TEST(Interpreter, CallDepthLimit) {
  auto M = parseModule(R"(module "t"
func @inf(i64 %n) -> i64 {
entry:
  %r = call i64 func @inf, i64 %n
  ret i64 %r
}
func @main() -> i64 {
entry:
  %r = call i64 func @inf, i64 1
  ret i64 %r
}
)");
  ASSERT_TRUE(M.isOk());
  auto R = interpret(**M);
  ASSERT_TRUE(R.isOk());
  EXPECT_FALSE(R->Completed);
  EXPECT_NE(R->TrapReason.find("depth"), std::string::npos);
}

TEST(Interpreter, MissingEntryIsAnError) {
  auto M = parseModule("module \"t\"\n");
  ASSERT_TRUE(M.isOk());
  auto R = interpret(**M);
  ASSERT_FALSE(R.isOk());
  EXPECT_EQ(R.status().code(), StatusCode::NotFound);
}

// -- Observability -----------------------------------------------------------------

TEST(Interpreter, OutputHashReflectsGlobalMemory) {
  const char *Template = R"(module "t"
global @g = words 4
func @main() -> i64 {
entry:
  store i64 VALUE, ptr @g
  ret i64 0
}
)";
  std::string A = Template, B = Template;
  A.replace(A.find("VALUE"), 5, "1");
  B.replace(B.find("VALUE"), 5, "2");
  EXPECT_NE(runText(A).OutputHash, runText(B).OutputHash);
  EXPECT_EQ(runText(A).OutputHash, runText(A).OutputHash);
}

TEST(Interpreter, CountsOpcodesAndCycles) {
  ExecutionResult R = runText(binop("mul", "i64", "6", "7"));
  EXPECT_EQ(R.OpcodeCounts[static_cast<int>(Opcode::Mul)], 1u);
  EXPECT_EQ(R.OpcodeCounts[static_cast<int>(Opcode::Ret)], 1u);
  EXPECT_EQ(R.SimulatedCycles,
            opcodeCycleCost(Opcode::Mul) + opcodeCycleCost(Opcode::Ret));
  EXPECT_GT(R.simulatedSeconds(), 0.0);
}

TEST(Interpreter, ArgumentsReachMain) {
  ExecutionResult R = runText(R"(module "t"
func @main(i64 %a, i64 %b) -> i64 {
entry:
  %r = sub i64 i64 %a, i64 %b
  ret i64 %r
}
)",
                              {50, 8});
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ReturnInt, 42);
}

TEST(Interpreter, CastSemantics) {
  ExecutionResult R = runText(R"(module "t"
func @main() -> i64 {
entry:
  %big = add i64 i64 4294967295, i64 2
  %t = trunc i32 i64 %big
  %z = zext i64 i32 %t
  ret i64 %z
}
)");
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ReturnInt, 1); // (2^32+1) truncated to i32 = 1, zext = 1.
}

TEST(Interpreter, SExtOfNegative) {
  ExecutionResult R = runText(R"(module "t"
func @main() -> i64 {
entry:
  %neg = sub i32 i32 0, i32 5
  %s = sext i64 i32 %neg
  ret i64 %s
}
)");
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.ReturnInt, -5);
}

} // namespace
