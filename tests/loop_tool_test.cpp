//===- tests/loop_tool_test.cpp - CUDA loop-nest env tests -----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//

#include "core/Registry.h"
#include "envs/loop_tool/GpuModel.h"
#include "envs/loop_tool/LoopTree.h"

#include <gtest/gtest.h>

using namespace compiler_gym;
using namespace compiler_gym::core;
using namespace compiler_gym::envs;

namespace {

TEST(LoopTree, StartsAsSingleLoop) {
  LoopTree T(1 << 20);
  ASSERT_EQ(T.loops().size(), 1u);
  EXPECT_EQ(T.loops()[0].Size, 1 << 20);
  EXPECT_FALSE(T.loops()[0].Threaded);
  EXPECT_EQ(T.cursor(), 0);
  EXPECT_EQ(T.mode(), CursorMode::Move);
  EXPECT_EQ(T.coverage(), 1 << 20);
  EXPECT_EQ(T.totalThreads(), 1);
}

TEST(LoopTree, SplitDeepensTheNest) {
  LoopTree T(1000);
  ASSERT_TRUE(T.split());
  ASSERT_EQ(T.loops().size(), 2u);
  EXPECT_EQ(T.loops()[0].Size, 500);
  EXPECT_EQ(T.loops()[1].Size, 2);
  EXPECT_GE(T.coverage(), 1000);
}

TEST(LoopTree, CursorMovesWithinBounds) {
  LoopTree T(64);
  EXPECT_FALSE(T.cursorUp());   // Already outermost.
  EXPECT_FALSE(T.cursorDown()); // No inner loop yet.
  ASSERT_TRUE(T.split());
  EXPECT_TRUE(T.cursorDown());
  EXPECT_EQ(T.cursor(), 1);
  EXPECT_FALSE(T.cursorDown());
  EXPECT_TRUE(T.cursorUp());
  EXPECT_EQ(T.cursor(), 0);
}

TEST(LoopTree, ModifyModeResizesAndParentRebalances) {
  LoopTree T(100);
  ASSERT_TRUE(T.split()); // [50, 2].
  ASSERT_TRUE(T.cursorDown());
  ASSERT_TRUE(T.toggleMode());
  EXPECT_EQ(T.mode(), CursorMode::Modify);
  // Grow the inner loop: the paper's "up increases its size by one. This
  // is done by changing the size of the parent loop to accommodate".
  ASSERT_TRUE(T.cursorUp()); // Inner 2 -> 3; outer re-derived to 34.
  EXPECT_EQ(T.loops()[1].Size, 3);
  EXPECT_EQ(T.loops()[0].Size, 34);
  EXPECT_GE(T.coverage(), 100);
  // Shrink back down.
  ASSERT_TRUE(T.cursorDown());
  EXPECT_EQ(T.loops()[1].Size, 2);
  EXPECT_EQ(T.loops()[0].Size, 50);
  // Cannot shrink below one.
  ASSERT_TRUE(T.cursorDown());
  EXPECT_FALSE(T.cursorDown());
}

TEST(LoopTree, ThreadToggles) {
  LoopTree T(4096);
  ASSERT_TRUE(T.thread());
  EXPECT_TRUE(T.loops()[0].Threaded);
  EXPECT_EQ(T.totalThreads(), 4096);
  ASSERT_TRUE(T.thread());
  EXPECT_EQ(T.totalThreads(), 1);
}

TEST(LoopTree, DumpMatchesListingFourShape) {
  LoopTree T(1048576);
  T.thread();
  std::string Dump = T.dump();
  EXPECT_NE(Dump.find("for a in 1048576 : L0 [thread]"), std::string::npos);
  EXPECT_NE(Dump.find("%0[a] <- read()"), std::string::npos);
  EXPECT_NE(Dump.find("%2[a] <- add(%0, %1)"), std::string::npos);
  EXPECT_NE(Dump.find("%3[a] <- write(%2)"), std::string::npos);
}

// -- GPU model -------------------------------------------------------------------

TEST(GpuModel, PeakIsBandwidthBound) {
  GpuDescriptor Gpu;
  EXPECT_NEAR(theoreticalPeakFlops(Gpu), 6.0e10, 1e9); // 720GB/s / 12B.
}

TEST(GpuModel, SerialExecutionIsOrdersOfMagnitudeSlow) {
  LoopTree T(1 << 20);
  double Serial = modelFlops(T);
  EXPECT_LT(Serial, theoreticalPeakFlops() / 50.0);
}

TEST(GpuModel, BestConfigReachesAboutSeventyPercentOfPeak) {
  // Sweep thread counts x inner sizes; the best observed FLOPs should land
  // near the paper's 73.5% of theoretical peak.
  double Best = 0.0;
  for (int ThreadLog = 8; ThreadLog <= 18; ++ThreadLog) {
    // A reasonably large problem: launch overheads amortize (small kernels
    // cannot reach peak on real GPUs either).
    LoopTree T(1 << 22);
    ASSERT_TRUE(T.split());
    // Outer loop = threads, inner = per-thread work: move the cursor to
    // the inner loop, switch to modify mode, grow it, switch back.
    T.cursorDown();
    T.toggleMode();
    int64_t Inner = (1 << 22) >> ThreadLog;
    while (T.loops()[1].Size < Inner && T.cursorUp()) {
    }
    T.toggleMode();
    T.cursorUp();
    T.thread();
    Best = std::max(Best, modelFlops(T));
  }
  double Fraction = Best / theoreticalPeakFlops();
  EXPECT_GT(Fraction, 0.55);
  EXPECT_LE(Fraction, 0.80);
}

TEST(GpuModel, SchedulerCliffNearHundredKThreads) {
  // Fig 7's drop: threading far past 100k threads must lose throughput
  // relative to a configuration below the cliff.
  auto flopsAtThreads = [](int64_t Threads) {
    LoopTree T(1 << 22);
    T.split();
    T.cursorDown();
    T.toggleMode();
    while (T.loops()[1].Size < (1 << 22) / Threads && T.cursorUp()) {
    }
    T.toggleMode();
    T.cursorUp();
    T.thread();
    return modelFlops(T);
  };
  double Below = flopsAtThreads(64 * 1024);  // 65k threads.
  double Above = flopsAtThreads(512 * 1024); // 524k threads: past cliff.
  EXPECT_GT(Below, Above);
}

TEST(GpuModel, TailOvershootIsPenalized) {
  // Two trees with identical structure ([22, 3] nests, outer threaded) and
  // identical wall time, but one covers N=66 exactly while the other only
  // needs N=64 of its 66 iterations: useful throughput must be lower.
  auto build = [](int64_t N) {
    LoopTree T(N);
    T.split();       // [N/2, 2].
    T.cursorDown();
    T.toggleMode();
    T.cursorUp();    // Inner -> 3; outer rebalances to ceil(N/3).
    T.toggleMode();
    T.cursorUp();
    T.thread();
    return T;
  };
  LoopTree Exact = build(66);  // [22, 3]: coverage 66, all useful.
  LoopTree Over = build(64);   // [22, 3]: coverage 66, 2 wasted.
  ASSERT_EQ(Exact.coverage(), 66);
  ASSERT_EQ(Over.coverage(), 66);
  EXPECT_GT(modelFlops(Exact), modelFlops(Over));
}

TEST(GpuModel, MeasurementNoiseIsSmallAndMultiplicative) {
  LoopTree T(1 << 20);
  T.thread();
  Rng Gen(5);
  double Deterministic = modelFlops(T);
  for (int I = 0; I < 10; ++I) {
    double Measured = measureFlops(T, Gen);
    EXPECT_GT(Measured, Deterministic * 0.85);
    EXPECT_LT(Measured, Deterministic * 1.15);
  }
}

// -- Environment integration --------------------------------------------------------

TEST(LoopToolEnv, EndToEndEpisode) {
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://loop_tool-v0/1048576";
  auto Env = make("loop_tool-v0", Opts);
  ASSERT_TRUE(Env.isOk()) << Env.status().toString();
  auto Obs = (*Env)->reset();
  ASSERT_TRUE(Obs.isOk());
  ASSERT_EQ(Obs->Ints.size(), 4u); // cursor, mode, levels, threads.
  EXPECT_EQ(Obs->Ints[0], 0);

  const auto &Names = (*Env)->actionSpace().ActionNames;
  EXPECT_EQ(Names, (std::vector<std::string>{"toggle-mode", "up", "down",
                                             "thread"}));
  // Thread the outer loop; reward = measured FLOPs (absolute signal).
  int ThreadAction = 3;
  auto R = (*Env)->step(ThreadAction);
  ASSERT_TRUE(R.isOk());
  EXPECT_GT(R->Reward, 0.0);
  auto Tree = (*Env)->observation()["loop_tree"];
  ASSERT_TRUE(Tree.isOk());
  EXPECT_NE(Tree->asString()->find("[thread]"), std::string::npos);
}

TEST(LoopToolEnv, ExtendedSpaceHasSplit) {
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://loop_tool-v0/16384";
  Opts.ActionSpaceName = "loop_tool-split-v0";
  auto Env = make("loop_tool-v0", Opts);
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  ASSERT_EQ((*Env)->actionSpace().size(), 5u);
  ASSERT_TRUE((*Env)->step(4).isOk()); // split.
  auto Obs = (*Env)->observation()["action_state"];
  ASSERT_TRUE(Obs.isOk());
  EXPECT_EQ(Obs->raw().Ints[2], 2); // Two levels now.
}

TEST(LoopToolEnv, ForkCopiesTree) {
  MakeOptions Opts;
  Opts.Benchmark = "benchmark://loop_tool-v0/16384";
  auto Env = make("loop_tool-v0", Opts);
  ASSERT_TRUE(Env.isOk());
  ASSERT_TRUE((*Env)->reset().isOk());
  ASSERT_TRUE((*Env)->step(3).isOk()); // thread.
  auto Fork = (*Env)->fork();
  ASSERT_TRUE(Fork.isOk());
  auto T1 = (*Env)->observation()["loop_tree"];
  auto T2 = (*Fork)->observation()["loop_tree"];
  ASSERT_TRUE(T1.isOk());
  ASSERT_TRUE(T2.isOk());
  EXPECT_EQ(*T1->asString(), *T2->asString());
}

} // namespace
