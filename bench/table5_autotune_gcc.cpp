//===- bench/table5_autotune_gcc.cpp - Table V ------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table V: three search techniques over the GCC command-line
/// space, optimizing object-code size on the CHStone suite with a budget
/// of 1000 compilations per benchmark (scaled down by default), results
/// reported as geomean size reduction vs -Os.
///
/// Shape targets (paper: GA 1.27x, Random 1.21x, Hill climbing 1.04x):
/// GA and Random clearly beat -Os; hill climbing trails them.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "autotune/Search.h"
#include "core/Registry.h"
#include "util/Hash.h"
#include "datasets/DatasetRegistry.h"

#include <cstdio>
#include <functional>
#include <map>

using namespace compiler_gym;
using namespace compiler_gym::bench;
using namespace compiler_gym::autotune;

int main() {
  banner("table5_autotune_gcc",
         "Autotuning GCC command line flags on CHStone (objective: object "
         "size vs -Os)");

  struct Technique {
    const char *Name;
    int LinesOfCode; ///< Paper Table V: GA 27, HC 14, Random 9.
    std::function<std::unique_ptr<Search>(uint64_t)> Factory;
  };
  const Technique Techniques[] = {
      {"Genetic Algorithm", 27,
       [](uint64_t S) { return createGccGeneticAlgorithm(S, scaled(20, 100)); }},
      {"Hill Climbing", 14,
       [](uint64_t S) { return createGccHillClimb(S, 4); }},
      {"Random Search", 9,
       [](uint64_t S) { return createGccRandomSearch(S); }},
  };

  const size_t Compilations = scaled(60, 1000);
  const auto *Chstone =
      datasets::DatasetRegistry::instance().dataset("benchmark://chstone-v0");
  if (!Chstone) {
    std::fprintf(stderr, "chstone dataset missing\n");
    return 1;
  }
  std::vector<std::string> Programs =
      Chstone->benchmarkNames(scaled(3, 12));

  std::printf("\n-- Table V: LoC and geomean object-size reduction vs -Os "
              "(%zu compilations/benchmark) --\n", Compilations);

  std::map<std::string, double> Scores;
  for (const Technique &Tech : Techniques) {
    std::vector<double> Ratios;
    for (const std::string &Program : Programs) {
      core::MakeOptions Opts;
      Opts.Benchmark = "benchmark://chstone-v0/" + Program;
      Opts.ObservationSpace = "none";
      Opts.RewardSpace = "ObjSizeBytes";
      Opts.ActionSpaceName = "gcc-direct-v0";
      auto Env = core::make("gcc-v0", Opts);
      if (!Env.isOk())
        continue;
      std::unique_ptr<Search> S = Tech.Factory(fnv1a(Program));
      SearchBudget Budget;
      Budget.MaxCompilations = Compilations;
      auto Result = S->run(**Env, Budget);
      if (!Result.isOk())
        continue;
      // Replay the best configuration; compare to -Os.
      if (!(*Env)->reset().isOk())
        continue;
      std::vector<int64_t> Choices(Result->BestActions.begin(),
                                   Result->BestActions.end());
      if (!Choices.empty() && !(*Env)->stepDirect(Choices).isOk())
        continue;
      auto Achieved = (*Env)->observation()["ObjSizeBytes"];
      auto Baseline = (*Env)->observation()["ObjSizeOs"];
      if (!Achieved.isOk() || !Baseline.isOk() ||
          Achieved->raw().IntValue <= 0)
        continue;
      Ratios.push_back(static_cast<double>(Baseline->raw().IntValue) /
                       static_cast<double>(Achieved->raw().IntValue));
    }
    Scores[Tech.Name] = geomean(Ratios);
    std::printf("%-20s LoC=%3d   geomean reduction vs -Os: %.3fx "
                "(over %zu benchmarks)\n",
                Tech.Name, Tech.LinesOfCode, Scores[Tech.Name],
                Ratios.size());
  }
  std::printf("\npaper row (1000 compilations): GA 1.27x, Hill Climbing "
              "1.04x, Random 1.21x\n");

  ShapeChecks Checks;
  Checks.check(Scores["Genetic Algorithm"] > 1.0,
               "GA beats -Os on geomean object size");
  Checks.check(Scores["Random Search"] > 1.0,
               "random search beats -Os on geomean object size");
  Checks.check(Scores["Genetic Algorithm"] >= Scores["Hill Climbing"],
               "GA >= hill climbing (paper: 1.27x vs 1.04x)");
  Checks.check(Scores["Random Search"] >= Scores["Hill Climbing"],
               "random >= hill climbing (paper: 1.21x vs 1.04x)");
  return Checks.verdict();
}
