//===- bench/transport_bench.cpp - RPC transport overhead -----------------===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what crossing a process boundary costs on the step path by
/// running the same episode over each transport:
///
///  * in-process: ServiceClient -> QueueTransport -> CompilerService
///    (the PR-1 baseline every earlier bench measured);
///  * unix: the same service behind a NetServer on a Unix-domain socket,
///    dialed with SocketTransport (frame codec + two socket hops);
///  * tcp: identical, but over TCP loopback.
///
/// Heartbeat rows isolate pure transport cost (no compiler work); step
/// rows show it amortized against a real LLVM pass pipeline. Shape checks
/// assert semantics, not speed: every transport must produce the same
/// observation for the same episode.
///
/// Emits BENCH_transport.json with the headline p50s and the UDS/TCP
/// overhead ratios as a tracking baseline.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "datasets/DatasetRegistry.h"
#include "envs/llvm/LlvmSession.h"
#include "net/NetServer.h"
#include "net/SocketTransport.h"
#include "service/CompilerService.h"
#include "service/ServiceClient.h"
#include "util/Timer.h"

#include <cstdio>
#include <memory>
#include <string>
#include <unistd.h>
#include <vector>

using namespace compiler_gym;
using namespace compiler_gym::bench;
using namespace compiler_gym::service;

namespace {

struct EpisodeStats {
  std::vector<double> HeartbeatMs;
  std::vector<double> StepMs;
  std::vector<int64_t> FirstStepObs; ///< Autophase vector after action 0.
};

/// Runs the standard probe episode over \p Client: heartbeats, then one
/// session stepping action 0 repeatedly with Autophase observations.
bool probe(ServiceClient &Client, int Repeats, EpisodeStats &Out) {
  for (int R = 0; R < Repeats; ++R) {
    Stopwatch W;
    if (!Client.heartbeat().isOk()) {
      std::fprintf(stderr, "heartbeat failed\n");
      return false;
    }
    Out.HeartbeatMs.push_back(W.elapsedMs());
  }
  auto Bench =
      datasets::DatasetRegistry::instance().resolve("benchmark://cbench-v1/crc32");
  if (!Bench.isOk()) {
    std::fprintf(stderr, "resolve failed: %s\n",
                 Bench.status().toString().c_str());
    return false;
  }
  StartSessionRequest Start;
  Start.CompilerName = "llvm";
  Start.Bench = *Bench;
  auto Session = Client.startSession(Start);
  if (!Session.isOk()) {
    std::fprintf(stderr, "startSession failed: %s\n",
                 Session.status().toString().c_str());
    return false;
  }
  StepRequest Step;
  Step.SessionId = Session->SessionId;
  Action A;
  A.Index = 0;
  Step.Actions = {A};
  Step.ObservationSpaces = {"Autophase"};
  for (int R = 0; R < Repeats; ++R) {
    Stopwatch W;
    auto Reply = Client.step(Step);
    if (!Reply.isOk() || Reply->Observations.empty()) {
      std::fprintf(stderr, "step failed: %s\n",
                   Reply.isOk() ? "no observation"
                                : Reply.status().toString().c_str());
      return false;
    }
    Out.StepMs.push_back(W.elapsedMs());
    if (R == 0)
      Out.FirstStepObs = Reply->Observations[0].Ints;
  }
  (void)Client.endSession(Session->SessionId);
  return true;
}

double p50(const std::vector<double> &Samples) {
  return summarizeLatencies(Samples).P50;
}

} // namespace

int main() {
  banner("transport_bench",
         "step/heartbeat latency: in-process vs unix-domain vs TCP loopback");
  envs::registerLlvmEnvironment();

  const int Repeats = scaled(80, 800);
  ShapeChecks Checks;

  // One backend service instance serves all three probes, so the compile
  // work is identical and only the channel differs.
  auto Service = std::make_shared<CompilerService>();

  EpisodeStats InProc, Uds, Tcp;

  {
    // Unrecorded warmup: the first episode pays one-time costs (benchmark
    // parse, pass/analysis registries) that would otherwise be billed to
    // whichever transport happens to run first.
    EpisodeStats Warmup;
    ServiceClient Client(Service);
    if (!probe(Client, scaled(10, 20), Warmup))
      return 1;
  }

  {
    ServiceClient Client(Service);
    if (!probe(Client, Repeats, InProc))
      return 1;
  }

  std::string SockPath =
      "/tmp/cg_transport_bench_" + std::to_string(::getpid()) + ".sock";
  {
    net::NetAddress Addr;
    Addr.Kind = net::NetAddress::Family::Unix;
    Addr.Path = SockPath;
    auto Server = net::NetServer::serveSync(
        Addr, [Service](const std::string &B) { return Service->handle(B); });
    if (!Server.isOk()) {
      std::fprintf(stderr, "uds serve failed: %s\n",
                   Server.status().toString().c_str());
      return 1;
    }
    auto Channel =
        std::make_shared<net::SocketTransport>((*Server)->boundAddress());
    ServiceClient Client(nullptr, Channel);
    if (!probe(Client, Repeats, Uds))
      return 1;
  }

  {
    auto Addr = net::NetAddress::parse("tcp:127.0.0.1:0");
    if (!Addr.isOk())
      return 1;
    auto Server = net::NetServer::serveSync(
        *Addr, [Service](const std::string &B) { return Service->handle(B); });
    if (!Server.isOk()) {
      std::fprintf(stderr, "tcp serve failed: %s\n",
                   Server.status().toString().c_str());
      return 1;
    }
    auto Channel =
        std::make_shared<net::SocketTransport>((*Server)->boundAddress());
    ServiceClient Client(nullptr, Channel);
    if (!probe(Client, Repeats, Tcp))
      return 1;
  }

  std::printf("\n-- heartbeat (pure transport round trip) --\n");
  latencyRow("in-process", InProc.HeartbeatMs);
  latencyRow("unix-domain", Uds.HeartbeatMs);
  latencyRow("tcp loopback", Tcp.HeartbeatMs);
  std::printf("\n-- step with Autophase observation --\n");
  latencyRow("in-process", InProc.StepMs);
  latencyRow("unix-domain", Uds.StepMs);
  latencyRow("tcp loopback", Tcp.StepMs);

  // Semantics before speed: a transport must never change what an episode
  // computes. (Each probe ran its own session, so states are independent.)
  Checks.check(!InProc.FirstStepObs.empty(), "in-process episode observed");
  Checks.check(Uds.FirstStepObs == InProc.FirstStepObs,
               "unix-domain episode observation identical to in-process");
  Checks.check(Tcp.FirstStepObs == InProc.FirstStepObs,
               "tcp episode observation identical to in-process");
  // The socket hop costs microseconds; an LLVM step costs milliseconds.
  // Guard only against pathology (an accidental sleep or retry storm on
  // the fast path), with generous headroom for loaded CI machines.
  double StepOverheadUds = p50(Uds.StepMs) - p50(InProc.StepMs);
  double StepOverheadTcp = p50(Tcp.StepMs) - p50(InProc.StepMs);
  Checks.check(StepOverheadUds < 50.0,
               "unix-domain step overhead under 50ms (no retry storm)");
  Checks.check(StepOverheadTcp < 50.0,
               "tcp step overhead under 50ms (no retry storm)");

  if (std::FILE *F = std::fopen("BENCH_transport.json", "w")) {
    std::fprintf(
        F,
        "{\n"
        "  \"heartbeat_ms_p50\": {\"inproc\": %g, \"uds\": %g, \"tcp\": %g},\n"
        "  \"step_ms_p50\": {\"inproc\": %g, \"uds\": %g, \"tcp\": %g},\n"
        "  \"step_overhead_ms_p50\": {\"uds\": %g, \"tcp\": %g},\n"
        "  \"repeats\": %d\n"
        "}\n",
        p50(InProc.HeartbeatMs), p50(Uds.HeartbeatMs), p50(Tcp.HeartbeatMs),
        p50(InProc.StepMs), p50(Uds.StepMs), p50(Tcp.StepMs), StepOverheadUds,
        StepOverheadTcp, Repeats);
    std::fclose(F);
    std::printf("\nwrote BENCH_transport.json\n");
  }
  ::unlink(SockPath.c_str());
  return Checks.verdict();
}
