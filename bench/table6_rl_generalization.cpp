//===- bench/table6_rl_generalization.cpp - Table VI ------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table VI: four RL algorithms (A2C, APEX-DQN, IMPALA, PPO)
/// trained on csmith programs (100k episodes in the paper; scaled down
/// here), then evaluated as geomean code-size reduction vs -Oz on held-out
/// programs from every dataset. Shape targets: in-domain (csmith)
/// performance is the strongest column for the better agents; cross-domain
/// transfer is much weaker (most cells < 1.0); PPO is competitive on its
/// training domain (paper: 1.245x on csmith).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"
#include "bench/RlBenchUtils.h"

#include "rl/A2c.h"
#include "rl/Dqn.h"
#include "rl/Impala.h"
#include "rl/Ppo.h"

#include <cstdio>
#include <map>

using namespace compiler_gym;
using namespace compiler_gym::bench;
using namespace compiler_gym::rl;

int main() {
  banner("table6_rl_generalization",
         "RL algorithms trained on csmith, evaluated across datasets");

  const int TrainEpisodes = scaled(160, 4000);
  const int EvalPerDataset = scaled(4, 50);
  RlSetup Setup;

  // Held-out test sets: training uses csmith seeds [0, 64); testing uses a
  // disjoint range plus the other domains.
  const std::vector<std::pair<std::string, std::vector<std::string>>>
      TestSets = {
          {"csmith", uriRange("benchmark://csmith-v0", EvalPerDataset, 500)},
          {"cbench",
           {"benchmark://cbench-v1/crc32", "benchmark://cbench-v1/sha",
            "benchmark://cbench-v1/dijkstra",
            "benchmark://cbench-v1/bitcount"}},
          {"chstone",
           {"benchmark://chstone-v0/adpcm", "benchmark://chstone-v0/aes",
            "benchmark://chstone-v0/sha", "benchmark://chstone-v0/gsm"}},
          {"github", uriRange("benchmark://github-v0", EvalPerDataset)},
          {"linux", uriRange("benchmark://linux-v0", EvalPerDataset)},
          {"npb", uriRange("benchmark://npb-v0", EvalPerDataset)},
          {"blas", uriRange("benchmark://blas-v0", EvalPerDataset)},
          {"tensorflow",
           uriRange("benchmark://tensorflow-v0", EvalPerDataset)},
          {"llvm-stress",
           uriRange("benchmark://llvm-stress-v0", EvalPerDataset)},
          {"poj104", uriRange("benchmark://poj104-v1", EvalPerDataset)},
      };
  std::vector<std::string> TrainSet =
      uriRange("benchmark://csmith-v0", scaled(16, 64));

  size_t ObsDim = 0, NumActions = 0;
  {
    // Probe dimensions once.
    auto Probe = makeRlEnv(Setup, TrainSet, ObsDim, NumActions);
    if (!Probe.isOk()) {
      std::fprintf(stderr, "env setup failed: %s\n",
                   Probe.status().toString().c_str());
      return 1;
    }
  }
  std::printf("setup: obs dim %zu, %zu actions (42-of-%zu subset), %d "
              "training episodes\n\n",
              ObsDim, NumActions, NumActions, TrainEpisodes);

  std::vector<std::unique_ptr<Agent>> Agents;
  {
    A2cConfig C;
    C.ObsDim = ObsDim;
    C.NumActions = NumActions;
    Agents.push_back(std::make_unique<A2cAgent>(C));
  }
  {
    DqnConfig C;
    C.ObsDim = ObsDim;
    C.NumActions = NumActions;
    Agents.push_back(std::make_unique<DqnAgent>(C));
  }
  {
    ImpalaConfig C;
    C.ObsDim = ObsDim;
    C.NumActions = NumActions;
    Agents.push_back(std::make_unique<ImpalaAgent>(C));
  }
  {
    PpoConfig C;
    C.ObsDim = ObsDim;
    C.NumActions = NumActions;
    Agents.push_back(std::make_unique<PpoAgent>(C));
  }

  std::map<std::string, std::map<std::string, double>> Table;
  for (auto &Agent : Agents) {
    size_t Dim = 0, Actions = 0;
    auto Env = makeRlEnv(Setup, TrainSet, Dim, Actions);
    if (!Env.isOk())
      continue;
    std::printf("training %s...\n", Agent->name().c_str());
    if (Status S = Agent->train(**Env, TrainEpisodes); !S.isOk()) {
      std::fprintf(stderr, "  training failed: %s\n", S.toString().c_str());
      continue;
    }
    for (const auto &[Name, Uris] : TestSets) {
      auto Score = evaluateCodeSizeVsOz(*Agent, Setup, Uris);
      Table[Agent->name()][Name] = Score.isOk() ? *Score : 0.0;
    }
  }

  std::printf("\n-- Table VI: geomean code size reduction vs -Oz --\n");
  std::printf("%-14s", "dataset");
  for (auto &Agent : Agents)
    std::printf(" %10s", Agent->name().c_str());
  std::printf("\n");
  for (const auto &[Name, Uris] : TestSets) {
    std::printf("%-14s", Name.c_str());
    for (auto &Agent : Agents)
      std::printf(" %9.3fx", Table[Agent->name()][Name]);
    std::printf("\n");
  }
  std::printf("\npaper (100k episodes): PPO csmith 1.245x; 3 of 4 agents "
              "positive in-domain; transfer mostly < 1.0x\n");

  ShapeChecks Checks;
  // Smoke scale trains ~3 orders of magnitude fewer episodes than the
  // paper's 100k; the absolute bar scales accordingly (an untrained policy
  // scores ~0.3 on this metric, so 0.5+ demonstrates real learning).
  double InDomainBar = fullScale() ? 0.9 : 0.5;
  double PpoCsmith = Table["PPO"]["csmith"];
  Checks.check(PpoCsmith > InDomainBar,
               "PPO clearly learns on its training domain");
  int InDomainPositive = 0;
  for (auto &Agent : Agents)
    InDomainPositive += Table[Agent->name()]["csmith"] > InDomainBar * 0.9;
  Checks.check(InDomainPositive >= 2,
               "at least half the agents do well in-domain");
  // Generalization gap: average cross-domain score below in-domain for PPO.
  double CrossSum = 0;
  int CrossCount = 0;
  for (const auto &[Name, Uris] : TestSets) {
    if (Name == "csmith")
      continue;
    CrossSum += Table["PPO"][Name];
    ++CrossCount;
  }
  Checks.check(CrossSum / CrossCount < PpoCsmith,
               "cross-domain transfer is weaker than in-domain (the "
               "generalization challenge)");
  return Checks.verdict();
}
