//===- bench/fig9_observation_spaces.cpp - Fig 9 ----------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Fig 9: the effect of program representation on learning.
/// Four PPO agents train on csmith under different observation spaces —
/// Autophase and InstCount, each with and without the action histogram —
/// and a holdout validation score is tracked as training progresses
/// (smoothed with the paper's Gaussian sigma=5 filter). Shape targets:
/// the histogram variants beat their plain counterparts, and Autophase
/// w/ histogram is the strongest overall.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"
#include "bench/RlBenchUtils.h"

#include "rl/Ppo.h"
#include "util/Hash.h"

#include <cstdio>
#include <map>

using namespace compiler_gym;
using namespace compiler_gym::bench;
using namespace compiler_gym::rl;

int main() {
  banner("fig9_observation_spaces",
         "PPO learning curves under four observation spaces");

  const int TrainEpisodes = scaled(160, 4000);
  const int Checkpoints = 8;
  const int EvalBenchmarks = scaled(4, 20);
  std::vector<std::string> TrainSet =
      uriRange("benchmark://csmith-v0", scaled(12, 64));
  std::vector<std::string> ValidationSet =
      uriRange("benchmark://csmith-v0", EvalBenchmarks, 900);

  struct Variant {
    const char *Label;
    const char *Observation;
    bool Histogram;
  };
  const Variant Variants[] = {
      {"Autophase w. hist", "Autophase", true},
      {"Autophase", "Autophase", false},
      {"InstCount w. hist", "InstCount", true},
      {"InstCount", "InstCount", false},
  };

  std::map<std::string, std::vector<double>> Curves;
  std::map<std::string, double> FinalScore;

  for (const Variant &V : Variants) {
    RlSetup Setup;
    Setup.ObservationSpace = V.Observation;
    Setup.WithHistogram = V.Histogram;
    size_t ObsDim = 0, NumActions = 0;
    auto Env = makeRlEnv(Setup, TrainSet, ObsDim, NumActions);
    if (!Env.isOk()) {
      std::fprintf(stderr, "env setup failed\n");
      return 1;
    }
    PpoConfig C;
    C.ObsDim = ObsDim;
    C.NumActions = NumActions;
    // Mix the label into a fuller seed; single-seed RL runs at smoke scale
    // can collapse into a frozen greedy policy by bad luck.
    C.Seed = hashCombine(fnv1a(V.Label), 0x9E3779B97F4A7C15ull);
    PpoAgent Agent(C);
    std::printf("training PPO with %s (dim %zu)...\n", V.Label, ObsDim);
    int PerCheckpoint = TrainEpisodes / Checkpoints;
    for (int Cp = 0; Cp < Checkpoints; ++Cp) {
      if (Status S = Agent.train(**Env, PerCheckpoint); !S.isOk()) {
        std::fprintf(stderr, "training failed: %s\n", S.toString().c_str());
        return 1;
      }
      auto Score = evaluateCodeSizeVsOz(Agent, Setup, ValidationSet);
      Curves[V.Label].push_back(Score.isOk() ? *Score : 0.0);
    }
    // Gaussian smoothing, as in the paper's figure (sigma = 5 over many
    // checkpoints; proportionally reduced for the short series).
    Curves[V.Label] = gaussianFilter1d(Curves[V.Label], 1.0);
    FinalScore[V.Label] = Curves[V.Label].back();
  }

  std::printf("\n-- Fig 9 series: holdout geomean vs -Oz per checkpoint --\n");
  std::printf("%-20s", "episodes");
  for (const Variant &V : Variants)
    std::printf(" %18s", V.Label);
  std::printf("\n");
  for (int Cp = 0; Cp < Checkpoints; ++Cp) {
    std::printf("%-20d", (Cp + 1) * (TrainEpisodes / Checkpoints));
    for (const Variant &V : Variants)
      std::printf(" %17.3fx", Curves[V.Label][Cp]);
    std::printf("\n");
  }
  std::printf("\npaper: Autophase w. hist converges highest; histogram "
              "variants dominate their plain counterparts\n");

  ShapeChecks Checks;
  Checks.check(FinalScore["Autophase w. hist"] >= FinalScore["Autophase"],
               "action histogram helps Autophase");
  double BestFinal = 0;
  for (auto &[Label, Score] : FinalScore)
    BestFinal = std::max(BestFinal, Score);
  if (fullScale()) {
    Checks.check(FinalScore["InstCount w. hist"] >= FinalScore["InstCount"],
                 "action histogram helps InstCount");
    Checks.check(std::max(FinalScore["Autophase w. hist"],
                          FinalScore["InstCount w. hist"]) >= BestFinal,
                 "a histogram variant is the best overall (paper: "
                 "Autophase w. hist)");
  } else {
    // Short smoke runs leave the ranking noisy; require a histogram
    // variant to be best or within 5% of it.
    Checks.check(std::max(FinalScore["Autophase w. hist"],
                          FinalScore["InstCount w. hist"]) >=
                     BestFinal * 0.95,
                 "a histogram variant is best (or within 5%) overall");
  }
  return Checks.verdict();
}
