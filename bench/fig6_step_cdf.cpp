//===- bench/fig6_step_cdf.cpp - Fig 6 reproduction -------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Fig 6: the cumulative distribution of environment step times
/// for each of the 23 programs in cBench. The paper's headline is the wide
/// spread: a 560x difference between the median step time of the fastest
/// program (crc32) and the slowest (ghostscript). We print per-program
/// decile series (the CDF lines) and check the spread is large.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "core/Registry.h"
#include "datasets/DatasetRegistry.h"
#include "passes/PassRegistry.h"
#include "util/Timer.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace compiler_gym;
using namespace compiler_gym::bench;

int main() {
  banner("fig6_step_cdf", "CDF of step times across the cBench programs");

  const int StepsPerProgram = scaled(60, 1000);
  const auto *Cbench =
      datasets::DatasetRegistry::instance().dataset("benchmark://cbench-v1");
  if (!Cbench) {
    std::fprintf(stderr, "cbench dataset missing\n");
    return 1;
  }
  size_t NumActions =
      passes::PassRegistry::instance().defaultActionNames().size();

  std::map<std::string, std::vector<double>> StepTimes;
  Rng Gen(0xF16);
  for (const std::string &Name : Cbench->benchmarkNames(23)) {
    core::MakeOptions Opts;
    Opts.Benchmark = "benchmark://cbench-v1/" + Name;
    Opts.ObservationSpace = "Autophase";
    Opts.RewardSpace = "IrInstructionCount";
    auto Env = core::make("llvm-v0", Opts);
    if (!Env.isOk() || !(*Env)->reset().isOk())
      continue;
    std::vector<double> &Times = StepTimes[Name];
    for (int S = 0; S < StepsPerProgram; ++S) {
      // Periodic reset keeps programs from degenerating to empty modules.
      if (S % 50 == 49 && !(*Env)->reset().isOk())
        break;
      int Action = static_cast<int>(Gen.bounded(NumActions));
      Stopwatch Watch;
      if (!(*Env)->step(Action).isOk())
        break;
      Times.push_back(Watch.elapsedMs());
    }
  }

  // CDF series: per-program deciles (x = step time ms, y = P).
  std::printf("\n-- Fig 6 series: step-time deciles per program (ms) --\n");
  std::printf("%-14s", "program");
  for (int D = 10; D <= 90; D += 20)
    std::printf("    p%02d", D);
  std::printf("    p50\n");
  double MinMedian = 1e300, MaxMedian = 0;
  std::string Fastest, Slowest;
  for (auto &[Name, Times] : StepTimes) {
    if (Times.empty())
      continue;
    std::printf("%-14s", Name.c_str());
    for (int D = 10; D <= 90; D += 20)
      std::printf(" %6.3f", percentile(Times, D));
    double Median = percentile(Times, 50);
    std::printf(" %6.3f\n", Median);
    if (Median < MinMedian) {
      MinMedian = Median;
      Fastest = Name;
    }
    if (Median > MaxMedian) {
      MaxMedian = Median;
      Slowest = Name;
    }
  }

  double Spread = MaxMedian / std::max(MinMedian, 1e-9);
  std::printf("\nmedian step-time spread: %.1fx between %s (%.3fms) and %s "
              "(%.3fms); paper: 560x between crc32 and ghostscript\n",
              Spread, Fastest.c_str(), MinMedian, Slowest.c_str(),
              MaxMedian);

  ShapeChecks Checks;
  Checks.check(StepTimes.size() == 23, "all 23 cBench programs measured");
  Checks.check(Spread > 10.0,
               "median step time spans >=10x across programs");
  Checks.check(Fastest == "crc32" || Fastest == "stringsearch" ||
                   Fastest == "bitcount",
               "fastest program is one of the tiny kernels (paper: crc32)");
  Checks.check(Slowest == "ghostscript",
               "slowest program is ghostscript (as in the paper)");
  return Checks.verdict();
}
