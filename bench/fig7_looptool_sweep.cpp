//===- bench/fig7_looptool_sweep.cpp - Fig 7 --------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Fig 7: a sweep over loop_tool configurations for point-wise
/// addition on the (simulated) GP100 — threading the outer loop and sizing
/// the inner loop. Prints FLOPs series per inner size and checks the
/// paper's shape: throughput ramps with thread count, peaks at ~73.5% of
/// the theoretical bandwidth bound, and drops past ~100k threads.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "envs/loop_tool/GpuModel.h"

#include <cstdio>

using namespace compiler_gym;
using namespace compiler_gym::bench;
using namespace compiler_gym::envs;

namespace {

/// Builds a two-level nest over N elements: a threaded outer loop and an
/// inner per-thread loop of ~InnerSize iterations.
LoopTree configured(int64_t N, int64_t InnerSize) {
  LoopTree T(N);
  T.split();                 // [N/2, 2].
  T.cursorDown();            // Cursor to the inner loop (move mode).
  T.toggleMode();            // Modify.
  while (T.loops()[1].Size < InnerSize && T.cursorUp()) {
  }
  T.toggleMode();            // Move.
  T.cursorUp();              // Outer loop.
  T.thread();
  return T;
}

} // namespace

int main() {
  banner("fig7_looptool_sweep",
         "loop_tool CUDA sweep: pointwise addition on simulated GP100");

  const int64_t N = 1 << 24; // 16M elements, like the paper's large sweep.
  Rng Gen(0xF17);
  double Peak = theoreticalPeakFlops();
  std::printf("theoretical peak (bandwidth bound): %.3g FLOP/s\n\n", Peak);

  std::printf("%-12s %-12s %-12s %-14s %s\n", "inner_size", "threads",
              "flops", "frac_of_peak", "");
  double Best = 0;
  int64_t BestThreads = 0;
  double At64k = 0, At512k = 0;
  for (int64_t InnerSize : {1, 4, 16, 64, 256}) {
    for (int ThreadLog = 8; ThreadLog <= 22; ThreadLog += 2) {
      LoopTree T = configured(N, InnerSize);
      int64_t Threads = T.totalThreads();
      double Flops = measureFlops(T, Gen);
      std::printf("%-12lld %-12lld %-12.3g %-14.3f %s\n",
                  static_cast<long long>(InnerSize),
                  static_cast<long long>(Threads), Flops, Flops / Peak,
                  Threads > 100000 ? "(past scheduler cliff)" : "");
      if (Flops > Best) {
        Best = Flops;
        BestThreads = Threads;
      }
      if (Threads >= 60000 && Threads <= 70000)
        At64k = std::max(At64k, Flops);
      if (Threads >= 400000 && Threads <= 700000)
        At512k = std::max(At512k, Flops);
      // Inner size fixes threads = N / inner; the ThreadLog loop is only a
      // formality for the two-level nest, so break after one row.
      break;
    }
  }

  // Also sweep threads directly at fixed work-per-thread granularity by
  // varying the inner size across a wide range.
  std::printf("\n-- thread sweep (inner size = N/threads) --\n");
  std::vector<std::pair<int64_t, double>> Series;
  for (int ThreadLog = 6; ThreadLog <= 23; ++ThreadLog) {
    int64_t Threads = 1ll << ThreadLog;
    LoopTree T = configured(N, N / Threads);
    double Flops = measureFlops(T, Gen);
    Series.emplace_back(T.totalThreads(), Flops);
    std::printf("threads=%-10lld flops=%-12.3g frac=%.3f%s\n",
                static_cast<long long>(T.totalThreads()), Flops,
                Flops / Peak,
                T.totalThreads() > 100000 ? "  <- past ~100k cliff" : "");
    if (Flops > Best) {
      Best = Flops;
      BestThreads = T.totalThreads();
    }
    if (T.totalThreads() >= 60000 && T.totalThreads() <= 70000)
      At64k = std::max(At64k, Flops);
    if (T.totalThreads() >= 400000 && T.totalThreads() <= 700000)
      At512k = std::max(At512k, Flops);
  }

  std::printf("\nbest: %.3g FLOP/s (%.1f%% of peak) at %lld threads; "
              "paper: 73.5%% of peak (~6e10 FLOPs)\n",
              Best, 100.0 * Best / Peak,
              static_cast<long long>(BestThreads));

  ShapeChecks Checks;
  Checks.check(Best / Peak > 0.55 && Best / Peak <= 0.80,
               "peak throughput lands near 73.5% of theoretical");
  Checks.check(Best > 3e10, "best throughput is ~1e10..1e11 FLOPs range");
  Checks.check(At64k > At512k,
               "throughput drops past ~100k threads (Fig 7 cliff)");
  // Serial config is orders of magnitude slower.
  LoopTree Serial(N);
  Checks.check(measureFlops(Serial, Gen) < Best / 20,
               "unthreaded execution is >=20x slower than the best config");
  return Checks.verdict();
}
