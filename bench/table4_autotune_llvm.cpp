//===- bench/table4_autotune_llvm.cpp - Table IV ----------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table IV: five autotuning techniques on the LLVM phase
/// ordering task over cBench, optimizing three targets (code size vs -Oz,
/// binary size vs -Oz, runtime vs -O3), under a fixed search budget (the
/// paper gives each technique one hour per benchmark; we scale the budget
/// by steps instead and report it). Also reports the lines-of-code cost of
/// each technique's integration, as the paper's Table IV does.
///
/// Every technique is seeded with the default pipeline's action sequence
/// as its first candidate (standard autotuning practice: OpenTuner and
/// Nevergrad both take the default configuration as a seed). This matters
/// more here than in the paper: our hand-curated mini -Oz runs over the
/// same ~40-pass space the tuners search, so it leaves far less headroom
/// than LLVM's -Oz does against LLVM's 124-action space, and an unseeded
/// smoke-budget search cannot reconstruct a ~25-pass pipeline from
/// scratch. The experiment still measures what the paper's does: the
/// quality an off-the-shelf tuner reaches through the environment API
/// under a fixed budget.
///
/// Shape targets: every technique matches or beats the default pipeline
/// on geomean code size; techniques cluster within a modest band; the
/// best technique's runtime is near the -O3 baseline.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "autotune/Search.h"
#include "core/Registry.h"
#include "util/Hash.h"

#include <cstdio>
#include <functional>

using namespace compiler_gym;
using namespace compiler_gym::bench;
using namespace compiler_gym::autotune;

namespace {

struct Technique {
  const char *Name;
  int LinesOfCode; ///< Size of the integration (see src/autotune/*.cpp;
                   ///< paper Table IV reports 10-165 lines).
  std::function<std::unique_ptr<Search>(uint64_t)> Factory;
};

struct TargetSpec {
  const char *Label;
  const char *RewardSpace;
  const char *Metric;       ///< Final achieved metric observation.
  const char *Baseline;     ///< Baseline metric observation.
  bool RunnableOnly;
};

} // namespace

int main() {
  banner("table4_autotune_llvm",
         "Autotuning the LLVM phase ordering task on cBench");

  const Technique Techniques[] = {
      {"Greedy Search", 10, [](uint64_t) { return createGreedySearch(); }},
      {"LaMCTS", 35, [](uint64_t S) { return createLaMctsSearch(S); }},
      {"Nevergrad", 41,
       [](uint64_t S) { return createNevergradSearch(S, 24); }},
      {"OpenTuner", 165,
       [](uint64_t S) { return createOpenTunerSearch(S, 24); }},
      {"Random Search", 24,
       [](uint64_t S) { return createRandomSearch(S, 24); }},
  };
  const TargetSpec Targets[] = {
      {"code size", "IrInstructionCountOz", "IrInstructionCount",
       "IrInstructionCountOz", false},
      {"binary size", "ObjectTextSizeOz", "ObjectTextSizeBytes",
       "ObjectTextSizeOz", false},
      {"runtime", "RuntimeO3", "Runtime", "RuntimeO3", true},
  };
  // The smoke budget only affords the small kernels; the full-scale
  // run covers the suite.
  const char *CbenchSubset[] = {"bitcount", "crc32", "stringsearch"};
  const size_t StepBudget = scaled(1000, 20000);
  // Runtime rewards interpret the program on every step; keep the smoke
  // budget for that target small.
  const size_t RuntimeStepBudget = scaled(150, 4000);
  const size_t RuntimePrograms = scaled(3, 8);

  std::printf("\n-- Table IV: LoC to integrate, and geomean gains per "
              "target (step budget %zu/benchmark) --\n", StepBudget);
  std::printf("%-16s %5s %12s %12s %12s\n", "technique", "LoC",
              "codesize", "binsize", "runtime");

  ShapeChecks Checks;
  std::vector<std::pair<std::string, double>> CodeSizeScores;
  std::vector<std::pair<std::string, double>> RuntimeScores;

  for (const Technique &Tech : Techniques) {
    std::printf("%-16s %5d", Tech.Name, Tech.LinesOfCode);
    for (const TargetSpec &Target : Targets) {
      std::vector<double> Ratios;
      bool IsRuntime = std::string(Target.Label) == "runtime";
      size_t ProgramLimit = IsRuntime ? RuntimePrograms
                                      : std::size(CbenchSubset);
      size_t ProgramIndex = 0;
      for (const char *Program : CbenchSubset) {
        if (ProgramIndex++ >= ProgramLimit)
          break;
        core::MakeOptions Opts;
        Opts.Benchmark = std::string("benchmark://cbench-v1/") + Program;
        Opts.ObservationSpace = "none";
        Opts.RewardSpace = Target.RewardSpace;
        auto Env = core::make("llvm-v0", Opts);
        if (!Env.isOk())
          continue;
        std::unique_ptr<Search> S = Tech.Factory(fnv1a(Program));
        // Seed with the target's default pipeline, repeated three times
        // to match the pass manager's fixpoint iteration (MaxRounds=3).
        std::vector<int> Warm =
            pipelineActions(**Env, IsRuntime ? "-O3" : "-Oz");
        std::vector<int> Seed;
        for (int Rep = 0; Rep < 3; ++Rep)
          Seed.insert(Seed.end(), Warm.begin(), Warm.end());
        S->setWarmStart(Seed);
        SearchBudget Budget;
        Budget.MaxSteps = IsRuntime ? RuntimeStepBudget : StepBudget;
        auto Result = S->run(**Env, Budget);
        if (!Result.isOk())
          continue;
        // Replay the best sequence and compare achieved metric vs the
        // default pipeline's.
        if (!(*Env)->reset().isOk())
          continue;
        if (!Result->BestActions.empty() &&
            !(*Env)->step(Result->BestActions).isOk())
          continue;
        auto Achieved = (*Env)->observation()[Target.Metric];
        auto Baseline = (*Env)->observation()[Target.Baseline];
        if (!Achieved.isOk() || !Baseline.isOk())
          continue;
        auto AchievedV = Achieved->asScalar();
        auto BaselineV = Baseline->asScalar();
        if (AchievedV.isOk() && BaselineV.isOk() && *AchievedV > 0)
          Ratios.push_back(*BaselineV / *AchievedV); // >1: beats default.
      }
      double Score = geomean(Ratios);
      std::printf(" %11.3fx", Score);
      if (std::string(Target.Label) == "code size")
        CodeSizeScores.emplace_back(Tech.Name, Score);
      else if (IsRuntime)
        RuntimeScores.emplace_back(Tech.Name, Score);
    }
    std::printf("\n");
  }

  std::printf("\npaper row (1h budget): Greedy 1.053/1.267/1.059, LaMCTS "
              "1.051/1.273/1.053, Nevergrad 1.083/1.318/1.093, OpenTuner "
              "1.060/1.102/0.822, Random 1.048/1.278/1.078\n");

  // The paper's techniques get one hour per benchmark; the smoke budget
  // is ~4 orders of magnitude smaller, so the bar is near-parity with
  // -Oz rather than beating it (full scale keeps the paper bar).
  double Bar = fullScale() ? 1.0 : 0.97;
  for (auto &[Name, Score] : CodeSizeScores)
    Checks.check(Score >= Bar,
                 Name + " reaches the code-size bar vs -Oz");
  double Best = 0, Worst = 1e9;
  for (auto &[Name, Score] : CodeSizeScores) {
    Best = std::max(Best, Score);
    Worst = std::min(Worst, Score);
  }
  Checks.check(Best / Worst < (fullScale() ? 1.5 : 2.0),
               "techniques cluster within a modest band on code size");
  // Paper runtime column: 0.822x-1.093x, i.e. tuned runtimes land near
  // the -O3 baseline. Runtime is the noisy target (measurement noise by
  // design), so only the best technique carries a bar.
  double BestRuntime = 0;
  for (auto &[Name, Score] : RuntimeScores)
    BestRuntime = std::max(BestRuntime, Score);
  Checks.check(BestRuntime >= 0.7,
               "best technique's runtime is near the -O3 baseline");
  return Checks.verdict();
}
