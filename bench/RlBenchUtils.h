//===- bench/RlBenchUtils.h - Shared RL experiment plumbing -----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experimental setup shared by Tables VI/VII and Fig 9, replicating
/// §VII-G: episodes fixed to 45 steps (TimeLimit), observation = feature
/// vector concatenated with a histogram of the agent's previous actions
/// (ObservationHistogram), a 42-action subset of the pass space, code-size
/// reward scaled against -Oz, training benchmarks cycled per reset.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_BENCH_RLBENCHUTILS_H
#define COMPILER_GYM_BENCH_RLBENCHUTILS_H

#include "core/Registry.h"
#include "core/Wrappers.h"
#include "rl/Agent.h"
#include "util/Stats.h"

#include <memory>
#include <string>
#include <vector>

namespace compiler_gym {
namespace bench {

/// The experiment's environment configuration.
struct RlSetup {
  std::string ObservationSpace = "Autophase";
  bool WithHistogram = true;
  size_t EpisodeSteps = 45;
  size_t ActionSubsetSize = 42; ///< Of the full pass list, as in §VII-G.
  std::string RewardSpace = "IrInstructionCountOz";
};

/// Deterministic 42-action subset: every k-th action of the sorted list.
inline std::vector<int> actionSubset(size_t Total, size_t Want) {
  std::vector<int> Subset;
  if (Want >= Total) {
    for (size_t I = 0; I < Total; ++I)
      Subset.push_back(static_cast<int>(I));
    return Subset;
  }
  for (size_t I = 0; I < Want; ++I)
    Subset.push_back(static_cast<int>(I * Total / Want));
  return Subset;
}

/// Builds the §VII-G environment over training benchmarks cycled per
/// reset. Returns the wrapper chain and the observation dimensionality.
inline StatusOr<std::unique_ptr<core::Env>>
makeRlEnv(const RlSetup &Setup, const std::vector<std::string> &Benchmarks,
          size_t &ObsDimOut, size_t &NumActionsOut) {
  core::MakeOptions Opts;
  Opts.Benchmark = Benchmarks.front();
  Opts.ObservationSpace = Setup.ObservationSpace;
  Opts.RewardSpace = Setup.RewardSpace;
  CG_ASSIGN_OR_RETURN(std::unique_ptr<core::CompilerEnv> Base,
                      core::make("llvm-v0", Opts));
  size_t BaseDim = Setup.ObservationSpace == "Autophase" ? 56 : 70;
  size_t TotalActions = 0;
  {
    CG_ASSIGN_OR_RETURN(service::Observation Init, Base->reset());
    (void)Init;
    TotalActions = Base->actionSpace().size();
  }
  std::vector<int> Subset =
      actionSubset(TotalActions, Setup.ActionSubsetSize);
  NumActionsOut = Subset.size();

  std::unique_ptr<core::Env> Chain = std::make_unique<core::CycleOverBenchmarks>(
      std::move(Base), Benchmarks, [](core::Env &E, const std::string &Uri) {
        static_cast<core::CompilerEnv &>(E).setBenchmark(Uri);
      });
  Chain = std::make_unique<core::ActionSubset>(std::move(Chain), Subset);
  if (Setup.WithHistogram) {
    Chain = std::make_unique<core::ObservationHistogram>(std::move(Chain));
    ObsDimOut = BaseDim + NumActionsOut;
  } else {
    ObsDimOut = BaseDim;
  }
  Chain = std::make_unique<core::TimeLimit>(std::move(Chain),
                                            Setup.EpisodeSteps);
  return Chain;
}

/// Evaluates a trained agent on \p Benchmarks: geomean of
/// oz_size / achieved_size per benchmark (>1 = beats -Oz), the metric of
/// Tables VI/VII.
inline StatusOr<double>
evaluateCodeSizeVsOz(rl::Agent &Agent, const RlSetup &Setup,
                     const std::vector<std::string> &Benchmarks) {
  std::vector<double> Ratios;
  for (const std::string &Uri : Benchmarks) {
    size_t ObsDim = 0, NumActions = 0;
    CG_ASSIGN_OR_RETURN(std::unique_ptr<core::Env> Env,
                        makeRlEnv(Setup, {Uri}, ObsDim, NumActions));
    CG_ASSIGN_OR_RETURN(double Reward,
                        rl::evaluateEpisode(*Env, Agent,
                                            Setup.EpisodeSteps));
    (void)Reward;
    // Final achieved size vs the -Oz baseline (one prefetch RPC).
    (void)Env->observation().prefetch(
        {"IrInstructionCount", "IrInstructionCountOz"});
    auto Achieved = Env->observation()["IrInstructionCount"];
    auto Baseline = Env->observation()["IrInstructionCountOz"];
    if (!Achieved.isOk() || !Baseline.isOk() ||
        Achieved->raw().IntValue <= 0)
      continue;
    Ratios.push_back(static_cast<double>(Baseline->raw().IntValue) /
                     static_cast<double>(Achieved->raw().IntValue));
  }
  if (Ratios.empty())
    return internalError("no benchmarks evaluated");
  return geomean(Ratios);
}

/// Training benchmark URI lists per dataset.
inline std::vector<std::string> uriRange(const std::string &Dataset, int N,
                                         int Offset = 0) {
  std::vector<std::string> Out;
  for (int I = 0; I < N; ++I)
    Out.push_back(Dataset + "/" + std::to_string(Offset + I));
  return Out;
}

} // namespace bench
} // namespace compiler_gym

#endif // COMPILER_GYM_BENCH_RLBENCHUTILS_H
