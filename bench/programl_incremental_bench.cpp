//===- bench/programl_incremental_bench.cpp - Rich-space increments ------===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the incremental paths for the two expensive observation spaces
/// the paper's Table III singles out — ProGraML and Inst2vec — plus the
/// wire-level delta encoding:
///   cold      = whole-module rescan (pre-refactor behaviour),
///   warm      = FeatureCache hit on an unchanged module,
///   one-dirty = exactly one function invalidated between requests,
/// and a delta-vs-full wire-size column for one-function edits.
///
/// Shape targets: one-dirty ProGraML and Inst2vec observations are >=5x
/// cheaper than the whole-module rescan, and delta-encoded replies are
/// smaller than full payloads for one-function edits.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "analysis/FeatureCache.h"
#include "analysis/Inst2vec.h"
#include "analysis/ProGraML.h"
#include "datasets/CsmithGenerator.h"
#include "datasets/CuratedSuites.h"
#include "service/Serialization.h"
#include "util/Timer.h"

#include <algorithm>
#include <cstdio>
#include <map>

using namespace compiler_gym;
using namespace compiler_gym::bench;

namespace {

service::Observation inst2vecObs(const std::vector<float> &E) {
  service::Observation O;
  O.Type = service::ObservationType::DoubleList;
  O.Doubles.assign(E.begin(), E.end());
  return O;
}

service::Observation programlObs(std::string Bytes) {
  service::Observation O;
  O.Type = service::ObservationType::Binary;
  O.Str = std::move(Bytes);
  return O;
}

} // namespace

int main() {
  banner("programl_incremental_bench",
         "Incremental ProGraML/Inst2vec observations and wire deltas");

  const int Repeats = scaled(8, 60);
  const int WarmLookups = 4;

  std::map<std::string, std::vector<double>> Cold, Warm, Dirty1;
  size_t CorpusFunctions = 0, CorpusModules = 0;
  uint64_t FullWire = 0, DeltaWire = 0, UnchangedWire = 0;
  bool AllDeltasSmaller = true;

  for (uint64_t Seed : {11ull, 23ull, 37ull, 51ull}) {
    datasets::ProgramStyle Style = datasets::styleForDataset(
        Seed % 2 ? "benchmark://csmith-v0" : "benchmark://npb-v0");
    // Many-function modules: the one-dirty claim is about skipping the
    // N-1 clean functions, so give it an N worth skipping.
    Style.MinFunctions = 24;
    Style.MaxFunctions = 32;
    auto M = datasets::generateProgram(Seed, Style, "m");
    if (!M || M->functions().size() < 2)
      continue;
    ++CorpusModules;
    CorpusFunctions += M->functions().size();
    // Dirty a mid-module function: edits there exercise both the skipped
    // prefix and the byte-stable suffix of the serialized graph.
    const ir::Function *Mid =
        M->functions()[M->functions().size() / 2].get();

    analysis::FeatureCache Cache;
    (void)Cache.inst2vec(*M); // Populate once.
    (void)Cache.programl(*M);

    for (int R = 0; R < Repeats; ++R) {
      {
        Stopwatch W;
        (void)analysis::inst2vec(*M);
        Cold["Inst2vec"].push_back(W.elapsedMs());
      }
      {
        Stopwatch W;
        (void)analysis::serializeGraph(analysis::buildProgramGraph(*M));
        Cold["Programl"].push_back(W.elapsedMs());
      }
      for (int K = 0; K < WarmLookups; ++K) {
        Stopwatch W;
        (void)Cache.inst2vec(*M);
        Warm["Inst2vec"].push_back(W.elapsedMs());
      }
      for (int K = 0; K < WarmLookups; ++K) {
        Stopwatch W;
        (void)Cache.programl(*M);
        Warm["Programl"].push_back(W.elapsedMs());
      }
      {
        Cache.invalidateFunction(Mid);
        Stopwatch W;
        (void)Cache.inst2vec(*M);
        Dirty1["Inst2vec"].push_back(W.elapsedMs());
      }
      {
        Cache.invalidateFunction(Mid);
        Stopwatch W;
        (void)Cache.programl(*M);
        Dirty1["Programl"].push_back(W.elapsedMs());
      }
    }

    // Wire sizes: delta between the observation before and after a
    // one-function edit vs the full payload (and the empty
    // "unchanged-state" delta the handshake sends for repeat queries).
    service::Observation I2vBase = inst2vecObs(Cache.inst2vec(*M));
    service::Observation PgBase = programlObs(Cache.programl(*M));
    ir::Function *MutableMid =
        M->functions()[M->functions().size() / 2].get();
    for (const auto &BB : MutableMid->blocks()) {
      bool Deleted = false;
      for (size_t I = 0; I < BB->size(); ++I) {
        const ir::Instruction *Inst = BB->instructions()[I].get();
        if (Inst->isTerminator() || MutableMid->hasUses(Inst) ||
            Inst->hasSideEffects())
          continue;
        BB->erase(I);
        Deleted = true;
        break;
      }
      if (Deleted)
        break;
    }
    Cache.invalidateFunction(MutableMid);
    service::Observation I2vFull = inst2vecObs(Cache.inst2vec(*M));
    service::Observation PgFull = programlObs(Cache.programl(*M));
    for (auto [Base, Full] : {std::pair<const service::Observation *,
                                        const service::Observation *>{
                                  &I2vBase, &I2vFull},
                              {&PgBase, &PgFull}}) {
      FullWire += service::observationWireSize(*Full);
      service::Observation Delta;
      if (service::encodeObservationDelta(*Base, *Full, Delta)) {
        DeltaWire += service::observationWireSize(Delta);
      } else {
        DeltaWire += service::observationWireSize(*Full);
        AllDeltasSmaller = false;
      }
      service::Observation Unchanged;
      Unchanged.Type = Full->Type;
      Unchanged.IsDelta = true;
      UnchangedWire += service::observationWireSize(Unchanged);
    }
  }

  std::printf("\ncorpus: %zu modules, %zu functions total\n", CorpusModules,
              CorpusFunctions);
  std::printf("\n-- observation costs: cold (full rescan) --\n");
  for (const char *Space : {"Inst2vec", "Programl"})
    latencyRow(Space, Cold[Space]);
  std::printf("-- observation costs: warm (unchanged module) --\n");
  for (const char *Space : {"Inst2vec", "Programl"})
    latencyRow(Space, Warm[Space]);
  std::printf("-- observation costs: one function dirty --\n");
  for (const char *Space : {"Inst2vec", "Programl"})
    latencyRow(Space, Dirty1[Space]);

  // Ratios gate on medians: a shared CI box's scheduling spikes inflate
  // means on both sides, p50s stay representative.
  auto medianOf = [](std::map<std::string, std::vector<double>> &T,
                     const char *K) { return summarizeLatencies(T[K]).P50; };
  double ColdI2v = medianOf(Cold, "Inst2vec");
  double WarmI2v = medianOf(Warm, "Inst2vec");
  double Dirty1I2v = medianOf(Dirty1, "Inst2vec");
  double ColdPg = medianOf(Cold, "Programl");
  double WarmPg = medianOf(Warm, "Programl");
  double Dirty1Pg = medianOf(Dirty1, "Programl");
  // Sub-tick warm medians read as 0; clamp to one timer tick so the
  // ratios stay finite.
  WarmI2v = std::max(WarmI2v, 1e-6);
  WarmPg = std::max(WarmPg, 1e-6);
  std::printf("\nwarm speedup (p50): Inst2vec %.1fx, Programl %.1fx\n",
              ColdI2v / WarmI2v, ColdPg / WarmPg);
  std::printf("one-dirty speedup (p50): Inst2vec %.1fx, Programl %.1fx\n",
              ColdI2v / Dirty1I2v, ColdPg / Dirty1Pg);
  std::printf("\n-- wire size, one-function edit (all modules) --\n");
  std::printf("%-28s %10llu bytes\n", "full payloads",
              static_cast<unsigned long long>(FullWire));
  std::printf("%-28s %10llu bytes (%.1f%% of full)\n", "delta replies",
              static_cast<unsigned long long>(DeltaWire),
              100.0 * DeltaWire / FullWire);
  std::printf("%-28s %10llu bytes\n", "unchanged-state replies",
              static_cast<unsigned long long>(UnchangedWire));

  ShapeChecks Checks;
  Checks.check(ColdI2v / Dirty1I2v > 5.0,
               "one-dirty Inst2vec >=5x cheaper than full rescan");
  Checks.check(ColdPg / Dirty1Pg > 5.0,
               "one-dirty Programl >=5x cheaper than full rescan");
  Checks.check(ColdI2v / WarmI2v > 5.0,
               "warm Inst2vec >=5x cheaper than full rescan");
  Checks.check(ColdPg / WarmPg > 5.0,
               "warm Programl >=5x cheaper than full rescan");
  Checks.check(AllDeltasSmaller && DeltaWire < FullWire,
               "delta replies smaller than full payloads for "
               "one-function edits");
  Checks.check(UnchangedWire * 10 < FullWire,
               "unchanged-state replies are near-free");
  return Checks.verdict();
}
