//===- bench/table3_observation_costs.cpp - Table III -----------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table III: wall-time costs of the LLVM environment's
/// observation and reward spaces over random trajectories. Shape targets:
/// a wide (>=20x) range across observation spaces with the graph/embedding
/// spaces (Programl, Inst2vec) the most expensive and the scalar count
/// spaces the cheapest; reward spaces spanning deterministic instruction
/// counting up to nondeterministic runtime measurement (paper: 192x and
/// 4727x ranges respectively).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "core/Registry.h"
#include "passes/PassRegistry.h"
#include "util/Timer.h"

#include <cstdio>
#include <map>

using namespace compiler_gym;
using namespace compiler_gym::bench;

int main() {
  banner("table3_observation_costs",
         "Computational cost of LLVM observation and reward spaces");

  const int Trajectories = scaled(4, 60);
  const int StepsPerTrajectory = scaled(12, 60);
  const char *ObservationSpaces[] = {"Ir",        "InstCount", "Autophase",
                                     "Inst2vec",  "Programl"};
  const char *RewardMetrics[] = {"IrInstructionCount", "ObjectTextSizeBytes",
                                 "Runtime"};
  const char *Benchmarks[] = {
      "benchmark://cbench-v1/crc32", "benchmark://cbench-v1/susan",
      "benchmark://csmith-v0/11",    "benchmark://npb-v0/2",
  };

  std::map<std::string, std::vector<double>> Costs;
  size_t NumActions =
      passes::PassRegistry::instance().defaultActionNames().size();
  Rng Gen(0x0B5);

  for (int T = 0; T < Trajectories; ++T) {
    core::MakeOptions Opts;
    Opts.Benchmark = Benchmarks[T % std::size(Benchmarks)];
    Opts.ObservationSpace = "none";
    Opts.RewardSpace = "none";
    auto Env = core::make("llvm-v0", Opts);
    if (!Env.isOk() || !(*Env)->reset().isOk())
      continue;
    bool Runnable = Opts.Benchmark.find("cbench") != std::string::npos ||
                    Opts.Benchmark.find("csmith") != std::string::npos;
    for (int S = 0; S < StepsPerTrajectory; ++S) {
      if (!(*Env)->step(static_cast<int>(Gen.bounded(NumActions))).isOk())
        break;
      // rawObservations bypasses the client-side view cache, so each
      // sample times the backend computation, not a frontend memo hit.
      for (const char *Space : ObservationSpaces) {
        Stopwatch Watch;
        if ((*Env)->rawObservations({Space}).isOk())
          Costs[Space].push_back(Watch.elapsedMs());
      }
      for (const char *Metric : RewardMetrics) {
        if (std::string(Metric) == "Runtime" && !Runnable)
          continue;
        Stopwatch Watch;
        if ((*Env)->rawObservations({Metric}).isOk())
          Costs[Metric].push_back(Watch.elapsedMs());
      }
    }
  }

  std::printf("\n-- Table III: observation spaces --\n");
  for (const char *Space : ObservationSpaces)
    latencyRow(Space, Costs[Space]);
  std::printf("-- Table III: reward spaces --\n");
  for (const char *Metric : RewardMetrics)
    latencyRow(Metric, Costs[Metric]);

  auto meanOf = [&](const char *Name) { return mean(Costs[Name]); };
  double CheapObs = std::min({meanOf("InstCount"), meanOf("Autophase")});
  double DearObs = std::max({meanOf("Inst2vec"), meanOf("Programl")});
  double CheapReward = meanOf("IrInstructionCount");
  double DearReward = meanOf("Runtime");
  std::printf("\nobservation-space cost range: %.1fx (paper: 192x)\n",
              DearObs / CheapObs);
  std::printf("reward-space cost range: %.1fx (paper: 4727x)\n",
              DearReward / CheapReward);

  ShapeChecks Checks;
  Checks.check(DearObs / CheapObs > 20.0,
               "observation spaces span a >=20x cost range");
  Checks.check(meanOf("Programl") > meanOf("Autophase"),
               "graph observations cost more than feature vectors");
  Checks.check(meanOf("Inst2vec") > meanOf("InstCount"),
               "embedding observations cost more than counters");
  Checks.check(DearReward / CheapReward > 20.0,
               "reward spaces span a >=20x cost range");
  Checks.check(meanOf("Runtime") > meanOf("ObjectTextSizeBytes"),
               "runtime reward costs more than binary size");
  Checks.check(meanOf("ObjectTextSizeBytes") > meanOf("IrInstructionCount"),
               "binary size costs more than IR instruction count");
  return Checks.verdict();
}
