//===- bench/deadline_overhead_bench.cpp - Deadline cost -------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gates the robustness machinery's overhead on the fault-free step path:
/// with deadline propagation on (the shipping default — every request
/// stamped with its remaining budget, the service arming a CancelToken,
/// and pass pipelines polling it between passes), mean step latency must
/// stay within 1% of a client with PropagateDeadline off.
///
/// Anti-flake design mirrors telemetry_overhead_bench: each round
/// measures both configurations back-to-back (order alternating per
/// round) and yields one paired ratio; the gated statistic is the median
/// round ratio; the measurement retries up to three times before the
/// check fails.
///
/// Also prints the raw cancel-token primitive costs (poll, fault-point
/// no-op branch), which are informational.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "core/Registry.h"
#include "fault/FaultRegistry.h"
#include "util/CancelToken.h"
#include "util/Timer.h"

#include <algorithm>
#include <cstdio>

using namespace compiler_gym;
using namespace compiler_gym::bench;

namespace {

/// ns per operation over \p Iters calls of \p Fn.
template <typename FnT> double nsPerOp(int Iters, FnT &&Fn) {
  Stopwatch W;
  for (int I = 0; I < Iters; ++I)
    Fn();
  return W.elapsedUs() * 1000.0 / Iters;
}

/// Mean step latency (ms) over one round of \p Steps steps. Actions
/// cycle so passes genuinely run — the polling cost under test sits
/// between passes, so a memoized no-op step would measure nothing.
double stepRoundMeanMs(core::CompilerEnv &Env, int Steps) {
  std::vector<double> Samples;
  Samples.reserve(Steps);
  for (int S = 0; S < Steps; ++S) {
    Stopwatch W;
    if (!Env.step({S % 8}).isOk())
      return -1;
    Samples.push_back(W.elapsedMs());
  }
  return mean(Samples);
}

std::unique_ptr<core::CompilerEnv> makeEnv(bool PropagateDeadline) {
  core::MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = "Autophase";
  Opts.RewardSpace = "IrInstructionCount";
  Opts.Client.PropagateDeadline = PropagateDeadline;
  auto Env = core::make("llvm-v0", Opts);
  if (!Env.isOk()) {
    std::fprintf(stderr, "env construction failed: %s\n",
                 Env.status().toString().c_str());
    return nullptr;
  }
  return Env.takeValue();
}

} // namespace

int main() {
  banner("deadline_overhead_bench",
         "Step-latency overhead of deadline propagation + cancel polling "
         "(gated <1%)");

  // -- Primitive costs (informational) ----------------------------------------
  const int MicroIters = scaled(2000000, 20000000);
  util::CancelToken Token;
  Token.armDeadlineMs(60000);
  double PollNs = nsPerOp(MicroIters, [&] { (void)Token.poll(); });
  double FaultNs =
      nsPerOp(MicroIters, [&] { (void)CG_FAULT_POINT("bench.point", &Token); });
  std::printf("\n-- primitive costs --\n");
  std::printf("cancel-token poll:          %7.2f ns/op\n", PollNs);
  std::printf("fault point (disarmed):     %7.2f ns/op\n", FaultNs);

  // -- Step latency A/B: deadlines on vs off ----------------------------------
  std::unique_ptr<core::CompilerEnv> EnvOn = makeEnv(true);
  std::unique_ptr<core::CompilerEnv> EnvOff = makeEnv(false);
  if (!EnvOn || !EnvOff)
    return 1;

  const int Rounds = scaled(9, 15);
  const int StepsPerRound = scaled(600, 1500);
  const double MaxRegression = 1.01;

  ShapeChecks Checks;
  bool Passed = false;
  for (int Attempt = 1; Attempt <= 3 && !Passed; ++Attempt) {
    // Warmup both sessions: page caches, benchmark parse cache, memos.
    if (!EnvOn->reset().isOk() || stepRoundMeanMs(*EnvOn, StepsPerRound) < 0 ||
        !EnvOff->reset().isOk() || stepRoundMeanMs(*EnvOff, StepsPerRound) < 0)
      return 1;

    std::vector<double> Ratios;
    for (int R = 0; R < Rounds; ++R) {
      double MeanOn = 0, MeanOff = 0;
      for (int Leg = 0; Leg < 2; ++Leg) {
        bool DeadlinesOn = (Leg == 0) == (R % 2 == 0);
        core::CompilerEnv &Env = DeadlinesOn ? *EnvOn : *EnvOff;
        if (!Env.reset().isOk())
          return 1;
        double Mean = stepRoundMeanMs(Env, StepsPerRound);
        if (Mean < 0)
          return 1;
        (DeadlinesOn ? MeanOn : MeanOff) = Mean;
      }
      Ratios.push_back(MeanOn / MeanOff);
    }
    std::sort(Ratios.begin(), Ratios.end());
    double Median = Ratios[Ratios.size() / 2];
    Passed = Median <= MaxRegression;
    std::printf("\n-- step latency, attempt %d --\n", Attempt);
    std::printf("per-round deadlines-on/off ratios:");
    for (double Ratio : Ratios)
      std::printf(" %.4f", Ratio);
    std::printf("\nmedian ratio: %.4f (gate: <= %.2f)\n", Median,
                MaxRegression);
  }
  Checks.check(Passed, "deadline-stamped step latency within 1% of "
                       "no-deadline baseline");

  return Checks.verdict();
}
