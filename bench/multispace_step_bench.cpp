//===- bench/multispace_step_bench.cpp - Multi-space step cost -*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures the views API's single-RPC multi-space step against the
/// N-sequential-RPC alternative it replaces: per step, fetch K observation
/// spaces plus a reward metric either (a) bundled into the step RPC
/// (step(actions, spaces, rewards)) or (b) as one raw observation RPC per
/// space after an observation-free step. Shape targets: bundled issues
/// exactly 1 RPC per step vs 1+K, and is measurably faster per step since
/// every RPC pays serialization + dispatch + reply decoding.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "core/Registry.h"
#include "util/Timer.h"

#include <cstdio>

using namespace compiler_gym;
using namespace compiler_gym::bench;

int main() {
  banner("multispace_step_bench",
         "One multi-space step RPC vs N sequential observation RPCs");

  const int Episodes = scaled(6, 40);
  const int StepsPerEpisode = scaled(16, 60);
  const std::vector<std::string> Spaces = {"InstCount", "Autophase", "Ir"};
  const std::vector<std::string> Rewards = {"IrInstructionCount"};

  core::MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "none";

  std::vector<double> Bundled, Sequential;
  uint64_t BundledRpcs = 0, SequentialRpcs = 0;

  auto EnvA = core::make("llvm-v0", Opts);
  auto EnvB = core::make("llvm-v0", Opts);
  if (!EnvA.isOk() || !EnvB.isOk()) {
    std::fprintf(stderr, "env construction failed\n");
    return 1;
  }
  for (int E = 0; E < Episodes; ++E) {
    if (!(*EnvA)->reset().isOk() || !(*EnvB)->reset().isOk())
      return 1;
    for (int S = 0; S < StepsPerEpisode; ++S) {
      // A fixed cheap pass (no-op once applied): the step's transform work
      // is negligible and identical on both sides, so the measurement
      // isolates the RPC-count difference rather than pass cost.
      int Action = 3;
      {
        uint64_t Before = (*EnvA)->client().rpcCount();
        Stopwatch W;
        if (!(*EnvA)->step({Action}, Spaces, Rewards).isOk())
          return 1;
        Bundled.push_back(W.elapsedMs());
        BundledRpcs += (*EnvA)->client().rpcCount() - Before;
      }
      {
        uint64_t Before = (*EnvB)->client().rpcCount();
        Stopwatch W;
        if (!(*EnvB)->step(Action).isOk())
          return 1;
        for (const std::string &Space : Spaces)
          if (!(*EnvB)->rawObservations({Space}).isOk())
            return 1;
        if (!(*EnvB)->rawObservations({Rewards.front()}).isOk())
          return 1;
        Sequential.push_back(W.elapsedMs());
        SequentialRpcs += (*EnvB)->client().rpcCount() - Before;
      }
    }
  }

  std::printf("\n-- per-step cost, %zu observation spaces + %zu reward "
              "metrics --\n",
              Spaces.size(), Rewards.size());
  latencyRow("multi-space step (1 RPC)", Bundled);
  latencyRow("sequential observes", Sequential);
  double RpcsPerBundled = static_cast<double>(BundledRpcs) / Bundled.size();
  double RpcsPerSequential =
      static_cast<double>(SequentialRpcs) / Sequential.size();
  std::printf("RPCs per step: bundled %.2f, sequential %.2f\n",
              RpcsPerBundled, RpcsPerSequential);
  std::printf("speedup: %.2fx\n", mean(Sequential) / mean(Bundled));

  ShapeChecks Checks;
  Checks.check(RpcsPerBundled == 1.0, "bundled step issues exactly 1 RPC");
  Checks.check(RpcsPerSequential ==
                   1.0 + static_cast<double>(Spaces.size() + Rewards.size()),
               "sequential path issues 1+K RPCs");
  Checks.check(mean(Bundled) < mean(Sequential),
               "bundling beats sequential RPCs on mean step cost");
  return Checks.verdict();
}
