//===- bench/telemetry_overhead_bench.cpp - Telemetry cost -----*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Gates the telemetry subsystem's overhead: with metrics on and tracing
/// off (the shipping default), mean step latency must stay within 2% of
/// the no-telemetry baseline (MetricsRegistry disabled, which reduces
/// every instrumentation site to a relaxed load + branch).
///
/// Anti-flake design: each round measures both configurations
/// back-to-back (order alternating per round, so drift and ordering bias
/// cancel) and yields one paired on/off ratio; the gated statistic is the
/// median of the round ratios, which is robust to scheduler noise spikes;
/// and the whole measurement retries up to three times before the check
/// fails.
///
/// Also prints informational numbers for the raw primitives (counter inc,
/// histogram observe, disabled span) and for the tracing-on step cost,
/// which is not gated.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "core/Registry.h"
#include "telemetry/MetricsRegistry.h"
#include "telemetry/Trace.h"
#include "util/Timer.h"

#include <algorithm>
#include <cstdio>

using namespace compiler_gym;
using namespace compiler_gym::bench;
using namespace compiler_gym::telemetry;

namespace {

/// ns per operation over \p Iters calls of \p Fn.
template <typename FnT> double nsPerOp(int Iters, FnT &&Fn) {
  Stopwatch W;
  for (int I = 0; I < Iters; ++I)
    Fn();
  return W.elapsedUs() * 1000.0 / Iters;
}

/// Mean step latency (ms) over one round of \p Steps steps. Actions cycle
/// so passes genuinely run and the module keeps changing — a fully
/// memoized no-op step would overstate the fixed per-step telemetry cost
/// relative to real workloads.
double stepRoundMeanMs(core::CompilerEnv &Env, int Steps) {
  std::vector<double> Samples;
  Samples.reserve(Steps);
  for (int S = 0; S < Steps; ++S) {
    Stopwatch W;
    if (!Env.step({S % 8}).isOk())
      return -1;
    Samples.push_back(W.elapsedMs());
  }
  return mean(Samples);
}

} // namespace

int main() {
  banner("telemetry_overhead_bench",
         "Step-latency overhead of metrics (gated <2%) and tracing");

  MetricsRegistry &Reg = MetricsRegistry::global();
  Tracer &T = Tracer::global();
  T.setEnabled(false);

  // -- Primitive costs (informational) ----------------------------------------
  const int MicroIters = scaled(2000000, 20000000);
  Counter &C = Reg.counter("bench_counter_total");
  Histogram &H = Reg.histogram("bench_histogram_us");
  Reg.setEnabled(true);
  double CounterNs = nsPerOp(MicroIters, [&] { C.inc(); });
  double HistNs = nsPerOp(MicroIters, [&] { H.observeUs(17.0); });
  Reg.setEnabled(false);
  double DisabledCounterNs = nsPerOp(MicroIters, [&] { C.inc(); });
  Reg.setEnabled(true);
  double DisabledSpanNs = nsPerOp(MicroIters, [] {
    SpanScope S("bench.span", "bench");
  });
  std::printf("\n-- primitive costs --\n");
  std::printf("counter inc (enabled):      %7.2f ns/op\n", CounterNs);
  std::printf("counter inc (disabled):     %7.2f ns/op\n", DisabledCounterNs);
  std::printf("histogram observe:          %7.2f ns/op\n", HistNs);
  std::printf("span scope (tracing off):   %7.2f ns/op\n", DisabledSpanNs);

  // -- Step latency A/B: metrics on vs no telemetry ---------------------------
  core::MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = "Autophase";
  Opts.RewardSpace = "IrInstructionCount";
  auto Env = core::make("llvm-v0", Opts);
  if (!Env.isOk()) {
    std::fprintf(stderr, "env construction failed: %s\n",
                 Env.status().toString().c_str());
    return 1;
  }

  const int Rounds = scaled(9, 15);
  const int StepsPerRound = scaled(600, 1500);
  const double MaxRegression = 1.02;

  ShapeChecks Checks;
  bool Passed = false;
  for (int Attempt = 1; Attempt <= 3 && !Passed; ++Attempt) {
    // Warmup: page caches, benchmark parse cache, session memos.
    if (!(*Env)->reset().isOk() || stepRoundMeanMs(**Env, StepsPerRound) < 0)
      return 1;

    std::vector<double> Ratios;
    for (int R = 0; R < Rounds; ++R) {
      double MeanOn = 0, MeanOff = 0;
      for (int Leg = 0; Leg < 2; ++Leg) {
        bool MetricsOn = (Leg == 0) == (R % 2 == 0);
        Reg.setEnabled(MetricsOn);
        if (!(*Env)->reset().isOk())
          return 1;
        double Mean = stepRoundMeanMs(**Env, StepsPerRound);
        if (Mean < 0)
          return 1;
        (MetricsOn ? MeanOn : MeanOff) = Mean;
      }
      Ratios.push_back(MeanOn / MeanOff);
    }
    Reg.setEnabled(true);
    std::sort(Ratios.begin(), Ratios.end());
    double Median = Ratios[Ratios.size() / 2];
    Passed = Median <= MaxRegression;
    std::printf("\n-- step latency, attempt %d --\n", Attempt);
    std::printf("per-round metrics-on/off ratios:");
    for (double Ratio : Ratios)
      std::printf(" %.4f", Ratio);
    std::printf("\nmedian ratio: %.4f (gate: <= %.2f)\n", Median,
                MaxRegression);
  }
  Checks.check(Passed, "metrics-on step latency within 2% of no-telemetry "
                       "baseline");

  // -- Tracing-on cost (informational, not gated) -----------------------------
  T.setEnabled(true);
  T.setCapacity(size_t{1} << 18);
  if (!(*Env)->reset().isOk())
    return 1;
  double TracedMean = stepRoundMeanMs(**Env, StepsPerRound);
  T.setEnabled(false);
  if (TracedMean < 0)
    return 1;
  std::printf("\ntracing on:                mean %8.3f ms (%zu spans, %llu "
              "dropped)\n",
              TracedMean, T.spanCount(),
              static_cast<unsigned long long>(T.droppedSpans()));
  T.clear();

  return Checks.verdict();
}
