//===- bench/BenchUtils.h - Shared bench harness helpers --------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the per-table/figure benchmark binaries: scale
/// selection (CG_BENCH_SCALE=smoke|full), latency tables in the paper's
/// p50/p99/mean format, and PASS/FAIL shape checks. Every binary prints
/// the rows of its paper table (or the series of its figure) and finishes
/// with qualitative checks of the expected *shape* — who wins, by roughly
/// what factor — as EXPERIMENTS.md documents.
///
//===----------------------------------------------------------------------===//

#ifndef COMPILER_GYM_BENCH_BENCHUTILS_H
#define COMPILER_GYM_BENCH_BENCHUTILS_H

#include "util/Stats.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace compiler_gym {
namespace bench {

/// True when CG_BENCH_SCALE=full (paper-scale trajectory counts).
inline bool fullScale() {
  const char *Env = std::getenv("CG_BENCH_SCALE");
  return Env && std::strcmp(Env, "full") == 0;
}

/// Picks a workload size by scale.
inline int scaled(int Smoke, int Full) { return fullScale() ? Full : Smoke; }

/// Prints the standard header for a bench binary.
inline void banner(const char *Id, const char *Title) {
  std::printf("==============================================================="
              "=\n");
  std::printf("%s: %s\n", Id, Title);
  std::printf("scale: %s (set CG_BENCH_SCALE=full for paper-scale runs)\n",
              fullScale() ? "full" : "smoke");
  std::printf("==============================================================="
              "=\n");
}

/// Prints one latency row in the paper's Table II/III format.
inline void latencyRow(const std::string &Name,
                       const std::vector<double> &SamplesMs) {
  LatencySummary S = summarizeLatencies(SamplesMs);
  std::printf("%-28s p50=%9.3fms  p99=%9.3fms  mean=%9.3fms  (n=%zu)\n",
              Name.c_str(), S.P50, S.P99, S.Mean, S.Count);
}

/// Records shape-check outcomes and prints the final verdict.
class ShapeChecks {
public:
  void check(bool Ok, const std::string &Description) {
    std::printf("[%s] %s\n", Ok ? "PASS" : "FAIL", Description.c_str());
    Failures += Ok ? 0 : 1;
  }

  /// Process exit code: 0 when every shape check held.
  int verdict() const {
    std::printf("%s: %d shape check failure(s)\n",
                Failures ? "RESULT: FAIL" : "RESULT: PASS", Failures);
    return Failures ? 1 : 0;
  }

private:
  int Failures = 0;
};

} // namespace bench
} // namespace compiler_gym

#endif // COMPILER_GYM_BENCH_BENCHUTILS_H
