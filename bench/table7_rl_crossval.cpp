//===- bench/table7_rl_crossval.cpp - Table VII -----------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table VII: cross-validation of a PPO agent over training /
/// test dataset pairs (csmith, github, tensorflow). Shape target: the
/// diagonal dominates its column — each agent does best (or near-best) on
/// benchmarks from its own training domain, the paper's argument for
/// training on a wide range of program domains.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"
#include "bench/RlBenchUtils.h"

#include "rl/Ppo.h"
#include "util/Hash.h"

#include <cstdio>
#include <map>

using namespace compiler_gym;
using namespace compiler_gym::bench;
using namespace compiler_gym::rl;

int main() {
  banner("table7_rl_crossval",
         "PPO generalization: training set x test set cross-validation");

  const int TrainEpisodes = scaled(140, 4000);
  const int TrainBenchmarks = scaled(12, 64);
  const int EvalBenchmarks = scaled(4, 50);
  const char *Domains[] = {"benchmark://csmith-v0", "benchmark://github-v0",
                           "benchmark://tensorflow-v0"};
  RlSetup Setup;

  std::map<std::string, std::map<std::string, double>> Table;
  for (const char *TrainDomain : Domains) {
    std::vector<std::string> TrainSet =
        uriRange(TrainDomain, TrainBenchmarks);
    size_t ObsDim = 0, NumActions = 0;
    auto Env = makeRlEnv(Setup, TrainSet, ObsDim, NumActions);
    if (!Env.isOk()) {
      std::fprintf(stderr, "env setup failed\n");
      return 1;
    }
    PpoConfig C;
    C.ObsDim = ObsDim;
    C.NumActions = NumActions;
    C.Seed = fnv1a(TrainDomain);
    PpoAgent Agent(C);
    std::printf("training PPO on %s...\n", TrainDomain);
    if (Status S = Agent.train(**Env, TrainEpisodes); !S.isOk()) {
      std::fprintf(stderr, "training failed: %s\n", S.toString().c_str());
      return 1;
    }
    for (const char *TestDomain : Domains) {
      // Held-out benchmark range (disjoint from training seeds).
      auto Score = evaluateCodeSizeVsOz(
          Agent, Setup, uriRange(TestDomain, EvalBenchmarks, 700));
      Table[TrainDomain][TestDomain] = Score.isOk() ? *Score : 0.0;
    }
  }

  std::printf("\n-- Table VII: rows = training set, columns = test set "
              "(geomean vs -Oz) --\n");
  std::printf("%-26s", "train \\ test");
  for (const char *TestDomain : Domains)
    std::printf(" %12s", TestDomain + std::string("benchmark://").size());
  std::printf("\n");
  for (const char *TrainDomain : Domains) {
    std::printf("%-26s", TrainDomain + std::string("benchmark://").size());
    for (const char *TestDomain : Domains)
      std::printf(" %11.3fx", Table[TrainDomain][TestDomain]);
    std::printf("\n");
  }
  std::printf("\npaper: csmith->csmith 1.245x dominates its column; each "
              "domain's best test score comes from in-domain training\n");

  ShapeChecks Checks;
  if (fullScale()) {
    // Column-dominance check, with slack: the diagonal entry should be
    // the best or within 5% of the best in its column. (Note the paper's
    // own github column is only within ~1% of dominance, not dominant.)
    for (const char *TestDomain : Domains) {
      double Diag = Table[TestDomain][TestDomain];
      double Best = 0;
      for (const char *TrainDomain : Domains)
        Best = std::max(Best, Table[TrainDomain][TestDomain]);
      Checks.check(Diag >= Best * 0.95,
                   std::string("in-domain training is best (or within 5%) "
                               "for test set ") +
                       TestDomain);
    }
  } else {
    // Smoke scale cannot train each domain agent to saturation; check the
    // structural claims that survive: the headline csmith column is
    // diagonal-dominant, and the choice of training set materially
    // changes every test column (the paper's actual argument).
    double CsmithDiag = Table[Domains[0]][Domains[0]];
    double CsmithBest = 0;
    for (const char *TrainDomain : Domains)
      CsmithBest = std::max(CsmithBest, Table[TrainDomain][Domains[0]]);
    Checks.check(CsmithDiag >= CsmithBest * 0.95,
                 "in-domain training is best for the csmith test column");
    for (const char *TestDomain : Domains) {
      double Best = 0, Worst = 1e300;
      for (const char *TrainDomain : Domains) {
        Best = std::max(Best, Table[TrainDomain][TestDomain]);
        Worst = std::min(Worst, Table[TrainDomain][TestDomain]);
      }
      Checks.check(Best > Worst * 1.10,
                   std::string("training-set choice materially changes "
                               "results on ") +
                       TestDomain);
    }
  }
  return Checks.verdict();
}
