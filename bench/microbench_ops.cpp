//===- bench/microbench_ops.cpp - google-benchmark micro suite --*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// google-benchmark microbenchmarks for the primitives underneath the
/// Table II/III numbers: parse, clone, print, hash, per-pass application,
/// feature extraction, graph construction, and the RPC round trip. Useful
/// for profiling regressions in the substrate itself; the table benches
/// measure the end-to-end paper quantities.
///
//===----------------------------------------------------------------------===//

#include "analysis/Autophase.h"
#include "analysis/InstCount.h"
#include "analysis/ProGraML.h"
#include "core/Registry.h"
#include "datasets/DatasetRegistry.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "passes/PassManager.h"
#include "service/Serialization.h"

#include <benchmark/benchmark.h>

using namespace compiler_gym;

namespace {

const std::string &benchmarkText() {
  static const std::string Text = [] {
    auto B = datasets::DatasetRegistry::instance().resolve(
        "benchmark://cbench-v1/susan");
    return B.isOk() ? B->IrText : std::string();
  }();
  return Text;
}

const ir::Module &benchmarkModule() {
  static const std::unique_ptr<ir::Module> M = [] {
    auto Parsed = ir::parseModule(benchmarkText());
    return Parsed.isOk() ? Parsed.takeValue() : nullptr;
  }();
  return *M;
}

void BM_ParseModule(benchmark::State &State) {
  for (auto _ : State) {
    auto M = ir::parseModule(benchmarkText());
    benchmark::DoNotOptimize(M);
  }
}
BENCHMARK(BM_ParseModule);

void BM_PrintModule(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(ir::printModule(benchmarkModule()));
}
BENCHMARK(BM_PrintModule);

void BM_CloneModule(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(benchmarkModule().clone());
}
BENCHMARK(BM_CloneModule);

void BM_HashModule(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(benchmarkModule().hash());
}
BENCHMARK(BM_HashModule);

void BM_Autophase(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(analysis::autophase(benchmarkModule()));
}
BENCHMARK(BM_Autophase);

void BM_InstCount(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(analysis::instCount(benchmarkModule()));
}
BENCHMARK(BM_InstCount);

void BM_ProGraMLGraph(benchmark::State &State) {
  for (auto _ : State)
    benchmark::DoNotOptimize(
        analysis::buildProgramGraph(benchmarkModule()));
}
BENCHMARK(BM_ProGraMLGraph);

void BM_SinglePass(benchmark::State &State, const char *PassName) {
  for (auto _ : State) {
    State.PauseTiming();
    auto M = benchmarkModule().clone();
    State.ResumeTiming();
    benchmark::DoNotOptimize(passes::runPass(*M, PassName));
  }
}
BENCHMARK_CAPTURE(BM_SinglePass, mem2reg, "mem2reg");
BENCHMARK_CAPTURE(BM_SinglePass, dce, "dce");
BENCHMARK_CAPTURE(BM_SinglePass, gvn, "gvn");
BENCHMARK_CAPTURE(BM_SinglePass, simplifycfg, "simplifycfg");
BENCHMARK_CAPTURE(BM_SinglePass, instcombine, "instcombine");

void BM_MessageRoundTrip(benchmark::State &State) {
  service::RequestEnvelope Req;
  Req.Kind = service::RequestKind::Step;
  Req.Step.SessionId = 1;
  service::Action A;
  A.Index = 3;
  Req.Step.Actions = {A};
  Req.Step.ObservationSpaces = {"Autophase"};
  for (auto _ : State) {
    std::string Bytes = service::encodeRequest(Req);
    auto Decoded = service::decodeRequest(Bytes);
    benchmark::DoNotOptimize(Decoded);
  }
}
BENCHMARK(BM_MessageRoundTrip);

void BM_EnvStepRpc(benchmark::State &State) {
  core::MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = "Autophase";
  Opts.RewardSpace = "IrInstructionCount";
  auto Env = core::make("llvm-v0", Opts);
  if (!Env.isOk() || !(*Env)->reset().isOk()) {
    State.SkipWithError("env setup failed");
    return;
  }
  Rng Gen(1);
  size_t NumActions = (*Env)->actionSpace().size();
  size_t Steps = 0;
  for (auto _ : State) {
    if (++Steps % 40 == 0) {
      State.PauseTiming();
      (void)(*Env)->reset();
      State.ResumeTiming();
    }
    auto R = (*Env)->step(static_cast<int>(Gen.bounded(NumActions)));
    benchmark::DoNotOptimize(R);
  }
}
BENCHMARK(BM_EnvStepRpc);

} // namespace

BENCHMARK_MAIN();
