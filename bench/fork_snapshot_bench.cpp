//===- bench/fork_snapshot_bench.cpp - COW fork & recovery latency --------===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what copy-on-write structural sharing buys on the fork and
/// crash-recovery paths:
///
///  * Module::share() vs Module::clone() latency across module sizes —
///    share must be >=10x cheaper and scale far flatter than the deep
///    copy (a share is #functions pointer bumps; a clone duplicates every
///    instruction).
///  * Env-level fork() vs the pre-COW candidate-fanout equivalent
///    (reset + replay of the episode prefix on a fresh env).
///  * Crash-recovery restore: CompilerEnv::rebase() from a surviving
///    snapshot vs the replay fallback (same code path with the snapshot
///    store emptied).
///
/// Emits BENCH_fork.json with the headline p50s as a tracking baseline.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "core/Registry.h"
#include "datasets/CsmithGenerator.h"
#include "ir/Snapshot.h"
#include "util/Timer.h"

#include <cstdio>
#include <vector>

using namespace compiler_gym;
using namespace compiler_gym::bench;

namespace {

std::unique_ptr<core::CompilerEnv> makeEnv() {
  core::MakeOptions Opts;
  Opts.Benchmark = "benchmark://cbench-v1/crc32";
  Opts.ObservationSpace = "none";
  Opts.RewardSpace = "IrInstructionCount";
  auto Env = core::make("llvm-v0", Opts);
  if (!Env.isOk()) {
    std::fprintf(stderr, "make failed: %s\n", Env.status().toString().c_str());
    std::exit(1);
  }
  return Env.takeValue();
}

double p50(const std::vector<double> &Samples) {
  return summarizeLatencies(Samples).P50;
}

} // namespace

int main() {
  banner("fork_snapshot_bench",
         "COW fork and replay-free recovery vs deep-clone baselines");

  const int Repeats = scaled(60, 600);
  ShapeChecks Checks;

  // -- Part 1: share vs clone across module sizes ----------------------------
  const std::vector<int> Sizes = {4, 16, 48};
  std::vector<double> ShareP50s, CloneP50s;
  std::printf("\n-- Module::share() vs Module::clone() --\n");
  for (int Funcs : Sizes) {
    datasets::ProgramStyle Style;
    Style.MinFunctions = Funcs;
    Style.MaxFunctions = Funcs;
    auto M = datasets::generateProgram(0xF0 + Funcs, Style, "m");
    std::vector<double> Share, Clone;
    for (int R = 0; R < Repeats; ++R) {
      {
        Stopwatch W;
        auto S = M->share();
        Share.push_back(W.elapsedMs());
      }
      {
        Stopwatch W;
        auto C = M->clone();
        Clone.push_back(W.elapsedMs());
      }
    }
    char Label[64];
    std::snprintf(Label, sizeof(Label), "share (%zu funcs)",
                  M->functions().size());
    latencyRow(Label, Share);
    std::snprintf(Label, sizeof(Label), "clone (%zu funcs)",
                  M->functions().size());
    latencyRow(Label, Clone);
    ShareP50s.push_back(p50(Share));
    CloneP50s.push_back(p50(Clone));
  }
  for (size_t I = 0; I < Sizes.size(); ++I)
    Checks.check(ShareP50s[I] * 10.0 <= CloneP50s[I] ||
                     ShareP50s[I] < 1e-3, // Below timer noise floor.
                 "share() >=10x cheaper than clone() at size " +
                     std::to_string(Sizes[I]));
  // Scaling: the share curve must grow far slower than the clone curve
  // (near-constant: pointer bumps vs whole-IR duplication).
  {
    double ShareGrowth = ShareP50s.back() / std::max(ShareP50s.front(), 1e-6);
    double CloneGrowth = CloneP50s.back() / std::max(CloneP50s.front(), 1e-6);
    Checks.check(ShareGrowth <= CloneGrowth,
                 "share() scales no worse than clone() in module size");
  }

  // -- Part 2: env fork() vs reset+replay fanout -----------------------------
  const std::vector<int> Prefix = {0, 1, 2, 3, 4, 0, 1, 2};
  auto Parent = makeEnv();
  if (!Parent->reset().isOk() || !Parent->step(Prefix).isOk()) {
    std::fprintf(stderr, "parent episode setup failed\n");
    return 1;
  }
  std::vector<double> ForkMs, ReplayMs;
  auto Scratch = makeEnv(); // Fresh env standing in for the old fanout.
  for (int R = 0; R < Repeats; ++R) {
    {
      Stopwatch W;
      auto Fork = Parent->fork();
      ForkMs.push_back(W.elapsedMs());
      if (!Fork.isOk()) {
        std::fprintf(stderr, "fork failed: %s\n",
                     Fork.status().toString().c_str());
        return 1;
      }
    }
    {
      // The pre-COW candidate cost: rebuild the prefix state from scratch.
      Stopwatch W;
      if (!Scratch->reset().isOk() || !Scratch->step(Prefix).isOk()) {
        std::fprintf(stderr, "replay baseline failed\n");
        return 1;
      }
      ReplayMs.push_back(W.elapsedMs());
    }
  }
  std::printf("\n-- env fork() vs reset+replay (prefix of %zu actions) --\n",
              Prefix.size());
  latencyRow("fork()", ForkMs);
  latencyRow("reset+replay", ReplayMs);
  Checks.check(p50(ForkMs) * 10.0 <= p50(ReplayMs),
               "env fork() >=10x cheaper than reset+replay fanout");

  // -- Part 3: snapshot recovery vs replay fallback --------------------------
  // rebase() is the recovery path: restore the parent's state key from the
  // snapshot store; with the store emptied it degrades to the replay
  // fallback — same code, so the delta is exactly what snapshots buy.
  std::vector<double> RestoreMs, FallbackMs;
  auto Child = makeEnv();
  for (int R = 0; R < Repeats; ++R) {
    {
      Stopwatch W;
      if (!Child->rebase(*Parent).isOk()) {
        std::fprintf(stderr, "snapshot rebase failed\n");
        return 1;
      }
      RestoreMs.push_back(W.elapsedMs());
    }
    {
      ir::SnapshotStore::global().clear();
      Stopwatch W;
      if (!Child->rebase(*Parent).isOk()) {
        std::fprintf(stderr, "fallback rebase failed\n");
        return 1;
      }
      FallbackMs.push_back(W.elapsedMs());
      // No republish step needed: the replayed session recomputes the same
      // content-addressed key and publishes it back to the store, so the
      // next round's restore measurement finds the snapshot again.
    }
  }
  std::printf("\n-- crash recovery: snapshot restore vs replay fallback --\n");
  latencyRow("restore from snapshot", RestoreMs);
  latencyRow("replay fallback", FallbackMs);
  Checks.check(p50(RestoreMs) <= p50(FallbackMs),
               "snapshot recovery no slower than replay fallback");

  // -- Baseline artifact -----------------------------------------------------
  if (std::FILE *F = std::fopen("BENCH_fork.json", "w")) {
    std::fprintf(F,
                 "{\n"
                 "  \"share_ms_p50_by_size\": [%g, %g, %g],\n"
                 "  \"clone_ms_p50_by_size\": [%g, %g, %g],\n"
                 "  \"env_fork_ms_p50\": %g,\n"
                 "  \"reset_replay_ms_p50\": %g,\n"
                 "  \"recovery_restore_ms_p50\": %g,\n"
                 "  \"recovery_replay_ms_p50\": %g\n"
                 "}\n",
                 ShareP50s[0], ShareP50s[1], ShareP50s[2], CloneP50s[0],
                 CloneP50s[1], CloneP50s[2], p50(ForkMs), p50(ReplayMs),
                 p50(RestoreMs), p50(FallbackMs));
    std::fclose(F);
    std::printf("\nwrote BENCH_fork.json\n");
  }

  return Checks.verdict();
}
