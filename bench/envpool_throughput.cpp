//===- bench/envpool_throughput.cpp - Parallel runtime scaling -*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Aggregate environment throughput of the parallel runtime: steps/sec of
/// a single CompilerEnv vs. an EnvPool at increasing worker counts, on the
/// same workload, with and without injected backend faults. Each worker
/// env routes to its own service shard (its own dispatcher thread), so on
/// P-core hardware aggregate throughput should scale toward min(P, workers)
/// times the single-env rate. The faulted run demonstrates that a crashing
/// shard fleet stays productive: every episode completes through the
/// restart-and-replay path at a bounded throughput cost.
///
/// Shape checks scale with the parallelism actually available: on >=8-core
/// hardware we require the paper-style >=4x aggregate speedup at 8
/// workers; on smaller boxes (including 1-core CI runners, where the
/// workload is CPU-bound and cannot speed up at all) we require only that
/// the pool is not pathologically slower and that no work is lost.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"
#include "core/Registry.h"
#include "runtime/EnvPool.h"
#include "util/Rng.h"
#include "util/Timer.h"

#include <algorithm>
#include <thread>

using namespace compiler_gym;
using namespace compiler_gym::runtime;

namespace {

constexpr const char *kBenchmark = "benchmark://cbench-v1/crc32";

/// One episode of this workload: reset + StepsPerEpisode single steps.
constexpr int kStepsPerEpisode = 12;

core::MakeOptions workloadOptions() {
  core::MakeOptions Opts;
  Opts.Benchmark = kBenchmark;
  Opts.ObservationSpace = "Autophase";
  Opts.RewardSpace = "IrInstructionCount";
  return Opts;
}

/// Episodes/sec * steps of a single env stepped sequentially.
double singleEnvStepsPerSec(int Episodes) {
  auto Env = core::make("llvm-v0", workloadOptions());
  if (!Env.isOk()) {
    std::fprintf(stderr, "env setup failed: %s\n",
                 Env.status().toString().c_str());
    std::exit(1);
  }
  Rng Gen(1);
  Stopwatch Watch;
  size_t Steps = 0;
  for (int E = 0; E < Episodes; ++E) {
    if (!(*Env)->reset().isOk())
      std::exit(1);
    size_t NumActions = (*Env)->actionSpace().size();
    for (int S = 0; S < kStepsPerEpisode; ++S) {
      auto R = (*Env)->step(static_cast<int>(Gen.bounded(NumActions)));
      if (!R.isOk())
        std::exit(1);
      ++Steps;
    }
  }
  return static_cast<double>(Steps) / (Watch.elapsedMs() / 1000.0);
}

struct PoolRun {
  double StepsPerSec = 0.0;
  size_t EpisodesCompleted = 0;
  uint64_t Recoveries = 0;
  uint64_t ShardRestarts = 0;
  uint64_t CacheHits = 0;
};

/// Aggregate steps/sec of an EnvPool collecting the same workload.
PoolRun poolStepsPerSec(size_t Workers, int Episodes, uint64_t CrashAfterOps) {
  EnvPoolOptions Opts;
  Opts.EnvId = "llvm-v0";
  Opts.Make = workloadOptions();
  Opts.NumWorkers = Workers;
  Opts.Broker.Faults.CrashAfterOps = CrashAfterOps;
  Opts.Broker.MonitorIntervalMs = CrashAfterOps ? 5 : 0;
  auto Pool = EnvPool::create(Opts);
  if (!Pool.isOk()) {
    std::fprintf(stderr, "pool setup failed: %s\n",
                 Pool.status().toString().c_str());
    std::exit(1);
  }
  Stopwatch Watch;
  Status S = (*Pool)->collect(
      static_cast<size_t>(Episodes),
      [](size_t Worker, size_t, core::CompilerEnv &E,
         const service::Observation &) -> Status {
        Rng Gen(0xC0FFEE + Worker);
        size_t NumActions = E.actionSpace().size();
        for (int Step = 0; Step < kStepsPerEpisode; ++Step) {
          CG_ASSIGN_OR_RETURN(
              core::StepResult R,
              E.step(static_cast<int>(Gen.bounded(NumActions))));
          (void)R;
        }
        return Status::ok();
      });
  double Seconds = Watch.elapsedMs() / 1000.0;
  if (!S.isOk()) {
    std::fprintf(stderr, "pool run failed: %s\n", S.toString().c_str());
    std::exit(1);
  }
  PoolStats Stats = (*Pool)->stats();
  PoolRun Out;
  Out.StepsPerSec = static_cast<double>(Stats.StepsExecuted) / Seconds;
  Out.EpisodesCompleted = Stats.EpisodesCompleted;
  Out.Recoveries = Stats.EnvRecoveries;
  Out.ShardRestarts = Stats.ShardRestarts;
  Out.CacheHits = Stats.CacheHits;
  return Out;
}

} // namespace

int main() {
  bench::banner("envpool_throughput",
                "EnvPool + ServiceBroker aggregate stepping throughput");
  const int Episodes = bench::scaled(24, 160);
  const unsigned HwThreads = std::max(1u, std::thread::hardware_concurrency());
  std::printf("hardware threads: %u\n\n", HwThreads);

  double Single = singleEnvStepsPerSec(Episodes);
  std::printf("%-34s %10.1f steps/s  (x1.00)\n", "single env (baseline)",
              Single);

  const size_t WorkerCounts[] = {2, 4, 8};
  double SpeedupAt2 = 0.0;
  double SpeedupAt8 = 0.0;
  size_t EpisodesAt8 = 0;
  for (size_t Workers : WorkerCounts) {
    PoolRun Run = poolStepsPerSec(Workers, Episodes, /*CrashAfterOps=*/0);
    double Speedup = Run.StepsPerSec / Single;
    if (Workers == 2)
      SpeedupAt2 = Speedup;
    if (Workers == 8) {
      SpeedupAt8 = Speedup;
      EpisodesAt8 = Run.EpisodesCompleted;
    }
    char Label[64];
    std::snprintf(Label, sizeof(Label), "pool %zu workers", Workers);
    std::printf("%-34s %10.1f steps/s  (x%.2f)  cache hits=%llu\n", Label,
                Run.StepsPerSec, Speedup,
                static_cast<unsigned long long>(Run.CacheHits));
  }

  // Faulted fleet: every shard crashes repeatedly under load.
  PoolRun Faulted = poolStepsPerSec(8, Episodes, /*CrashAfterOps=*/40);
  std::printf("%-34s %10.1f steps/s  (x%.2f)  recoveries=%llu restarts=%llu\n",
              "pool 8 workers + crash faults", Faulted.StepsPerSec,
              Faulted.StepsPerSec / Single,
              static_cast<unsigned long long>(Faulted.Recoveries),
              static_cast<unsigned long long>(Faulted.ShardRestarts));
  std::printf("\n");

  bench::ShapeChecks Checks;
  Checks.check(EpisodesAt8 == static_cast<size_t>(Episodes),
               "pool completes every scheduled episode");
  Checks.check(Faulted.EpisodesCompleted == static_cast<size_t>(Episodes),
               "faulted pool completes every scheduled episode");
  Checks.check(Faulted.Recoveries + Faulted.ShardRestarts > 0,
               "faulted run actually crashed and recovered");
  if (HwThreads >= 8) {
    Checks.check(SpeedupAt8 >= 4.0,
                 "8-worker pool >= 4x single-env steps/sec (8+ cores)");
  } else if (HwThreads >= 2) {
    double Floor = 0.6 * static_cast<double>(HwThreads);
    Checks.check(SpeedupAt8 >= std::min(4.0, Floor),
                 "8-worker pool speedup tracks available cores");
  } else {
    // Single hardware thread: parallel stepping cannot beat the baseline,
    // and 8 workers is a misconfiguration there (size workers to cores).
    // Require bounded coordination overhead at the modest width instead.
    Checks.check(SpeedupAt2 >= 0.35,
                 "2-worker pool within ~3x of baseline on 1 core");
  }
  Checks.check(Faulted.StepsPerSec >= 0.25 * SpeedupAt8 * Single,
               "crash faults cost < 4x throughput");
  return Checks.verdict();
}
