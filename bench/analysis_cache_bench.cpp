//===- bench/analysis_cache_bench.cpp - Cold vs warm analysis costs -------===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Measures what the AnalysisManager layer buys on the step hot path,
/// mirroring the paper's Table III layout (per-observation-space costs)
/// with a cold column (from-scratch recomputation, the pre-refactor
/// behaviour) and warm columns (cache hit on an unchanged module; single
/// dirty function re-aggregation). Also compares step costs between the
/// legacy one-shot runPass path (fresh pass objects + fresh analyses per
/// action) and a session-style stateful PassManager.
///
/// Shape targets: warm observations on unchanged modules are >=5x cheaper
/// than cold; a single-function-dirty recount beats a whole-module rescan
/// on multi-function programs; the stateful step path does not lose to the
/// one-shot path.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "analysis/Autophase.h"
#include "analysis/FeatureCache.h"
#include "analysis/InstCount.h"
#include "core/Registry.h"
#include "datasets/CsmithGenerator.h"
#include "datasets/CuratedSuites.h"
#include "passes/PassManager.h"
#include "util/Timer.h"

#include <cstdio>
#include <map>

using namespace compiler_gym;
using namespace compiler_gym::bench;

int main() {
  banner("analysis_cache_bench",
         "Cold vs warm observation and step costs under the AnalysisManager");

  const int Repeats = scaled(40, 400);
  const int WarmLookups = 8;

  // -- Part 1: feature observations, module level ---------------------------
  // Cold = whole-module rescan (the pre-refactor per-request behaviour).
  // Warm = FeatureCache hit on an unchanged module.
  // Dirty1 = exactly one function invalidated between requests.
  std::map<std::string, std::vector<double>> Cold, Warm, Dirty1;
  size_t CorpusFunctions = 0, CorpusModules = 0;

  for (uint64_t Seed : {11ull, 23ull, 37ull, 51ull}) {
    datasets::ProgramStyle Style = datasets::styleForDataset(
        Seed % 2 ? "benchmark://csmith-v0" : "benchmark://npb-v0");
    // Many-function modules: the single-dirty-function claim is about
    // skipping the N-1 clean functions, so give it an N worth skipping
    // (cbench-sized programs, not 3-function toys).
    Style.MinFunctions = 24;
    Style.MaxFunctions = 32;
    auto M = datasets::generateProgram(Seed, Style, "m");
    if (!M || M->functions().empty())
      continue;
    ++CorpusModules;
    CorpusFunctions += M->functions().size();
    const ir::Function *First = M->functions().front().get();

    analysis::FeatureCache Cache;
    (void)Cache.instCount(*M); // Populate once.
    (void)Cache.autophase(*M);

    for (int R = 0; R < Repeats; ++R) {
      {
        Stopwatch W;
        (void)analysis::instCount(*M);
        Cold["InstCount"].push_back(W.elapsedMs());
      }
      {
        Stopwatch W;
        (void)analysis::autophase(*M);
        Cold["Autophase"].push_back(W.elapsedMs());
      }
      for (int K = 0; K < WarmLookups; ++K) {
        Stopwatch W;
        (void)Cache.instCount(*M);
        Warm["InstCount"].push_back(W.elapsedMs());
      }
      for (int K = 0; K < WarmLookups; ++K) {
        Stopwatch W;
        (void)Cache.autophase(*M);
        Warm["Autophase"].push_back(W.elapsedMs());
      }
      {
        Cache.invalidateFunction(First);
        Stopwatch W;
        (void)Cache.instCount(*M);
        Dirty1["InstCount"].push_back(W.elapsedMs());
      }
      {
        Cache.invalidateFunction(First);
        Stopwatch W;
        (void)Cache.autophase(*M);
        Dirty1["Autophase"].push_back(W.elapsedMs());
      }
    }
  }

  std::printf("\ncorpus: %zu modules, %zu functions total\n", CorpusModules,
              CorpusFunctions);
  std::printf("\n-- observation costs: cold (full rescan) --\n");
  for (const char *Space : {"InstCount", "Autophase"})
    latencyRow(Space, Cold[Space]);
  std::printf("-- observation costs: warm (unchanged module) --\n");
  for (const char *Space : {"InstCount", "Autophase"})
    latencyRow(Space, Warm[Space]);
  std::printf("-- observation costs: one function dirty --\n");
  for (const char *Space : {"InstCount", "Autophase"})
    latencyRow(Space, Dirty1[Space]);

  // -- Part 2: session-level memoized observations --------------------------
  // Through the full env stack: the first observe after a step computes;
  // repeats on the unchanged state are memo hits.
  std::map<std::string, std::vector<double>> EnvFirst, EnvRepeat;
  {
    core::MakeOptions Opts;
    Opts.Benchmark = "benchmark://cbench-v1/susan";
    Opts.ObservationSpace = "none";
    Opts.RewardSpace = "none";
    auto Env = core::make("llvm-v0", Opts);
    if (Env.isOk() && (*Env)->reset().isOk()) {
      size_t NumActions = (*Env)->actionSpace().ActionNames.size();
      Rng Gen(0xCAC4E);
      const int Steps = scaled(20, 120);
      for (int S = 0; S < Steps; ++S) {
        if (!(*Env)->step(static_cast<int>(Gen.bounded(NumActions))).isOk())
          break;
        // rawObservations keeps every request on the RPC path: repeats
        // measure the backend session memo, not the frontend view cache.
        for (const char *Space : {"InstCount", "Autophase", "Ir"}) {
          Stopwatch W;
          if (!(*Env)->rawObservations({Space}).isOk())
            continue;
          EnvFirst[Space].push_back(W.elapsedMs());
          for (int K = 0; K < WarmLookups; ++K) {
            Stopwatch W2;
            if ((*Env)->rawObservations({Space}).isOk())
              EnvRepeat[Space].push_back(W2.elapsedMs());
          }
        }
      }
    }
  }
  std::printf("\n-- env observe(): first after step vs repeated --\n");
  for (const char *Space : {"InstCount", "Autophase", "Ir"}) {
    latencyRow((std::string(Space) + " (first)"), EnvFirst[Space]);
    latencyRow((std::string(Space) + " (repeat)"), EnvRepeat[Space]);
  }

  // -- Part 3: step cost, one-shot vs stateful pass manager -----------------
  // An analysis-heavy action sequence at fixpoint: the legacy path pays a
  // registry construction plus fresh dominators/loops per action; the
  // stateful path reuses both.
  std::vector<double> OneShotStep, StatefulStep;
  {
    const std::vector<std::string> Sequence = {
        "loop-simplify", "licm", "gvn",  "early-cse",
        "licm",          "gvn",  "sink", "canonicalize-block-order",
    };
    datasets::ProgramStyle Style =
        datasets::styleForDataset("benchmark://npb-v0");
    auto Base = datasets::generateProgram(77, Style, "m");
    // Reach a fixpoint first so both paths measure pure analysis/setup
    // overhead rather than divergent transform work.
    (void)passes::runPipelineToFixpoint(*Base, Sequence, 4);

    auto OneShot = Base->clone();
    for (int R = 0; R < Repeats; ++R) {
      for (const std::string &Name : Sequence) {
        Stopwatch W;
        // Fresh manager per action (the legacy behaviour). Verification is
        // explicitly off so debug builds compare the same work as the
        // stateful path below, not recompute-and-compare overhead.
        passes::PassManager Transient(*OneShot);
        Transient.setVerifyPreservation(false);
        (void)Transient.run(Name);
        OneShotStep.push_back(W.elapsedMs());
      }
    }
    auto Stateful = Base->clone();
    passes::PassManager PM(*Stateful);
    PM.setVerifyPreservation(false);
    for (int R = 0; R < Repeats; ++R) {
      for (const std::string &Name : Sequence) {
        Stopwatch W;
        (void)PM.run(Name);
        StatefulStep.push_back(W.elapsedMs());
      }
    }
    std::printf("\n-- step cost at fixpoint (analysis-heavy sequence) --\n");
    latencyRow("one-shot runPass", OneShotStep);
    latencyRow("stateful PassManager", StatefulStep);
    std::printf("analysis cache: domtree hits=%llu computes=%llu\n",
                static_cast<unsigned long long>(
                    PM.analysisManager().stats().DomTreeHits),
                static_cast<unsigned long long>(
                    PM.analysisManager().stats().DomTreeComputes));
  }

  auto meanOf = [](std::map<std::string, std::vector<double>> &T,
                   const char *K) { return mean(T[K]); };
  double ColdIC = meanOf(Cold, "InstCount");
  double WarmIC = meanOf(Warm, "InstCount");
  double ColdAP = meanOf(Cold, "Autophase");
  double WarmAP = meanOf(Warm, "Autophase");
  double Dirty1IC = meanOf(Dirty1, "InstCount");
  double Dirty1AP = meanOf(Dirty1, "Autophase");
  std::printf("\nwarm speedup: InstCount %.1fx, Autophase %.1fx\n",
              ColdIC / WarmIC, ColdAP / WarmAP);
  std::printf("one-dirty speedup: InstCount %.1fx, Autophase %.1fx\n",
              ColdIC / Dirty1IC, ColdAP / Dirty1AP);
  std::printf("step speedup at fixpoint: %.2fx\n",
              mean(OneShotStep) / mean(StatefulStep));

  ShapeChecks Checks;
  Checks.check(ColdIC / WarmIC > 5.0,
               "warm InstCount >=5x cheaper than full rescan");
  Checks.check(ColdAP / WarmAP > 5.0,
               "warm Autophase >=5x cheaper than full rescan");
  Checks.check(Dirty1IC < ColdIC,
               "single-dirty-function InstCount beats whole-module rescan");
  Checks.check(Dirty1AP < ColdAP,
               "single-dirty-function Autophase beats whole-module rescan");
  Checks.check(mean(EnvRepeat["InstCount"]) < mean(EnvFirst["InstCount"]),
               "repeated env observation is memoized");
  Checks.check(mean(StatefulStep) < mean(OneShotStep) * 1.05,
               "stateful step path does not lose to one-shot runPass");
  return Checks.verdict();
}
