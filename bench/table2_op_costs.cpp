//===- bench/table2_op_costs.cpp - Table II reproduction --------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Table II: computational costs of environment operations for
/// CompilerGym vs the two prior-work execution models, computing the same
/// actions, observations (Autophase) and rewards (code size):
///
///  * Autophase-style — each step re-parses the benchmark, replays the
///    whole pass sequence from scratch, and re-serializes;
///  * OpenTuner-style — recompile-per-test plus result-database disk I/O
///    (OpenTuner was designed around a persistent results DB);
///  * CompilerGym    — client/server with incremental pass application,
///    O(1)-amortized init via the parsed-benchmark cache, and an optional
///    batched multi-action step.
///
/// Shape targets: CompilerGym step mean >= ~5x faster than Autophase-style
/// (paper: 27x), batching a further >= 1.5x (paper: 2.9x), and O(1) init
/// (cache hit) at least 5x cheaper than a cold parse.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "analysis/Autophase.h"
#include "core/Registry.h"
#include "datasets/DatasetRegistry.h"
#include "envs/llvm/LlvmSession.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "passes/PassManager.h"
#include "passes/PassRegistry.h"
#include "util/Timer.h"

#include <cstdio>
#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>

using namespace compiler_gym;
using namespace compiler_gym::bench;

namespace {

/// Benchmarks used for the trajectories: a slice across the datasets, as
/// the paper's measurements are "evenly divided across all benchmark
/// datasets".
std::vector<std::string> trajectoryBenchmarks() {
  return {
      "benchmark://cbench-v1/crc32",   "benchmark://cbench-v1/sha",
      "benchmark://csmith-v0/1",       "benchmark://csmith-v0/2",
      "benchmark://github-v0/3",       "benchmark://npb-v0/4",
      "benchmark://chstone-v0/gsm",    "benchmark://linux-v0/5",
      "benchmark://tensorflow-v0/6",   "benchmark://mibench-v1/7",
  };
}

/// Autophase-style driver: recompiles the whole action sequence each step.
class RecompileDriver {
public:
  explicit RecompileDriver(bool WithDatabase) : WithDatabase(WithDatabase) {}

  double init(const datasets::Benchmark &Bench) {
    Stopwatch Watch;
    Text = Bench.IrText;
    History.clear();
    if (WithDatabase) {
      // OpenTuner-style: creating the results database dominates init in
      // the paper ("several disk operations and the creation of a
      // database"). Emulate sqlite schema creation: one file per table,
      // each synced to disk.
      DbPath = std::filesystem::temp_directory_path() /
               ("cg_opentuner_" + std::to_string(reinterpret_cast<uintptr_t>(
                                      this)));
      std::filesystem::create_directories(DbPath);
      for (const char *TableName :
           {"results.db", "configurations.db", "desired_results.db",
            "techniques.db", "tuning_runs.db", "machine.db"}) {
        int Fd = ::open((DbPath / TableName).c_str(),
                        O_CREAT | O_WRONLY | O_TRUNC, 0644);
        if (Fd >= 0) {
          std::string Header(4096, '\0'); // A page, like sqlite's.
          (void)!::write(Fd, Header.data(), Header.size());
          ::fsync(Fd);
          ::close(Fd);
        }
      }
    }
    // Both prior works parse at init time too.
    auto M = ir::parseModule(Text);
    if (M.isOk())
      LastSize = static_cast<int64_t>((*M)->instructionCount());
    return Watch.elapsedMs();
  }

  double step(const std::string &PassName) {
    Stopwatch Watch;
    History.push_back(PassName);
    // Re-parse, replay everything, observe, re-serialize: the O(nm) model.
    auto M = ir::parseModule(Text);
    if (M.isOk()) {
      (void)passes::runPipeline(**M, History);
      (void)analysis::autophase(**M);
      int64_t Size = static_cast<int64_t>((*M)->instructionCount());
      LastReward = static_cast<double>(LastSize - Size);
      LastSize = Size;
      Serialized = ir::printModule(**M);
    }
    if (WithDatabase) {
      std::ofstream Db(DbPath / "results.db", std::ios::app);
      Db << History.size() << ',' << LastReward << '\n';
      Db.flush();
    }
    return Watch.elapsedMs();
  }

  ~RecompileDriver() {
    if (WithDatabase && !DbPath.empty()) {
      std::error_code Ec;
      std::filesystem::remove_all(DbPath, Ec);
    }
  }

private:
  bool WithDatabase;
  std::string Text;
  std::string Serialized;
  std::vector<std::string> History;
  std::filesystem::path DbPath;
  int64_t LastSize = 0;
  double LastReward = 0;
};

struct OpCosts {
  std::vector<double> Startup, Init, Step, BatchedPerAction;
};

} // namespace

int main() {
  banner("table2_op_costs",
         "Computational costs of CompilerGym operations vs prior works");

  const int Trajectories = scaled(6, 120);
  const int StepsPerTrajectory = scaled(25, 100);
  const auto &ActionNames =
      passes::PassRegistry::instance().defaultActionNames();
  std::vector<std::string> Benchmarks = trajectoryBenchmarks();

  OpCosts Autophase, OpenTuner, CompilerGym;
  // Identical per-trajectory action sequences for every driver ("when
  // computing the same actions, observations, and rewards").
  auto trajectoryActions = [&](int T) {
    Rng Gen(0x7AB1E2 ^ static_cast<uint64_t>(T) * 0x9E3779B9);
    std::vector<int> Actions;
    for (int S = 0; S < StepsPerTrajectory; ++S)
      Actions.push_back(static_cast<int>(Gen.bounded(ActionNames.size())));
    return Actions;
  };

  // -- Prior-work drivers. ---------------------------------------------------
  for (int Mode = 0; Mode < 2; ++Mode) {
    OpCosts &Costs = Mode == 0 ? Autophase : OpenTuner;
    for (int T = 0; T < Trajectories; ++T) {
      auto Bench = datasets::DatasetRegistry::instance().resolve(
          Benchmarks[T % Benchmarks.size()]);
      if (!Bench.isOk())
        continue;
      RecompileDriver Driver(/*WithDatabase=*/Mode == 1);
      Costs.Init.push_back(Driver.init(*Bench));
      for (int Action : trajectoryActions(T))
        Costs.Step.push_back(Driver.step(ActionNames[Action]));
    }
  }

  // -- CompilerGym. ------------------------------------------------------------
  envs::LlvmSession::clearBenchmarkCache();
  for (int T = 0; T < Trajectories; ++T) {
    core::MakeOptions Opts;
    Opts.Benchmark = Benchmarks[T % Benchmarks.size()];
    Opts.ObservationSpace = "Autophase";
    Opts.RewardSpace = "IrInstructionCount";
    Stopwatch StartupWatch;
    auto Env = core::make("llvm-v0", Opts);
    if (!Env.isOk())
      continue;
    (void)(*Env)->client().heartbeat(); // Service is up and answering.
    CompilerGym.Startup.push_back(StartupWatch.elapsedMs());

    {
      Stopwatch InitWatch;
      if (!(*Env)->reset().isOk())
        continue;
      CompilerGym.Init.push_back(InitWatch.elapsedMs());
    }
    std::vector<int> Actions = trajectoryActions(T);
    for (int Action : Actions) {
      Stopwatch StepWatch;
      if (!(*Env)->step(Action).isOk())
        break;
      CompilerGym.Step.push_back(StepWatch.elapsedMs());
    }
    // Batched: the same trajectory, one RPC per chunk of actions.
    if ((*Env)->reset().isOk()) {
      const size_t BatchSize = 10;
      for (size_t S = 0; S + BatchSize <= Actions.size(); S += BatchSize) {
        std::vector<int> Batch(Actions.begin() + S,
                               Actions.begin() + S + BatchSize);
        Stopwatch BatchWatch;
        if (!(*Env)->step(Batch).isOk())
          break;
        CompilerGym.BatchedPerAction.push_back(BatchWatch.elapsedMs() /
                                               static_cast<double>(BatchSize));
      }
    }
  }

  // Cache ablation: cold parse vs cache-hit init (the O(1)† claim).
  std::vector<double> ColdInit, WarmInit;
  {
    core::MakeOptions Opts;
    Opts.Benchmark = "benchmark://cbench-v1/ghostscript";
    Opts.ObservationSpace = "none";
    Opts.RewardSpace = "none";
    auto Env = core::make("llvm-v0", Opts);
    if (Env.isOk()) {
      envs::LlvmSession::clearBenchmarkCache();
      for (int I = 0; I < scaled(4, 20); ++I) {
        if (I == 0)
          envs::LlvmSession::clearBenchmarkCache();
        Stopwatch Watch;
        if (!(*Env)->reset().isOk())
          break;
        (I == 0 ? ColdInit : WarmInit).push_back(Watch.elapsedMs());
      }
    }
  }

  std::printf("\n-- Table II: operation wall times "
              "(same actions/observations/rewards) --\n");
  std::printf("%-28s %s\n", "", "Service startup");
  latencyRow("  Autophase-style", {});
  latencyRow("  OpenTuner-style", {});
  latencyRow("  CompilerGym", CompilerGym.Startup);
  std::printf("%-28s %s\n", "", "Environment initialization");
  latencyRow("  Autophase-style", Autophase.Init);
  latencyRow("  OpenTuner-style", OpenTuner.Init);
  latencyRow("  CompilerGym", CompilerGym.Init);
  std::printf("%-28s %s\n", "", "Environment step");
  latencyRow("  Autophase-style", Autophase.Step);
  latencyRow("  OpenTuner-style", OpenTuner.Step);
  latencyRow("  CompilerGym", CompilerGym.Step);
  latencyRow("  CompilerGym-batched", CompilerGym.BatchedPerAction);

  double AutophaseStep = mean(Autophase.Step);
  double OpenTunerStep = mean(OpenTuner.Step);
  double CgStep = mean(CompilerGym.Step);
  double CgBatched = mean(CompilerGym.BatchedPerAction);
  std::printf("\nspeedup vs Autophase-style step: %.1fx (paper: 27x)\n",
              AutophaseStep / CgStep);
  std::printf("batching speedup: %.2fx (paper: 2.9x)\n",
              CgStep / CgBatched);
  std::printf("cold init %.3fms vs amortized init %.3fms\n",
              mean(ColdInit), mean(WarmInit));

  ShapeChecks Checks;
  Checks.check(CgStep < AutophaseStep / 5.0,
               "CompilerGym step is >=5x faster than recompile-from-scratch");
  Checks.check(CgStep < OpenTunerStep / 5.0,
               "CompilerGym step is >=5x faster than OpenTuner-style");
  Checks.check(OpenTuner.Init.empty() || CompilerGym.Init.empty() ||
                   mean(CompilerGym.Init) < mean(OpenTuner.Init),
               "OpenTuner-style has the highest init cost");
  Checks.check(CgBatched < CgStep / 1.5,
               "batched steps are >=1.5x cheaper per action");
  Checks.check(!WarmInit.empty() && !ColdInit.empty() &&
                   mean(WarmInit) * 5.0 < mean(ColdInit),
               "benchmark cache amortizes init by >=5x");
  return Checks.verdict();
}
