//===- bench/fig8_cost_model.cpp - Fig 8 ------------------------*- C++ -*-===//
//
// Part of the CompilerGym-C++ reproduction. MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reproduces Fig 8: train a graph-neural-network cost model to predict a
/// program's instruction count from its ProGraML graph, using the State
/// Transition Dataset (§III-F). The database is populated by random
/// trajectories, post-processed (dedup + transitions), split 80/20, and
/// the GGNN's validation relative error is tracked per epoch against the
/// naive mean predictor (paper: 0.025 vs 1.393).
///
//===----------------------------------------------------------------------===//

#include "bench/BenchUtils.h"

#include "analysis/ProGraML.h"
#include "core/Registry.h"
#include "core/TransitionDatabase.h"
#include "ir/Parser.h"
#include "rl/Ggnn.h"

#include <cmath>
#include <cstdio>
#include <filesystem>

using namespace compiler_gym;
using namespace compiler_gym::bench;

int main() {
  banner("fig8_cost_model",
         "GGNN instruction-count regressor on the State Transition Dataset");

  // -- 1. Populate the transition database with random trajectories. -------
  std::string Dir = std::filesystem::temp_directory_path() /
                    "cg_fig8_transition_db";
  std::filesystem::remove_all(Dir);
  core::TransitionDatabase Db(Dir);

  const int Episodes = scaled(24, 400);
  const int StepsPerEpisode = 8;
  Rng Gen(0xF18);
  {
    core::MakeOptions Opts;
    Opts.Benchmark = "benchmark://csmith-v0/0";
    Opts.ObservationSpace = "none";
    Opts.RewardSpace = "IrInstructionCount";
    auto Env = core::make("llvm-v0", Opts);
    if (!Env.isOk()) {
      std::fprintf(stderr, "env construction failed\n");
      return 1;
    }
    size_t NumActions = 0;
    auto Logger = std::make_unique<core::TransitionLogger>(
        std::move(*Env), &Db, [](core::Env &E) {
          auto Hash = E.observation()["IrHash"];
          return Hash.isOk() ? Hash->raw().Str : std::string("?");
        });
    for (int E = 0; E < Episodes; ++E) {
      std::string Uri =
          "benchmark://csmith-v0/" + std::to_string(E % scaled(8, 64));
      static_cast<core::CompilerEnv &>(Logger->inner()).setBenchmark(Uri);
      Logger->setBenchmarkUri(Uri);
      if (!Logger->reset().isOk())
        continue;
      NumActions = Logger->actionSpace().size();
      for (int S = 0; S < StepsPerEpisode; ++S)
        if (!Logger->step(static_cast<int>(Gen.bounded(NumActions))).isOk())
          break;
    }
  }
  if (!Db.buildTransitions().isOk()) {
    std::fprintf(stderr, "post-processing failed\n");
    return 1;
  }

  // -- 2. Load unique states; build graphs and targets. ---------------------
  auto Rows = Db.readObservations();
  if (!Rows.isOk()) {
    std::fprintf(stderr, "read failed\n");
    return 1;
  }
  struct Example {
    analysis::ProgramGraph Graph;
    double Target;
  };
  std::vector<Example> Examples;
  for (const auto &Row : *Rows) {
    if (Row.CompressedIr.empty() || Row.InstCounts.empty())
      continue;
    auto M = ir::parseModule(Row.CompressedIr);
    if (!M.isOk())
      continue;
    Examples.push_back({analysis::buildProgramGraph(**M),
                        static_cast<double>(Row.InstCounts[0])});
  }
  std::printf("dataset: %zu unique states from %d episodes\n",
              Examples.size(), Episodes);
  if (Examples.size() < 20) {
    std::fprintf(stderr, "too few examples\n");
    return 1;
  }
  Gen.reseed(77);
  Gen.shuffle(Examples);
  size_t Split = Examples.size() * 8 / 10;

  // -- 3. Train; track validation relative error per epoch (Fig 8 series).
  double Mean = 0;
  for (size_t I = 0; I < Split; ++I)
    Mean += Examples[I].Target;
  Mean /= static_cast<double>(Split);
  double Var = 0;
  for (size_t I = 0; I < Split; ++I)
    Var += (Examples[I].Target - Mean) * (Examples[I].Target - Mean);
  double Std = std::sqrt(Var / static_cast<double>(Split));

  rl::GgnnConfig Config;
  Config.Hidden = 24;
  Config.Rounds = 2; // As the paper: two rounds of message passing.
  rl::GgnnRegressor Net(Config);
  Net.setNormalization(Mean, Std);

  auto relError = [&](bool Naive) {
    double Err = 0;
    size_t Count = 0;
    for (size_t I = Split; I < Examples.size(); ++I) {
      double Pred = Naive ? Mean : Net.predict(Examples[I].Graph);
      Err += std::abs(Pred - Examples[I].Target) /
             std::max(1.0, Examples[I].Target);
      ++Count;
    }
    return Err / static_cast<double>(std::max<size_t>(1, Count));
  };

  double NaiveError = relError(true);
  std::printf("naive mean-prediction relative error: %.3f (paper: 1.393)\n",
              NaiveError);
  std::printf("\n-- Fig 8 series: validation relative error per epoch --\n");
  const int Epochs = scaled(20, 80);
  double FinalError = 1e9;
  for (int Epoch = 0; Epoch < Epochs; ++Epoch) {
    for (size_t I = 0; I < Split; ++I)
      Net.trainStep(Examples[I].Graph, Examples[I].Target);
    FinalError = relError(false);
    std::printf("epoch=%-3d val_rel_error=%.4f\n", Epoch, FinalError);
  }
  std::printf("\nfinal: GGNN %.4f vs naive %.3f (paper: 0.025 vs 1.393)\n",
              FinalError, NaiveError);

  ShapeChecks Checks;
  Checks.check(FinalError < NaiveError / 2,
               "GGNN at least halves the naive predictor's error");
  Checks.check(FinalError < 0.4, "GGNN converges to a small relative error");
  std::filesystem::remove_all(Dir);
  return Checks.verdict();
}
